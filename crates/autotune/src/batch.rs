//! Batch-size autotuning (§4.1).
//!
//! "To autotune a model's batch size, we build multiple snapshots of the
//! model with different batch sizes and select the best performing one
//! using traffic-replay tests." The replay here is the chip simulator; the
//! selection criterion is throughput subject to the per-batch latency
//! budget implied by the serving SLO.

use mtia_core::units::SimTime;
use mtia_model::graph::Graph;
use mtia_sim::chip::ChipSim;

/// One evaluated snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCandidate {
    /// Batch size.
    pub batch: u64,
    /// Per-batch latency.
    pub latency: SimTime,
    /// Throughput in samples/s.
    pub throughput: f64,
    /// Whether the latency budget is met.
    pub feasible: bool,
}

/// The tuner's choice plus the full sweep for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchChoice {
    /// The selected batch size.
    pub batch: u64,
    /// All evaluated candidates, in candidate order.
    pub sweep: Vec<BatchCandidate>,
}

/// Default snapshot grid, covering the production range (§7 quotes models
/// at batch 512 through 4K).
pub const DEFAULT_CANDIDATES: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Tunes the batch size for a model built by `build`.
///
/// Picks the feasible candidate with the highest throughput; if none meets
/// the budget, picks the lowest-latency candidate (the serving team then
/// renegotiates the SLO or shards the model).
pub fn tune_batch_size(
    sim: &ChipSim,
    latency_budget: SimTime,
    candidates: &[u64],
    build: impl Fn(u64) -> Graph,
) -> BatchChoice {
    assert!(!candidates.is_empty(), "no batch candidates supplied");
    let mut sweep = Vec::with_capacity(candidates.len());
    for &batch in candidates {
        let graph = build(batch);
        let compiled = mtia_compiler::compile(&graph, mtia_compiler::CompilerOptions::all());
        let report = compiled.run(sim);
        let latency = report.total_time();
        sweep.push(BatchCandidate {
            batch,
            latency,
            throughput: report.throughput_samples_per_s(),
            feasible: latency <= latency_budget,
        });
    }
    let best_feasible = sweep
        .iter()
        .filter(|c| c.feasible)
        .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).expect("finite"));
    let batch = match best_feasible {
        Some(c) => c.batch,
        None => {
            sweep
                .iter()
                .min_by_key(|c| c.latency)
                .expect("non-empty sweep")
                .batch
        }
    };
    BatchChoice { batch, sweep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::chips;
    use mtia_model::models::dlrm::DlrmConfig;

    fn sim() -> ChipSim {
        ChipSim::new(chips::mtia2i())
    }

    #[test]
    fn larger_batches_amortize_overheads() {
        let choice = tune_batch_size(&sim(), SimTime::from_millis(100), &[64, 256, 1024], |b| {
            DlrmConfig::small(b).build()
        });
        // Throughput grows with batch while everything fits on-chip.
        let t: Vec<f64> = choice.sweep.iter().map(|c| c.throughput).collect();
        assert!(t[1] > t[0] && t[2] > t[1], "{t:?}");
        assert_eq!(choice.batch, 1024);
    }

    #[test]
    fn tight_slo_forces_smaller_batch() {
        let generous = tune_batch_size(
            &sim(),
            SimTime::from_millis(100),
            &DEFAULT_CANDIDATES,
            |b| DlrmConfig::small(b).build(),
        );
        // Budget between the latency of small and large batches.
        let mid_budget = generous
            .sweep
            .iter()
            .find(|c| c.batch == 512)
            .unwrap()
            .latency;
        let tight = tune_batch_size(&sim(), mid_budget, &DEFAULT_CANDIDATES, |b| {
            DlrmConfig::small(b).build()
        });
        assert!(tight.batch <= 512);
        assert!(tight.batch < generous.batch);
    }

    #[test]
    fn infeasible_slo_minimizes_latency() {
        let choice = tune_batch_size(&sim(), SimTime::from_nanos(1), &[256, 512], |b| {
            DlrmConfig::small(b).build()
        });
        assert!(choice.sweep.iter().all(|c| !c.feasible));
        // Falls back to the lowest-latency snapshot.
        assert_eq!(choice.batch, 256);
    }

    #[test]
    #[should_panic(expected = "no batch candidates")]
    fn empty_candidates_panic() {
        let _ = tune_batch_size(&sim(), SimTime::from_millis(1), &[], |b| {
            DlrmConfig::small(b).build()
        });
    }
}
