//! Request-coalescing autotuning (§4.1).
//!
//! "To autotune request coalescing, we run experiments to identify the
//! optimal time window for coalescing requests and the number of windows
//! that can be supported in parallel. We found that a model's throughput at
//! its P99 latency SLO is highly sensitive to these parameters. With
//! effective autotuning, we typically achieve >95 % requests per batch."
//!
//! The model here is analytic (the event-driven version lives in
//! `mtia-serving`): Poisson arrivals at rate λ are gathered for up to a
//! window `w` across `p` parallel windows; a batch closes early once it
//! reaches the snapshot's batch size. P99 ≈ gather wait + queueing-inflated
//! service time (M/D/1-style), where utilization is offered load over the
//! configuration's sustainable batch throughput.

use mtia_core::units::SimTime;

/// A coalescing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescingConfig {
    /// Gathering window (upper bound on batch-formation time).
    pub window: SimTime,
    /// Parallel windows (concurrent batches being formed).
    pub parallel_windows: u32,
}

/// Predicted behaviour of a configuration at a given arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescingPrediction {
    /// Expected batch size per emitted batch.
    pub batch: f64,
    /// Fraction of the target batch actually filled (capped at 1).
    pub fill: f64,
    /// Predicted P99 latency.
    pub p99: SimTime,
    /// Device utilization (ρ = offered load / batch-serving capacity).
    pub utilization: f64,
}

/// Predicts P99 and fill for `config` at `rate_per_s` arrivals/second,
/// where `service` maps a batch size to its device time and `target_batch`
/// is the batch the model snapshot was built for.
///
/// # Panics
///
/// Panics if `rate_per_s` is not positive.
pub fn predict(
    config: CoalescingConfig,
    rate_per_s: f64,
    target_batch: u64,
    service: &impl Fn(u64) -> SimTime,
) -> CoalescingPrediction {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    let p = config.parallel_windows.max(1) as f64;
    let per_window_rate = rate_per_s / p;
    let window_s = config.window.as_secs_f64().max(1e-9);

    // A batch closes at the window deadline or when it fills, whichever
    // comes first.
    let batch = (per_window_rate * window_s)
        .min(target_batch as f64)
        .max(1.0);
    // Gather time: fill time, bounded by the window deadline (the window
    // closes even if the minimum one-request batch took longer to appear).
    let gather_s = (batch / per_window_rate).min(window_s);
    let fill = batch / target_batch as f64;
    let executed = (batch.round() as u64).clamp(1, target_batch);
    let s = service(executed).as_secs_f64();

    // Sustainable request throughput of the p pipelines at this batch size.
    let capacity = batch * p / s;
    let rho = rate_per_s / capacity;
    let queue_inflation = if rho < 1.0 {
        1.0 + rho * rho / (1.0 - rho)
    } else {
        f64::INFINITY
    };
    let p99_s = gather_s + s * queue_inflation;
    CoalescingPrediction {
        batch,
        fill,
        p99: if p99_s.is_finite() {
            SimTime::from_secs_f64(p99_s)
        } else {
            SimTime::MAX
        },
        utilization: rho.min(1.0),
    }
}

/// Result of the coalescing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescingChoice {
    /// The chosen configuration.
    pub config: CoalescingConfig,
    /// Its prediction at the tuned rate.
    pub prediction: CoalescingPrediction,
    /// The maximum sustainable arrival rate (requests/s) under the SLO.
    pub max_rate_per_s: f64,
}

/// Bisects the maximum rate meeting `slo` for one configuration.
pub fn max_rate(
    config: CoalescingConfig,
    target_batch: u64,
    slo: SimTime,
    service: &impl Fn(u64) -> SimTime,
) -> Option<f64> {
    if predict(config, 1.0, target_batch, service).p99 > slo {
        return None; // even trickle traffic misses the SLO
    }
    let (mut lo, mut hi) = (1.0f64, 1e12f64);
    for _ in 0..80 {
        let mid = (lo * hi).sqrt();
        if predict(config, mid, target_batch, service).p99 <= slo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Sweeps windows × parallel-window counts, returning the configuration
/// that sustains the highest arrival rate with P99 ≤ `slo`.
///
/// # Panics
///
/// Panics if no configuration meets the SLO at any rate.
pub fn tune_coalescing(
    target_batch: u64,
    slo: SimTime,
    service: &impl Fn(u64) -> SimTime,
) -> CoalescingChoice {
    let windows = [1u64, 2, 5, 10, 20, 50, 100]
        .into_iter()
        .map(SimTime::from_millis);
    let mut candidates: Vec<CoalescingChoice> = Vec::new();
    for window in windows {
        for parallel_windows in [1u32, 2, 4] {
            let config = CoalescingConfig {
                window,
                parallel_windows,
            };
            let Some(rate) = max_rate(config, target_batch, slo, service) else {
                continue;
            };
            let prediction = predict(config, rate, target_batch, service);
            candidates.push(CoalescingChoice {
                config,
                prediction,
                max_rate_per_s: rate,
            });
        }
    }
    let best_rate = candidates
        .iter()
        .map(|c| c.max_rate_per_s)
        .fold(0.0, f64::max);
    // Among near-tied rates, prefer the fullest batches (the paper's
    // ">95% requests per batch" operating points).
    candidates
        .into_iter()
        .filter(|c| c.max_rate_per_s >= best_rate * 0.98)
        .max_by(|a, b| {
            a.prediction
                .fill
                .partial_cmp(&b.prediction.fill)
                .expect("finite fills")
        })
        .expect("at least one configuration must be feasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ranking-model service profile: 2 ms fixed + 20 µs per sample
    /// (s(512) ≈ 12.2 ms against the 100 ms SLO).
    fn service(batch: u64) -> SimTime {
        SimTime::from_micros(2000) + SimTime::from_micros(20) * batch
    }

    #[test]
    fn prediction_scales_with_rate() {
        let config = CoalescingConfig {
            window: SimTime::from_millis(10),
            parallel_windows: 1,
        };
        let slow = predict(config, 1_000.0, 512, &service);
        let fast = predict(config, 40_000.0, 512, &service);
        assert!(fast.batch > slow.batch);
        assert!(fast.fill > slow.fill);
        assert!((slow.batch - 10.0).abs() < 1e-9); // 1k/s × 10 ms
    }

    #[test]
    fn full_batches_close_early() {
        // 512 requests arrive in ~17 ms at 30k/s: the 50 ms window never
        // expires; gather time is the fill time (~17 ms), and P99 stays
        // well below window + inflated service.
        let config = CoalescingConfig {
            window: SimTime::from_millis(50),
            parallel_windows: 1,
        };
        let p = predict(config, 30_000.0, 512, &service);
        assert!((p.batch - 512.0).abs() < 1e-9);
        assert_eq!(p.fill, 1.0);
        assert!(p.p99 < SimTime::from_millis(60), "p99 {}", p.p99);
        assert!(p.utilization < 0.8);
    }

    #[test]
    fn overload_predicts_unbounded_p99() {
        // Capacity at batch 512 is 512/12.24 ms ≈ 41.8k/s; offer 2×.
        let config = CoalescingConfig {
            window: SimTime::from_millis(10),
            parallel_windows: 1,
        };
        let p = predict(config, 84_000.0, 512, &service);
        assert_eq!(p.p99, SimTime::MAX);
        assert_eq!(p.utilization, 1.0);
    }

    #[test]
    fn tuner_achieves_95_percent_fill() {
        // §4.1: ">95% requests per batch" at the tuned operating point.
        let choice = tune_coalescing(512, SimTime::from_millis(100), &service);
        assert!(
            choice.prediction.fill > 0.95,
            "fill {:.3} at window {}",
            choice.prediction.fill,
            choice.config.window
        );
        assert!(choice.prediction.p99 <= SimTime::from_millis(100));
        assert!(choice.max_rate_per_s > 0.0);
    }

    #[test]
    fn tight_slo_sustains_less_traffic() {
        let tight = tune_coalescing(512, SimTime::from_millis(25), &service);
        let loose = tune_coalescing(512, SimTime::from_millis(200), &service);
        assert!(loose.max_rate_per_s >= tight.max_rate_per_s);
    }

    #[test]
    fn throughput_is_sensitive_to_window() {
        // The §4.1 observation: P99-constrained throughput swings sharply
        // with the window choice. Tiny windows emit half-empty batches
        // whose fixed service cost caps capacity.
        let slo = SimTime::from_millis(100);
        let rate_at = |w_ms: u64| {
            max_rate(
                CoalescingConfig {
                    window: SimTime::from_millis(w_ms),
                    parallel_windows: 1,
                },
                512,
                slo,
                &service,
            )
            .unwrap_or(0.0)
        };
        let r1 = rate_at(1);
        let r20 = rate_at(20);
        assert!(
            r20 > 1.5 * r1,
            "window sensitivity too low: 1 ms → {r1:.0}/s, 20 ms → {r20:.0}/s"
        );
    }

    #[test]
    fn parallel_windows_help_small_windows() {
        // With a small window, more parallel windows raise fill-limited
        // capacity... but split the per-window arrival rate; the tuner must
        // weigh both.
        let slo = SimTime::from_millis(100);
        let choice = tune_coalescing(512, slo, &service);
        // Whatever the winner, it must beat the worst single configuration.
        let worst = max_rate(
            CoalescingConfig {
                window: SimTime::from_millis(1),
                parallel_windows: 1,
            },
            512,
            slo,
            &service,
        )
        .unwrap_or(0.0);
        assert!(choice.max_rate_per_s >= worst);
    }
}
