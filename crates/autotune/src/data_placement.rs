//! Data-placement autotuning (§4.1).
//!
//! The paper's rule: "configure the LLS to hold the entire activation
//! buffer and use the remaining SRAM for LLC. When the activation buffer is
//! too large to fit, compare the performance of the nearest lower batch
//! size where activations do fit in LLS with the current batch size with
//! activations in LLC and pick the winner."

use mtia_core::units::Bytes;
use mtia_model::graph::Graph;
use mtia_sim::chip::ChipSim;
use mtia_sim::mem::sram::SramPartition;

/// How the tuner decided to place activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementDecision {
    /// Activations fit: LLS sized to the buffer, rest is LLC.
    PinnedInLls {
        /// Granules given to the LLS.
        lls_granules: u32,
    },
    /// Activations did not fit at the requested batch, but a smaller batch
    /// that fits wins on throughput.
    ReducedBatch {
        /// The winning batch size.
        batch: u64,
        /// Granules given to the LLS at that batch.
        lls_granules: u32,
    },
    /// Activations did not fit and streaming them through the LLC at the
    /// original batch still wins.
    LlcStreaming,
}

/// Outcome of placement tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOutcome {
    /// The decision taken.
    pub decision: PlacementDecision,
    /// Throughput (samples/s) of the winning configuration.
    pub throughput: f64,
    /// Activation buffer at the winning batch size.
    pub activation_bytes: Bytes,
}

/// Runs the §4.1 placement rule for a model built by `build` at `batch`.
///
/// `build` must return a graph for any positive batch size.
pub fn tune_placement(sim: &ChipSim, batch: u64, build: impl Fn(u64) -> Graph) -> PlacementOutcome {
    let sram = &sim.spec().sram;
    let graph = build(batch);
    let compiled = mtia_compiler::compile(&graph, mtia_compiler::CompilerOptions::all());
    let activation_bytes = compiled
        .graph
        .peak_activation_bytes_for_order(&compiled.plan.order);

    if let Some(p) = SramPartition::fit_activations(sram, activation_bytes) {
        let report = compiled.run(sim);
        return PlacementOutcome {
            decision: PlacementDecision::PinnedInLls {
                lls_granules: p.lls_granules,
            },
            throughput: report.throughput_samples_per_s(),
            activation_bytes,
        };
    }

    // Doesn't fit: find the nearest lower batch size that does.
    let mut fitting_batch = None;
    let mut b = batch / 2;
    while b >= 1 {
        let g = build(b);
        let c = mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all());
        let act = c.graph.peak_activation_bytes_for_order(&c.plan.order);
        if let Some(p) = SramPartition::fit_activations(sram, act) {
            fitting_batch = Some((b, p.lls_granules, act, c));
            break;
        }
        b /= 2;
    }

    let spilled_report = compiled.run(sim);
    let spilled_tput = spilled_report.throughput_samples_per_s();

    match fitting_batch {
        Some((b, granules, act, c)) => {
            let fit_tput = c.run(sim).throughput_samples_per_s();
            if fit_tput >= spilled_tput {
                PlacementOutcome {
                    decision: PlacementDecision::ReducedBatch {
                        batch: b,
                        lls_granules: granules,
                    },
                    throughput: fit_tput,
                    activation_bytes: act,
                }
            } else {
                PlacementOutcome {
                    decision: PlacementDecision::LlcStreaming,
                    throughput: spilled_tput,
                    activation_bytes,
                }
            }
        }
        None => PlacementOutcome {
            decision: PlacementDecision::LlcStreaming,
            throughput: spilled_tput,
            activation_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::chips;
    use mtia_model::models::dlrm::DlrmConfig;
    use mtia_model::models::zoo;

    fn sim() -> ChipSim {
        ChipSim::new(chips::mtia2i())
    }

    #[test]
    fn small_model_pins_in_lls() {
        let out = tune_placement(&sim(), 512, |b| DlrmConfig::small(b).build());
        match out.decision {
            PlacementDecision::PinnedInLls { lls_granules } => {
                assert!(lls_granules >= 1);
            }
            other => panic!("expected pinning, got {other:?}"),
        }
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn oversized_batch_triggers_comparison() {
        // LC1 at an absurd batch blows past the 256 MB SRAM; the rule must
        // fall back to a fitting batch or LLC streaming — and the winner
        // must not be slower than naive spilling.
        let models = zoo::fig6_models();
        let lc1 = &models[0];
        let out = tune_placement(&sim(), 1 << 17, |b| lc1.graph_at(b));
        assert!(!matches!(
            out.decision,
            PlacementDecision::PinnedInLls { .. }
        ));
        assert!(out.throughput > 0.0);
        // The tuned decision beats or equals pure spilling at the original
        // batch by construction; verify the reduced-batch path was taken
        // (activations at 128 Ki samples cannot stream competitively).
        if let PlacementDecision::ReducedBatch { batch, .. } = out.decision {
            assert!(batch < 1 << 17);
        }
    }

    #[test]
    fn fitting_lls_sized_to_buffer() {
        let out = tune_placement(&sim(), 256, |b| DlrmConfig::small(b).build());
        if let PlacementDecision::PinnedInLls { lls_granules } = out.decision {
            // The buffer needs exactly ceil(bytes/32 MiB) granules.
            let granule = chips::mtia2i().sram.partition_granule.as_u64();
            let expected = out.activation_bytes.as_u64().div_ceil(granule).max(1) as u32;
            assert_eq!(lls_granules, expected);
        } else {
            panic!("expected pinned placement");
        }
    }
}
