//! Parametric module cost and power over the design axes.
//!
//! The search needs a cost side or it would trivially pick the maximal
//! configuration; the paper's §3.6 argument is exactly that the shipped
//! point balances performance *against* silicon, memory, and power
//! spend. This model prices a candidate back into the [`calib`] TCO
//! units, anchored so the shipped design point reproduces the
//! calibrated module bill exactly: 419.84 mm² of die, 8.0 cost units,
//! 65 W typical — the same numbers every other experiment uses.
//!
//! [`calib`]: mtia_core::calib

use mtia_core::units::Watts;

use super::space::{DesignPoint, MemTech};

/// Die area of everything that is not PEs or SRAM arrays (NoC, memory
/// controllers and PHYs, host interface, control cores), in mm².
/// Derived: the published 25.6 mm × 16.4 mm die minus the modeled PE
/// and SRAM contributions.
pub const AREA_BASE_MM2: f64 = 153.04;

/// Logic area of one PE (DPE + SIMD + RE + local control), excluding
/// its Local Memory arrays, in mm².
pub const PE_LOGIC_AREA_MM2: f64 = 2.2;

/// Area of one MiB of on-die SRAM (dense 5 nm macro, same for the
/// shared LLC/LLS and the per-PE Local Memory), in mm².
pub const SRAM_AREA_MM2_PER_MIB: f64 = 0.45;

/// Per-module cost that does not scale with the die: package, board,
/// voltage regulation.
pub const MODULE_BASE_COST: f64 = 1.0;

/// Cost of the 128 GB LPDDR5 memory system.
pub const LPDDR_COST: f64 = 1.6;

/// Cost of the hypothetical two-stack 48 GB HBM system plus its
/// interposer — 3× the LPDDR bill for three-eighths the capacity, the
/// §3.6 "reduce cost" half of the argument.
pub const HBM_COST: f64 = 4.8;

/// Die cost per mm² *at the shipped area*, derived so the shipped
/// 419.84 mm² die closes the calibrated 8.0-unit module: 8.0 −
/// [`MODULE_BASE_COST`] − [`LPDDR_COST`] spread over the shipped area.
pub const DIE_COST_PER_MM2: f64 =
    (mtia_core::calib::MTIA_MODULE_COST - MODULE_BASE_COST - LPDDR_COST) / SHIPPED_DIE_AREA_MM2;

/// The shipped die area (25.6 mm × 16.4 mm).
pub const SHIPPED_DIE_AREA_MM2: f64 = 419.84;

/// Defect density for the die-yield curve, per mm². Per-die yield falls
/// as `exp(−D·A)`, so cost per *good* die grows superlinearly in area —
/// the reason "just double the grid" is not free even before power.
/// Anchored so the shipped area pays exactly [`DIE_COST_PER_MM2`].
pub const DEFECT_DENSITY_PER_MM2: f64 = 0.0025;

/// Frequency-independent power: NoC, control cores, PCIe and memory
/// PHYs, in W.
pub const POWER_BASE_W: f64 = 12.0;

/// LPDDR memory-system power, in W.
pub const LPDDR_POWER_W: f64 = 10.0;

/// HBM memory-system power (two stacks plus PHYs) — the §3.6 "reduce
/// power" half, in W.
pub const HBM_POWER_W: f64 = 21.0;

/// SRAM power per MiB at the nominal clock, in W.
pub const SRAM_W_PER_MIB: f64 = 0.02;

/// Local Memory power per KiB (per PE) at the nominal clock, in W.
pub const LM_W_PER_KIB: f64 = 0.0005;

/// Per-PE logic power at the nominal clock, in W. Derived so the
/// shipped chip draws exactly its calibrated 65 W typical:
/// 65 = 12 + 10 + 256·0.02 + 64·(384·0.0005 + x).
pub const PE_LOGIC_W: f64 = 0.399_875;

/// The nominal (shipped) clock the dynamic-power term is anchored at.
pub const NOMINAL_FREQ_MHZ: f64 = 1350.0;

/// Dynamic power grows as f·V² with voltage tracking frequency — the
/// §5.2 overclocking study's supply-margin curve, ≈ f^2.8 overall.
pub const FREQ_POWER_EXPONENT: f64 = 2.8;

/// Thermal budget: a candidate whose *typical* power exceeds the
/// shipped 85 W TDP cannot be cooled by the same 24-module server and
/// is infeasible (§5.2 pushed the clock only as far as the power
/// margin allowed).
pub const THERMAL_BUDGET_W: f64 = 85.0;

/// Die area of a candidate, in mm².
pub fn die_area_mm2(d: &DesignPoint) -> f64 {
    let pe_count = (d.pe_rows * d.pe_cols) as f64;
    let lm_mib_per_pe = d.local_mem_kib as f64 / 1024.0;
    AREA_BASE_MM2
        + pe_count * (PE_LOGIC_AREA_MM2 + lm_mib_per_pe * SRAM_AREA_MM2_PER_MIB)
        + d.sram_mib as f64 * SRAM_AREA_MM2_PER_MIB
}

/// Cost of a die of `area` mm², yield-adjusted: wafer share grows
/// linearly in area, and the `exp(D·ΔA)` factor is the inverse-yield
/// penalty relative to the shipped die (larger dies catch more defects,
/// so each *good* die costs superlinearly more).
pub fn die_cost(area_mm2: f64) -> f64 {
    area_mm2 * DIE_COST_PER_MM2 * (DEFECT_DENSITY_PER_MM2 * (area_mm2 - SHIPPED_DIE_AREA_MM2)).exp()
}

/// Module cost of a candidate, in the [`calib`](mtia_core::calib)
/// cost units ([`MTIA_MODULE_COST`](mtia_core::calib::MTIA_MODULE_COST)
/// for the shipped point).
pub fn module_cost(d: &DesignPoint) -> f64 {
    let mem = match d.mem {
        MemTech::Lpddr => LPDDR_COST,
        MemTech::Hbm => HBM_COST,
    };
    MODULE_BASE_COST + die_cost(die_area_mm2(d)) + mem
}

/// Typical power of a candidate (65 W for the shipped point).
pub fn typical_power(d: &DesignPoint) -> Watts {
    let mem = match d.mem {
        MemTech::Lpddr => LPDDR_POWER_W,
        MemTech::Hbm => HBM_POWER_W,
    };
    let pe_count = (d.pe_rows * d.pe_cols) as f64;
    let dynamic = d.sram_mib as f64 * SRAM_W_PER_MIB
        + pe_count * (d.local_mem_kib as f64 * LM_W_PER_KIB + PE_LOGIC_W);
    let freq_factor = (d.freq_mhz as f64 / NOMINAL_FREQ_MHZ).powf(FREQ_POWER_EXPONENT);
    Watts::new(POWER_BASE_W + mem + dynamic * freq_factor)
}

/// Whether the candidate fits the shipped server's thermal envelope.
pub fn is_thermally_feasible(d: &DesignPoint) -> bool {
    typical_power(d).as_f64() <= THERMAL_BUDGET_W
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_point_reproduces_the_calibrated_module_bill() {
        let p = DesignPoint::paper();
        assert!((die_area_mm2(&p) - SHIPPED_DIE_AREA_MM2).abs() < 1e-9);
        assert!((module_cost(&p) - mtia_core::calib::MTIA_MODULE_COST).abs() < 1e-9);
        assert!((typical_power(&p).as_f64() - 65.0).abs() < 1e-9);
        assert!(is_thermally_feasible(&p));
    }

    #[test]
    fn every_axis_has_a_cost_slope() {
        let p = DesignPoint::paper();
        let mut bigger_sram = p;
        bigger_sram.sram_mib = 512;
        assert!(module_cost(&bigger_sram) > module_cost(&p));
        assert!(typical_power(&bigger_sram).as_f64() > 65.0);

        let mut bigger_grid = p;
        bigger_grid.pe_rows = 16;
        assert!(module_cost(&bigger_grid) > module_cost(&p));

        let mut hbm = p;
        hbm.mem = MemTech::Hbm;
        assert!(module_cost(&hbm) > module_cost(&p));
        assert!(typical_power(&hbm).as_f64() > 65.0);

        let mut faster = p;
        faster.freq_mhz = 1600;
        assert_eq!(module_cost(&faster), module_cost(&p));
        assert!(typical_power(&faster).as_f64() > 65.0);

        let mut more_lm = p;
        more_lm.local_mem_kib = 512;
        assert!(module_cost(&more_lm) > module_cost(&p));
    }

    #[test]
    fn thermal_budget_gates_the_aggressive_corners() {
        // The shipped grid cannot be overclocked to 1.6 GHz...
        let mut hot = DesignPoint::paper();
        hot.freq_mhz = 1600;
        assert!(!is_thermally_feasible(&hot));
        // ...and the double-size grid only fits the envelope downclocked.
        let mut wide = DesignPoint::paper();
        wide.pe_rows = 16;
        assert!(!is_thermally_feasible(&wide));
        wide.freq_mhz = 1100;
        assert!(is_thermally_feasible(&wide));
    }
}
