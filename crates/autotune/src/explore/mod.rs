//! Search-driven co-design: the §3.6/E18 design axes as a searchable
//! space.
//!
//! The paper presents its design point — 256 MiB SRAM, an 8×8 PE grid,
//! LPDDR over HBM, 1.35 GHz, 384 KiB Local Memory per PE — as the
//! output of hand-driven co-design iterations (Fig. 4). This module
//! turns those levers into a parameterized [`ChipSpecSpace`], prices
//! candidates through a calibrated cost/power model anchored on the
//! shipped module bill, and drives a deterministic seeded
//! successive-halving search with Pareto pruning over any
//! caller-supplied objective. E25 (`reproduce --explore`) supplies the
//! multi-model Perf/TCO + Perf/Watt objective and checks that the
//! search rediscovers the paper's point from a cold start.
//!
//! Everything here is byte-identical at any thread count: candidate
//! identity is a seed-free mixed-radix index, sampling is a pure
//! function of `(seed, label)`, and evaluation fans out through
//! [`mtia_core::pool`] with index-ordered results. See
//! [`search`] for the full determinism argument.

pub mod cost;
pub mod pareto;
pub mod search;
pub mod space;

pub use cost::{die_area_mm2, is_thermally_feasible, module_cost, typical_power};
pub use pareto::{dominates, pareto_indices, ObjectivePoint};
pub use search::{explore, EvaluatedPoint, ExploreConfig, ExploreOutcome, GenerationStats};
pub use space::{ChipSpecSpace, DesignPoint, MemTech};
