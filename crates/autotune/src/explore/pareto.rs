//! Pareto dominance over the paper's two efficiency axes.

/// A candidate's score: relative Perf, Perf/TCO, and Perf/Watt vs the
/// fixed GPU baseline (the E6/F6 frontier metrics). Dominance and
/// ranking use only the two efficiency axes — `perf` rides along for
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectivePoint {
    /// Raw throughput ratio vs the baseline.
    pub perf: f64,
    /// Perf/TCO ratio vs the baseline (the paper's primary metric).
    pub perf_per_tco: f64,
    /// Perf/Watt ratio vs the baseline.
    pub perf_per_watt: f64,
}

/// Whether `a` Pareto-dominates `b` on (Perf/TCO, Perf/Watt): at least
/// as good on both axes and strictly better on one.
pub fn dominates(a: &ObjectivePoint, b: &ObjectivePoint) -> bool {
    a.perf_per_tco >= b.perf_per_tco
        && a.perf_per_watt >= b.perf_per_watt
        && (a.perf_per_tco > b.perf_per_tco || a.perf_per_watt > b.perf_per_watt)
}

/// Indices of the non-dominated points, in input order.
///
/// Quadratic scan — exact by construction, and the sizes here (a few
/// hundred evaluated candidates) never justify the sweep-line version.
/// Duplicate points do not dominate each other, so ties all survive.
pub fn pareto_indices(points: &[ObjectivePoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(tco: f64, watt: f64) -> ObjectivePoint {
        ObjectivePoint {
            perf: 1.0,
            perf_per_tco: tco,
            perf_per_watt: watt,
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&p(2.0, 1.0), &p(1.0, 1.0)));
        assert!(dominates(&p(2.0, 2.0), &p(1.0, 1.0)));
        assert!(!dominates(&p(1.0, 1.0), &p(1.0, 1.0)));
        assert!(!dominates(&p(2.0, 0.5), &p(1.0, 1.0)));
    }

    #[test]
    fn front_keeps_trade_offs_and_ties() {
        let pts = vec![p(2.0, 0.5), p(1.0, 1.0), p(0.5, 0.4), p(1.0, 1.0)];
        // The dominated (0.5, 0.4) falls; the duplicated corner survives
        // twice.
        assert_eq!(pareto_indices(&pts), vec![0, 1, 3]);
    }
}
