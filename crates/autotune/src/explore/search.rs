//! The deterministic search driver: seeded successive halving over
//! batched generations with Pareto pruning.
//!
//! # Determinism argument
//!
//! Every source of order in the driver is explicit:
//!
//! * candidate identity is a space *index* (mixed-radix, seed-free);
//! * generation sampling takes a prefix of
//!   [`seed::shuffled_indices`] — a pure function of `(seed, label,
//!   |space|)`, never a shared mutable RNG;
//! * batches are sorted ascending by index before evaluation and run
//!   through [`pool::parallel_map`], which returns results in
//!   submission order at any thread count;
//! * all bookkeeping lives in `BTreeMap`/`Vec` (no hash-order
//!   iteration), and every ranking tie-breaks by ascending index.
//!
//! The objective itself must be a pure function of the design point;
//! the process-wide `sim::costcache` underneath it memoizes pure values
//! only, so hit/miss scheduling cannot change any result. The engine
//! keeps its own evaluation memo across generations, whose hit counts
//! — unlike the cost cache's — are deterministic and safe to render.

use std::collections::BTreeMap;

use mtia_core::error::ConfigError;
use mtia_core::{pool, seed};

use super::pareto::{pareto_indices, ObjectivePoint};
use super::space::{ChipSpecSpace, DesignPoint};

/// Search-driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Root seed for generation sampling.
    pub seed: u64,
    /// Candidates requested per generation.
    pub population: usize,
    /// Number of batched generations.
    pub generations: usize,
    /// Survivor count entering generation 1; halved each generation
    /// after that (successive halving), floored at 1.
    pub survivors: usize,
}

impl ExploreConfig {
    /// The E25 configuration: four generations of 48 over the
    /// 384-point paper space, 16 initial survivors.
    pub fn paper() -> Self {
        ExploreConfig {
            seed: seed::DEFAULT_SEED,
            population: 48,
            generations: 4,
            survivors: 16,
        }
    }

    /// An exhaustive single-generation sweep of a space with `len`
    /// candidates — generation 0 evaluates every point, so the result
    /// is the true optimum and enlarging the space can never worsen it.
    pub fn exhaustive(len: usize) -> Self {
        ExploreConfig {
            seed: seed::DEFAULT_SEED,
            population: len.max(1),
            generations: 1,
            survivors: 1,
        }
    }
}

/// One evaluated feasible candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedPoint {
    /// Candidate index in the space's enumeration.
    pub index: usize,
    /// The design coordinates.
    pub design: DesignPoint,
    /// Its objective score.
    pub score: ObjectivePoint,
}

/// Telemetry for one generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation number (0-based).
    pub generation: usize,
    /// Candidates the generation requested (before memo lookup).
    pub requested: usize,
    /// Fresh objective evaluations.
    pub evaluated: usize,
    /// Requests satisfied by the engine's evaluation memo.
    pub cache_hits: usize,
    /// Fresh evaluations rejected as infeasible (e.g. over the thermal
    /// budget).
    pub infeasible: usize,
    /// Evaluated feasible points currently Pareto-dominated
    /// (cumulative).
    pub dominated: usize,
    /// Current Pareto-frontier size.
    pub frontier_size: usize,
    /// Best Perf/TCO seen so far.
    pub best_perf_per_tco: f64,
}

/// The search result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// Every feasible evaluated candidate, ascending by index.
    pub evaluated: Vec<EvaluatedPoint>,
    /// Total candidates rejected as infeasible.
    pub infeasible: usize,
    /// The discovered Pareto frontier over (Perf/TCO, Perf/Watt),
    /// sorted by Perf/TCO descending (ties by ascending index).
    pub frontier: Vec<EvaluatedPoint>,
    /// The best candidate by Perf/TCO (ties by ascending index).
    pub best: EvaluatedPoint,
    /// Per-generation telemetry.
    pub generations: Vec<GenerationStats>,
}

impl ExploreOutcome {
    /// Engine-memo hit rate across the whole search: deterministic
    /// (unlike the process-wide cost cache's counters) because it
    /// counts *requests* resolved by the per-search memo, a pure
    /// function of the generation schedule.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: usize = self.generations.iter().map(|g| g.cache_hits).sum();
        let requested: usize = self.generations.iter().map(|g| g.requested).sum();
        if requested == 0 {
            0.0
        } else {
            hits as f64 / requested as f64
        }
    }
}

/// Runs the search. `objective` returns `None` for infeasible
/// candidates (the thermal gate); it must be a pure function of the
/// design point.
///
/// When `config.population >= space.len()`, generation 0 evaluates the
/// entire space, so the returned best is the global optimum; in that
/// regime enlarging the space can never worsen the best objective
/// (search monotonicity, pinned by the property suite).
///
/// # Errors
///
/// Returns a [`ConfigError`] if the space fails validation, the
/// configuration is degenerate (zero population or generations), or no
/// feasible candidate was found.
pub fn explore<F>(
    space: &ChipSpecSpace,
    config: &ExploreConfig,
    objective: F,
) -> Result<ExploreOutcome, ConfigError>
where
    F: Fn(&DesignPoint) -> Option<ObjectivePoint> + Sync,
{
    space.validate()?;
    if config.population == 0 || config.generations == 0 {
        return Err(ConfigError::OutOfRange {
            what: "explore config",
            valid: "population and generations must be at least 1",
        });
    }
    let len = space.len();
    let mut memo: BTreeMap<usize, Option<ObjectivePoint>> = BTreeMap::new();
    let mut generations = Vec::with_capacity(config.generations);
    let mut survivors: Vec<usize> = Vec::new();

    for g in 0..config.generations {
        let requested = if g == 0 {
            if len <= config.population {
                (0..len).collect()
            } else {
                let mut batch: Vec<usize> =
                    seed::shuffled_indices(config.seed, "explore/gen0", len)[..config.population]
                        .to_vec();
                batch.sort_unstable();
                batch
            }
        } else {
            // Survivor neighborhoods first (in rank order) — already
            // evaluated neighbors become engine-memo hits — then fresh
            // seeded immigrants to keep exploring.
            let mut batch: Vec<usize> = Vec::new();
            let mut in_batch: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for &s in &survivors {
                for n in space.neighbors(s) {
                    if in_batch.insert(n) {
                        batch.push(n);
                    }
                }
            }
            batch.truncate(config.population);
            if batch.len() < config.population {
                let label = format!("explore/gen{g}");
                for idx in seed::shuffled_indices(config.seed, &label, len) {
                    if batch.len() >= config.population {
                        break;
                    }
                    if !memo.contains_key(&idx) && in_batch.insert(idx) {
                        batch.push(idx);
                    }
                }
            }
            batch.sort_unstable();
            batch
        };

        let fresh: Vec<usize> = requested
            .iter()
            .copied()
            .filter(|i| !memo.contains_key(i))
            .collect();
        let cache_hits = requested.len() - fresh.len();
        let scores = pool::parallel_map(fresh.clone(), |_, idx| objective(&space.candidate(idx)));
        let mut infeasible_new = 0;
        for (idx, score) in fresh.iter().copied().zip(scores) {
            if score.is_none() {
                infeasible_new += 1;
            }
            memo.insert(idx, score);
        }

        // Rank the feasible pool: Perf/TCO descending, index ascending.
        let feasible: Vec<(usize, ObjectivePoint)> = memo
            .iter()
            .filter_map(|(&i, s)| s.map(|s| (i, s)))
            .collect();
        let mut ranked: Vec<usize> = (0..feasible.len()).collect();
        ranked.sort_by(|&a, &b| {
            feasible[b]
                .1
                .perf_per_tco
                .partial_cmp(&feasible[a].1.perf_per_tco)
                .expect("objective scores must be finite")
                .then(feasible[a].0.cmp(&feasible[b].0))
        });
        let keep = (config.survivors >> g).max(1);
        survivors = ranked.iter().take(keep).map(|&r| feasible[r].0).collect();

        let front = pareto_indices(&feasible.iter().map(|&(_, s)| s).collect::<Vec<_>>());
        generations.push(GenerationStats {
            generation: g,
            requested: requested.len(),
            evaluated: fresh.len(),
            cache_hits,
            infeasible: infeasible_new,
            dominated: feasible.len() - front.len(),
            frontier_size: front.len(),
            best_perf_per_tco: ranked
                .first()
                .map(|&r| feasible[r].1.perf_per_tco)
                .unwrap_or(0.0),
        });
    }

    let evaluated: Vec<EvaluatedPoint> = memo
        .iter()
        .filter_map(|(&i, s)| {
            s.map(|score| EvaluatedPoint {
                index: i,
                design: space.candidate(i),
                score,
            })
        })
        .collect();
    let infeasible = memo.len() - evaluated.len();
    if evaluated.is_empty() {
        return Err(ConfigError::OutOfRange {
            what: "explore objective",
            valid: "at least one thermally feasible candidate",
        });
    }
    let mut frontier: Vec<EvaluatedPoint> =
        pareto_indices(&evaluated.iter().map(|e| e.score).collect::<Vec<_>>())
            .into_iter()
            .map(|i| evaluated[i])
            .collect();
    frontier.sort_by(|a, b| {
        b.score
            .perf_per_tco
            .partial_cmp(&a.score.perf_per_tco)
            .expect("objective scores must be finite")
            .then(a.index.cmp(&b.index))
    });
    let best = *evaluated
        .iter()
        .max_by(|a, b| {
            a.score
                .perf_per_tco
                .partial_cmp(&b.score.perf_per_tco)
                .expect("objective scores must be finite")
                .then(b.index.cmp(&a.index))
        })
        .expect("at least one feasible candidate");
    Ok(ExploreOutcome {
        evaluated,
        infeasible,
        frontier,
        best,
        generations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic separable objective with its optimum at the paper
    /// point: each axis contributes a concave bump centered on the
    /// shipped coordinate.
    fn bump(d: &DesignPoint) -> Option<ObjectivePoint> {
        let p = DesignPoint::paper();
        let dist = (d.sram_mib as f64 - p.sram_mib as f64).abs() / 256.0
            + ((d.pe_rows * d.pe_cols) as f64 - 64.0).abs() / 64.0
            + if d.mem == p.mem { 0.0 } else { 1.0 }
            + (d.freq_mhz as f64 - p.freq_mhz as f64).abs() / 1350.0
            + (d.local_mem_kib as f64 - p.local_mem_kib as f64).abs() / 384.0;
        let v = 2.0 - dist;
        Some(ObjectivePoint {
            perf: v,
            perf_per_tco: v,
            perf_per_watt: v,
        })
    }

    #[test]
    fn exhaustive_search_finds_the_global_optimum() {
        let space = ChipSpecSpace::paper();
        let out = explore(&space, &ExploreConfig::exhaustive(space.len()), bump).unwrap();
        assert_eq!(out.best.design, DesignPoint::paper());
        assert_eq!(out.evaluated.len(), space.len());
        assert_eq!(out.generations[0].cache_hits, 0);
    }

    #[test]
    fn sampled_search_climbs_to_the_optimum() {
        let space = ChipSpecSpace::paper();
        let out = explore(&space, &ExploreConfig::paper(), bump).unwrap();
        assert_eq!(out.best.design, DesignPoint::paper());
        assert!(out.evaluated.len() + out.infeasible < space.len());
        // Later generations revisit survivors' neighborhoods, so the
        // engine memo must see hits.
        assert!(out.generations.iter().any(|g| g.cache_hits > 0));
        assert!(out.cache_hit_rate() > 0.0);
    }

    #[test]
    fn infeasible_candidates_are_counted_not_ranked() {
        let space = ChipSpecSpace::tiny();
        let gate = |d: &DesignPoint| {
            if d.sram_mib > 128 {
                None
            } else {
                bump(d)
            }
        };
        let out = explore(&space, &ExploreConfig::exhaustive(space.len()), gate).unwrap();
        assert_eq!(out.infeasible, 4);
        assert!(out.evaluated.iter().all(|e| e.design.sram_mib == 128));
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let space = ChipSpecSpace::tiny();
        let cfg = ExploreConfig {
            population: 0,
            ..ExploreConfig::paper()
        };
        assert!(matches!(
            explore(&space, &cfg, bump),
            Err(ConfigError::OutOfRange { .. })
        ));
        let all_infeasible = |_: &DesignPoint| -> Option<ObjectivePoint> { None };
        assert!(matches!(
            explore(
                &space,
                &ExploreConfig::exhaustive(space.len()),
                all_infeasible
            ),
            Err(ConfigError::OutOfRange { .. })
        ));
    }
}
