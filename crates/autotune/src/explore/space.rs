//! The parameterized chip design space: the five §3.6/E18 axes with
//! explicit discrete ranges, a mixed-radix enumeration, and a lossless
//! round-trip into [`ChipSpec`].

use mtia_core::error::ConfigError;
use mtia_core::spec::{chips, ChipSpec};
use mtia_core::units::{Bandwidth, Bytes, Hertz};

/// Off-chip memory technology (§3.6: "avoiding HBM to reduce cost and
/// power").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemTech {
    /// LPDDR5 at 204.8 GB/s, 128 GB, no inline ECC (the shipped choice).
    Lpddr,
    /// A hypothetical two-stack HBM system with inline ECC: 1 TB/s but
    /// only 48 GB — five times the bandwidth at three-eighths the
    /// capacity of the LPDDR SKU.
    Hbm,
}

impl MemTech {
    fn label(self) -> &'static str {
        match self {
            MemTech::Lpddr => "lpddr",
            MemTech::Hbm => "hbm",
        }
    }
}

/// SRAM partition granule: capacities must align to the 32 MiB LLC/LLS
/// granule of the shipped chip (§3.1).
pub const SRAM_GRANULE_MIB: u64 = 32;

/// One fully specified candidate chip: integer-valued coordinates on the
/// five design axes. Integer (not float) coordinates keep `Ord`/`Hash`
/// exact, which the deterministic search driver relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignPoint {
    /// Shared-SRAM (LLC/LLS) capacity in MiB.
    pub sram_mib: u64,
    /// PE grid rows.
    pub pe_rows: u32,
    /// PE grid columns.
    pub pe_cols: u32,
    /// Off-chip memory technology.
    pub mem: MemTech,
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Local Memory per PE in KiB.
    pub local_mem_kib: u64,
}

impl DesignPoint {
    /// The paper's hand-picked MTIA 2i design point (Table 2, as
    /// deployed after the §5.2 overclock): 256 MiB SRAM, an 8×8 PE
    /// grid, LPDDR, 1.35 GHz, 384 KiB Local Memory per PE.
    pub fn paper() -> Self {
        DesignPoint {
            sram_mib: 256,
            pe_rows: 8,
            pe_cols: 8,
            mem: MemTech::Lpddr,
            freq_mhz: 1350,
            local_mem_kib: 384,
        }
    }

    /// A short stable label, e.g. `sram256 8x8 lpddr 1350MHz lm384`.
    pub fn label(&self) -> String {
        format!(
            "sram{} {}x{} {} {}MHz lm{}",
            self.sram_mib,
            self.pe_rows,
            self.pe_cols,
            self.mem.label(),
            self.freq_mhz,
            self.local_mem_kib
        )
    }

    /// Validates the point against the physical ranges the cost and
    /// performance models are calibrated for.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(32..=1024).contains(&self.sram_mib) {
            return Err(ConfigError::OutOfRange {
                what: "explore SRAM capacity (MiB)",
                valid: "[32, 1024]",
            });
        }
        if !self.sram_mib.is_multiple_of(SRAM_GRANULE_MIB) {
            return Err(ConfigError::MisalignedCapacity {
                what: "explore SRAM",
                capacity: self.sram_mib * 1024 * 1024,
                granule: SRAM_GRANULE_MIB * 1024 * 1024,
            });
        }
        if !(1..=16).contains(&self.pe_rows) || !(1..=16).contains(&self.pe_cols) {
            return Err(ConfigError::OutOfRange {
                what: "explore PE grid",
                valid: "1..=16 rows and columns",
            });
        }
        if !(800..=2000).contains(&self.freq_mhz) {
            return Err(ConfigError::OutOfRange {
                what: "explore frequency (MHz)",
                valid: "[800, 2000]",
            });
        }
        if !(64..=1024).contains(&self.local_mem_kib) {
            return Err(ConfigError::OutOfRange {
                what: "explore Local Memory per PE (KiB)",
                valid: "[64, 1024]",
            });
        }
        Ok(())
    }

    /// Fraction of the shared-SRAM and DRAM bandwidth a chip with
    /// `lm_kib` of Local Memory per PE can actually sustain. Local
    /// Memory is the landing buffer for memory bursts: below the
    /// shipped 384 KiB the double-buffer depth no longer covers the
    /// latency–bandwidth product, bursts shorten, and (for LPDDR
    /// especially) page locality degrades — transfers stall between
    /// bursts. Beyond the knee the links are already saturated and
    /// extra capacity buys nothing but leakage.
    fn burst_efficiency(lm_kib: u64) -> f64 {
        (0.55 + 0.45 * lm_kib as f64 / 384.0).min(1.0)
    }

    /// Builds the candidate [`ChipSpec`] from the shipped 128 GB SKU.
    ///
    /// Local Memory bandwidth co-scales with its capacity (proportional
    /// banking: a macro twice the size has twice the banks) and the
    /// shared-SRAM and DRAM bandwidths are derated by the burst
    /// efficiency the Local Memory can sustain, all anchored at the
    /// shipped 384 KiB; [`ChipSpec::at_frequency`] then scales the
    /// frequency-proportional rates. The spec keeps the base chip's
    /// name so equivalent specs share cost-cache entries.
    pub fn chip_spec(&self) -> ChipSpec {
        let base = chips::mtia2i_128gb();
        let burst = Self::burst_efficiency(self.local_mem_kib);
        let mut spec = base.with_sram_capacity(Bytes::from_mib(self.sram_mib));
        spec.pe_rows = self.pe_rows;
        spec.pe_cols = self.pe_cols;
        spec.pe.local_memory = Bytes::from_kib(self.local_mem_kib);
        spec.pe.local_memory_bw = base
            .pe
            .local_memory_bw
            .scale(self.local_mem_kib as f64 / 384.0);
        spec.sram.bandwidth = spec.sram.bandwidth.scale(burst);
        if self.mem == MemTech::Hbm {
            spec = spec.with_hbm(Bandwidth::from_tb_per_s(1.0), Bytes::from_gib(48));
        }
        spec.dram.bandwidth = spec.dram.bandwidth.scale(burst);
        spec.at_frequency(Hertz::from_mhz(self.freq_mhz as f64))
    }

    /// Recovers the design coordinates from a [`ChipSpec`] built by
    /// [`chip_spec`](Self::chip_spec). Returns `None` if the spec's
    /// quantities do not sit exactly on integer coordinates.
    pub fn from_chip_spec(spec: &ChipSpec) -> Option<DesignPoint> {
        let sram_bytes = spec.sram.capacity.as_u64();
        let lm_bytes = spec.pe.local_memory.as_u64();
        if !sram_bytes.is_multiple_of(1024 * 1024) || !lm_bytes.is_multiple_of(1024) {
            return None;
        }
        let freq_mhz_f = spec.frequency.as_hz() / 1e6;
        let freq_mhz = freq_mhz_f.round();
        if (freq_mhz_f - freq_mhz).abs() > 1e-6 {
            return None;
        }
        Some(DesignPoint {
            sram_mib: sram_bytes / (1024 * 1024),
            pe_rows: spec.pe_rows,
            pe_cols: spec.pe_cols,
            mem: if spec.dram.inline_ecc {
                MemTech::Hbm
            } else {
                MemTech::Lpddr
            },
            freq_mhz: freq_mhz as u32,
            local_mem_kib: lm_bytes / 1024,
        })
    }
}

/// The discrete design space: one explicit value list per axis.
///
/// Enumeration is purely positional — a mixed-radix decode of the
/// candidate index over the axes in declared order — so candidate
/// `i` is the same point on every run, at every thread count, under
/// every seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipSpecSpace {
    /// SRAM capacities (MiB).
    pub sram_mib: Vec<u64>,
    /// PE grids as (rows, cols).
    pub pe_grid: Vec<(u32, u32)>,
    /// Memory technologies.
    pub mem: Vec<MemTech>,
    /// Clock frequencies (MHz).
    pub freq_mhz: Vec<u32>,
    /// Local Memory per PE (KiB).
    pub local_mem_kib: Vec<u64>,
}

impl ChipSpecSpace {
    /// The full E18 search space the paper's co-design levers span: the
    /// §3.6 SRAM ablation capacities, quarter- to double-size PE grids,
    /// LPDDR vs HBM, the §5.2 frequency ladder, and half- to
    /// quadruple-size Local Memory.
    pub fn paper() -> Self {
        ChipSpecSpace {
            sram_mib: vec![64, 128, 256, 512],
            pe_grid: vec![(4, 4), (8, 4), (8, 8), (16, 8)],
            mem: vec![MemTech::Lpddr, MemTech::Hbm],
            freq_mhz: vec![1100, 1350, 1600],
            local_mem_kib: vec![128, 256, 384, 512],
        }
    }

    /// A tiny 8-point space bracketing the paper point on three axes —
    /// the CI smoke and golden-fixture scenario, small enough to verify
    /// the optimum by hand.
    pub fn tiny() -> Self {
        ChipSpecSpace {
            sram_mib: vec![128, 256],
            pe_grid: vec![(8, 8)],
            mem: vec![MemTech::Lpddr],
            freq_mhz: vec![1100, 1350],
            local_mem_kib: vec![256, 384],
        }
    }

    /// Validates every axis: non-empty, and every value in range (so a
    /// search never constructs an invalid [`ChipSpec`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sram_mib.is_empty()
            || self.pe_grid.is_empty()
            || self.mem.is_empty()
            || self.freq_mhz.is_empty()
            || self.local_mem_kib.is_empty()
        {
            return Err(ConfigError::OutOfRange {
                what: "explore axis",
                valid: "every axis needs at least one value",
            });
        }
        for i in 0..self.len() {
            self.candidate(i).validate()?;
        }
        Ok(())
    }

    /// Number of candidate points (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.sram_mib.len()
            * self.pe_grid.len()
            * self.mem.len()
            * self.freq_mhz.len()
            * self.local_mem_kib.len()
    }

    /// Whether the space has no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes candidate `index` (mixed radix, axes in declared order;
    /// the Local-Memory axis varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn candidate(&self, index: usize) -> DesignPoint {
        assert!(index < self.len(), "candidate index out of range");
        let mut rest = index;
        let lm = self.local_mem_kib[rest % self.local_mem_kib.len()];
        rest /= self.local_mem_kib.len();
        let freq = self.freq_mhz[rest % self.freq_mhz.len()];
        rest /= self.freq_mhz.len();
        let mem = self.mem[rest % self.mem.len()];
        rest /= self.mem.len();
        let (rows, cols) = self.pe_grid[rest % self.pe_grid.len()];
        rest /= self.pe_grid.len();
        let sram = self.sram_mib[rest];
        DesignPoint {
            sram_mib: sram,
            pe_rows: rows,
            pe_cols: cols,
            mem,
            freq_mhz: freq,
            local_mem_kib: lm,
        }
    }

    /// Encodes a design point back to its candidate index, or `None` if
    /// any coordinate is not on the axes.
    pub fn index_of(&self, d: &DesignPoint) -> Option<usize> {
        let s = self.sram_mib.iter().position(|&v| v == d.sram_mib)?;
        let g = self
            .pe_grid
            .iter()
            .position(|&v| v == (d.pe_rows, d.pe_cols))?;
        let m = self.mem.iter().position(|&v| v == d.mem)?;
        let f = self.freq_mhz.iter().position(|&v| v == d.freq_mhz)?;
        let l = self
            .local_mem_kib
            .iter()
            .position(|&v| v == d.local_mem_kib)?;
        Some(
            (((s * self.pe_grid.len() + g) * self.mem.len() + m) * self.freq_mhz.len() + f)
                * self.local_mem_kib.len()
                + l,
        )
    }

    /// Every candidate, in enumeration order.
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        (0..self.len()).map(|i| self.candidate(i)).collect()
    }

    /// Candidate indices one axis step away from `index` (±1 position on
    /// each axis), in a fixed order: axes in declared order, the lower
    /// neighbor before the upper.
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let d = self.candidate(index);
        let s = self
            .sram_mib
            .iter()
            .position(|&v| v == d.sram_mib)
            .expect("decoded coordinate on axis");
        let g = self
            .pe_grid
            .iter()
            .position(|&v| v == (d.pe_rows, d.pe_cols))
            .expect("decoded coordinate on axis");
        let m = self
            .mem
            .iter()
            .position(|&v| v == d.mem)
            .expect("decoded coordinate on axis");
        let f = self
            .freq_mhz
            .iter()
            .position(|&v| v == d.freq_mhz)
            .expect("decoded coordinate on axis");
        let l = self
            .local_mem_kib
            .iter()
            .position(|&v| v == d.local_mem_kib)
            .expect("decoded coordinate on axis");
        let coords = [s, g, m, f, l];
        let radices = [
            self.sram_mib.len(),
            self.pe_grid.len(),
            self.mem.len(),
            self.freq_mhz.len(),
            self.local_mem_kib.len(),
        ];
        let mut out = Vec::new();
        for axis in 0..coords.len() {
            for step in [-1isize, 1] {
                let pos = coords[axis] as isize + step;
                if pos < 0 || pos >= radices[axis] as isize {
                    continue;
                }
                let mut c = coords;
                c[axis] = pos as usize;
                let idx = (((c[0] * radices[1] + c[1]) * radices[2] + c[2]) * radices[3] + c[3])
                    * radices[4]
                    + c[4];
                out.push(idx);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_round_trips_through_chip_spec() {
        let p = DesignPoint::paper();
        let spec = p.chip_spec();
        assert_eq!(DesignPoint::from_chip_spec(&spec), Some(p));
        // The paper point's spec is the shipped 128 GB SKU, bit for bit.
        assert_eq!(spec, chips::mtia2i_128gb());
    }

    #[test]
    fn enumeration_is_mixed_radix_in_declared_axis_order() {
        let s = ChipSpecSpace::tiny();
        assert_eq!(s.len(), 8);
        // Local Memory varies fastest, SRAM slowest.
        assert_eq!(s.candidate(0).local_mem_kib, 256);
        assert_eq!(s.candidate(1).local_mem_kib, 384);
        assert_eq!(s.candidate(0).sram_mib, 128);
        assert_eq!(s.candidate(7).sram_mib, 256);
        for i in 0..s.len() {
            assert_eq!(s.index_of(&s.candidate(i)), Some(i));
        }
    }

    #[test]
    fn neighbors_step_one_axis_at_a_time() {
        let s = ChipSpecSpace::paper();
        let paper = s.index_of(&DesignPoint::paper()).unwrap();
        let n = s.neighbors(paper);
        // Interior on sram/grid/freq/lm axes, edge on mem (lpddr is
        // first): 2+2+1+2+2 neighbors.
        assert_eq!(n.len(), 9);
        let d = s.candidate(paper);
        for &i in &n {
            let e = s.candidate(i);
            let diffs = [
                d.sram_mib != e.sram_mib,
                (d.pe_rows, d.pe_cols) != (e.pe_rows, e.pe_cols),
                d.mem != e.mem,
                d.freq_mhz != e.freq_mhz,
                d.local_mem_kib != e.local_mem_kib,
            ];
            assert_eq!(diffs.iter().filter(|&&x| x).count(), 1, "{e:?}");
        }
    }

    #[test]
    fn validation_rejects_out_of_range_axes_with_typed_errors() {
        let mut bad = ChipSpecSpace::tiny();
        bad.freq_mhz = vec![1100, 2400];
        assert_eq!(
            bad.validate(),
            Err(ConfigError::OutOfRange {
                what: "explore frequency (MHz)",
                valid: "[800, 2000]",
            })
        );

        let mut misaligned = ChipSpecSpace::tiny();
        misaligned.sram_mib = vec![100];
        assert!(matches!(
            misaligned.validate(),
            Err(ConfigError::MisalignedCapacity { .. })
        ));

        let mut empty = ChipSpecSpace::tiny();
        empty.mem = vec![];
        assert!(matches!(
            empty.validate(),
            Err(ConfigError::OutOfRange { .. })
        ));

        assert_eq!(ChipSpecSpace::paper().validate(), Ok(()));
        assert_eq!(ChipSpecSpace::tiny().validate(), Ok(()));
    }

    #[test]
    fn hbm_candidate_swaps_the_memory_system() {
        let mut p = DesignPoint::paper();
        p.mem = MemTech::Hbm;
        let spec = p.chip_spec();
        assert!(spec.dram.inline_ecc);
        assert!(spec.dram.bandwidth.as_gb_per_s() > 900.0);
        assert_eq!(DesignPoint::from_chip_spec(&spec), Some(p));
    }

    #[test]
    fn local_memory_bandwidth_coscales_with_capacity() {
        let mut small = DesignPoint::paper();
        small.local_mem_kib = 192;
        let spec = small.chip_spec();
        let shipped = chips::mtia2i_128gb();
        let ratio =
            spec.pe.local_memory_bw.as_gb_per_s() / shipped.pe.local_memory_bw.as_gb_per_s();
        assert!((ratio - 0.5).abs() < 1e-12);
    }
}
