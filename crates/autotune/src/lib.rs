//! The §4.1 autotuning framework: given a model and a chip, choose the
//! hardware and serving knobs automatically — SRAM data placement
//! (LLS/LLC partitioning), batch size, request coalescing, and model
//! sharding. "We have successfully used autotuning to completely optimize
//! models launched to production, with Perf/TCO and Perf/Watt matching or
//! exceeding those of prior models that were manually optimized."
//!
//! # Quick tour
//!
//! ```
//! use mtia_autotune::Autotuner;
//! use mtia_sim::chip::ChipSim;
//! use mtia_core::spec::chips;
//! use mtia_model::models::zoo;
//!
//! let tuner = Autotuner::new(ChipSim::new(chips::mtia2i()));
//! let tuned = tuner.tune(&zoo::fig6_models()[0]);
//! assert!(tuned.throughput_samples_per_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod coalescing;
pub mod data_placement;
pub mod explore;
pub mod pipeline;
pub mod sharding;

pub use batch::{tune_batch_size, BatchChoice};
pub use coalescing::{tune_coalescing, CoalescingChoice, CoalescingConfig};
pub use data_placement::{tune_placement, PlacementDecision, PlacementOutcome};
pub use pipeline::{Autotuner, TunedModel};
pub use sharding::{split_for_shards, tune_sharding, ShardingPlan};
