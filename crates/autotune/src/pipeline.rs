//! The end-to-end autotuning pipeline (§4.1's "Summary": autotuning fully
//! optimizes models launched to production).

use mtia_core::units::SimTime;
use mtia_model::models::zoo::ZooModel;
use mtia_sim::chip::ChipSim;
use mtia_sim::ExecutionReport;

use crate::batch::{tune_batch_size, BatchChoice, DEFAULT_CANDIDATES};
use crate::coalescing::{tune_coalescing, CoalescingChoice};
use crate::data_placement::{tune_placement, PlacementOutcome};
use crate::sharding::{sharded_throughput, tune_sharding, ShardingPlan};

/// A fully tuned model ready for serving.
#[derive(Debug, Clone)]
pub struct TunedModel {
    /// Model name.
    pub name: String,
    /// Chosen batch size.
    pub batch: u64,
    /// The batch sweep, for reports.
    pub batch_choice: BatchChoice,
    /// Data-placement outcome at the chosen batch.
    pub placement: PlacementOutcome,
    /// Sharding decision.
    pub sharding: ShardingPlan,
    /// Coalescing configuration.
    pub coalescing: CoalescingChoice,
    /// Execution report of the final configuration (per shard-stage
    /// throughput folded in via `throughput_samples_per_s`).
    pub report: ExecutionReport,
    /// End-to-end sustained samples/s for the deployment (one merge device
    /// plus `sharding.shards` remote devices when sharded).
    pub throughput_samples_per_s: f64,
}

impl TunedModel {
    /// Devices consumed by one replica of this model (the merge network is
    /// colocated with shard 0).
    pub fn devices(&self) -> u32 {
        self.sharding.shards
    }
}

/// The autotuner: owns the target chip and serving constraints.
#[derive(Debug, Clone)]
pub struct Autotuner {
    sim: ChipSim,
    /// P99 latency SLO for serving (100 ms in the §6 case study).
    pub slo: SimTime,
    /// Batch-size snapshot grid.
    pub batch_candidates: Vec<u64>,
}

impl Autotuner {
    /// Creates an autotuner with the paper's default 100 ms SLO.
    pub fn new(sim: ChipSim) -> Self {
        Autotuner {
            sim,
            slo: SimTime::from_millis(100),
            batch_candidates: DEFAULT_CANDIDATES.to_vec(),
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &ChipSim {
        &self.sim
    }

    /// Runs the full §4.1 pipeline on a zoo model: batch size → placement →
    /// sharding → coalescing.
    pub fn tune(&self, model: &ZooModel) -> TunedModel {
        // Device-side latency budget: leave room for host work + queueing.
        let device_budget = self.slo.scale(0.5);
        let batch_choice = tune_batch_size(&self.sim, device_budget, &self.batch_candidates, |b| {
            model.graph_at(b)
        });
        let batch = batch_choice.batch;

        let placement = tune_placement(&self.sim, batch, |b| model.graph_at(b));

        let graph = model.graph_at(batch);
        let sharding = tune_sharding(&self.sim, &graph, 12);
        let throughput = sharded_throughput(&self.sim, &graph, sharding);

        let compiled = mtia_compiler::compile(&graph, mtia_compiler::CompilerOptions::all());
        let report = compiled.run(&self.sim);

        let service_time = move |b: u64| {
            // Fixed per-batch cost (job launch, host staging, RPC) plus the
            // measured per-sample device time. The fixed term is what makes
            // half-empty batches expensive and pushes the tuner toward
            // >95 % fill.
            let per_sample = 1.0 / throughput;
            SimTime::from_secs_f64(1.0e-3 + per_sample * b as f64)
        };
        let coalescing = tune_coalescing(batch, self.slo, &service_time);

        TunedModel {
            name: model.name.clone(),
            batch,
            batch_choice,
            placement,
            sharding,
            coalescing,
            report,
            throughput_samples_per_s: throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::chips;
    use mtia_model::models::zoo;

    fn tuner() -> Autotuner {
        Autotuner::new(ChipSim::new(chips::mtia2i()))
    }

    #[test]
    fn tunes_an_lc_model_end_to_end() {
        let models = zoo::fig6_models();
        let tuned = tuner().tune(&models[1]); // LC2
        assert!(tuned.throughput_samples_per_s > 0.0);
        assert_eq!(tuned.sharding.shards, 1);
        assert_eq!(tuned.devices(), 1);
        assert!(tuned.coalescing.prediction.fill > 0.9);
        assert!(tuned.batch >= 64);
    }

    #[test]
    fn tunes_a_sharded_hc_model() {
        let models = zoo::fig6_models();
        let hc4 = models.iter().find(|m| m.name == "HC4").unwrap();
        let tuned = tuner().tune(hc4);
        assert!(tuned.sharding.shards > 1);
        assert_eq!(tuned.devices(), tuned.sharding.shards);
        assert!(tuned.throughput_samples_per_s > 0.0);
    }

    #[test]
    fn tuned_throughput_not_worse_than_default_batch() {
        // The tuner must match or beat the model's shipped batch size when
        // judged under the same latency budget.
        let models = zoo::fig6_models();
        let m = &models[2]; // LC3
        let tuned = tuner().tune(m);
        let shipped = {
            let g = m.graph();
            let c = mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all());
            c.run(tuner().sim()).throughput_samples_per_s()
        };
        assert!(
            tuned.throughput_samples_per_s >= shipped * 0.95,
            "tuned {} vs shipped {shipped}",
            tuned.throughput_samples_per_s
        );
    }
}
