//! Model-sharding autotuning (§4.1, §6).
//!
//! "To determine model sharding, we measure whether a model and its runtime
//! buffers exceed the size of DRAM for a single device. If so, autotuning
//! automatically explores how to shard the model across multiple devices."
//!
//! Sharding follows the paper's serving split (§6): embedding tables
//! partition across shard devices as **remote (sparse) networks**, while
//! the dense **merge network** runs on one device. NUMA-aware placement
//! keeps all shards under one PCIe switch (§3.4).

use mtia_core::units::Bytes;
use mtia_model::graph::Graph;
use mtia_model::ops::OpKind;
use mtia_sim::chip::ChipSim;

/// A sharding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingPlan {
    /// Number of devices the embedding tables are partitioned across.
    pub shards: u32,
}

impl ShardingPlan {
    /// A single-device plan.
    pub fn single() -> Self {
        ShardingPlan { shards: 1 }
    }
}

/// Total bytes a device must hold for `graph`: parameters plus runtime
/// buffers (double-buffered activations).
pub fn device_footprint(graph: &Graph) -> Bytes {
    graph.model_bytes() + graph.peak_activation_bytes() * 2
}

/// Decides the shard count: the smallest `s` such that each device's slice
/// of the tables (plus the replicated dense part and buffers) fits in
/// device DRAM, capped at the PCIe-switch locality domain.
pub fn tune_sharding(sim: &ChipSim, graph: &Graph, max_shards: u32) -> ShardingPlan {
    let dram = sim.spec().dram.capacity;
    let stats = graph.stats();
    let dense = stats.weight_bytes + graph.peak_activation_bytes() * 2;
    for s in 1..=max_shards {
        let per_device = dense + stats.table_bytes / s as u64;
        if per_device <= dram {
            return ShardingPlan { shards: s };
        }
    }
    ShardingPlan { shards: max_shards }
}

/// Rewrites `graph` into the per-shard remote graph: every TBE keeps
/// `1/shards` of its tables (and thus of its lookups), everything else is
/// dropped. The merge graph is the complement: all non-TBE nodes.
///
/// Returns `(remote_graph, merge_graph)`. The remote graph is what each of
/// the `shards` devices runs; the merge graph runs once.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn split_for_shards(graph: &Graph, shards: u32) -> (Graph, Graph) {
    assert!(shards > 0, "shard count must be positive");
    let mut remote = Graph::new(format!("{}-remote", graph.name()), graph.batch());
    let mut merge = Graph::new(format!("{}-merge", graph.name()), graph.batch());

    // Copy all tensor definitions into both graphs (ids stay aligned).
    for t in graph.tensors() {
        remote.add_tensor(t.name.clone(), t.shape.clone(), t.dtype, t.kind);
        merge.add_tensor(t.name.clone(), t.shape.clone(), t.dtype, t.kind);
    }

    for node in graph.nodes() {
        match &node.op {
            OpKind::Tbe(p) => {
                let mut shard_params = *p;
                shard_params.num_tables = (p.num_tables / shards as u64).max(1);
                remote.add_node(
                    node.name.clone(),
                    OpKind::Tbe(shard_params),
                    node.inputs.clone(),
                    node.outputs.clone(),
                );
                // The pooled embeddings arrive at the merge device over
                // PCIe peer-to-peer: they are inputs there.
                for &t in &node.outputs {
                    merge.set_tensor_kind(t, mtia_model::graph::TensorKind::Input);
                }
            }
            _ => {
                merge.add_node(
                    node.name.clone(),
                    node.op.clone(),
                    node.inputs.clone(),
                    node.outputs.clone(),
                );
            }
        }
    }
    debug_assert_eq!(remote.validate(), Ok(()));
    debug_assert_eq!(merge.validate(), Ok(()));
    (remote, merge)
}

/// Estimated throughput of a sharded deployment. Following §6's serving
/// layout, the merge (dense) network is colocated with shard 0, so one
/// replica occupies exactly `shards` accelerators ("each of these models
/// runs on one or two accelerators", §7): the remote shards gather their
/// table slices in parallel, then device 0 runs the merge — its
/// remote+merge serial time is the pipeline's bottleneck stage.
pub fn sharded_throughput(sim: &ChipSim, graph: &Graph, plan: ShardingPlan) -> f64 {
    if plan.shards == 1 {
        let compiled = mtia_compiler::compile(graph, mtia_compiler::CompilerOptions::all());
        return compiled.run(sim).throughput_samples_per_s();
    }
    let (remote, merge) = split_for_shards(graph, plan.shards);
    let remote_t = {
        let c = mtia_compiler::compile(&remote, mtia_compiler::CompilerOptions::all());
        c.run(sim).total_time()
    };
    let merge_t = {
        let c = mtia_compiler::compile(&merge, mtia_compiler::CompilerOptions::all());
        c.run(sim).total_time()
    };
    let stage = remote_t + merge_t; // device 0 runs both phases
    graph.batch() as f64 / stage.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::chips;
    use mtia_model::models::dlrm::DlrmConfig;
    use mtia_model::models::zoo;

    fn sim() -> ChipSim {
        ChipSim::new(chips::mtia2i())
    }

    #[test]
    fn small_model_stays_single_device() {
        let g = DlrmConfig::small(256).build();
        let plan = tune_sharding(&sim(), &g, 12);
        assert_eq!(plan.shards, 1);
    }

    #[test]
    fn huge_tables_shard() {
        // HC4 carries 200 GiB of tables ≫ 64 GB device DRAM.
        let models = zoo::fig6_models();
        let hc4 = models.iter().find(|m| m.name == "HC4").unwrap();
        let g = hc4.graph();
        let plan = tune_sharding(&sim(), &g, 12);
        assert!(plan.shards >= 4, "shards {}", plan.shards);
        // Each device's slice now fits.
        let per_device = g.stats().table_bytes / plan.shards as u64;
        assert!(per_device <= sim().spec().dram.capacity);
    }

    #[test]
    fn split_partitions_tables_and_keeps_dense() {
        let models = zoo::fig6_models();
        let hc3 = models.iter().find(|m| m.name == "HC3").unwrap();
        let g = hc3.graph();
        let (remote, merge) = split_for_shards(&g, 2);
        let remote_tables = remote.stats().table_bytes;
        assert!(
            (remote_tables.as_f64() - g.stats().table_bytes.as_f64() / 2.0).abs()
                / g.stats().table_bytes.as_f64()
                < 0.01
        );
        assert_eq!(merge.stats().sparse_nodes, 0);
        assert_eq!(
            merge.stats().gemm_nodes + remote.stats().sparse_nodes,
            g.stats().gemm_nodes + g.stats().sparse_nodes
        );
    }

    #[test]
    fn sharding_improves_oversized_models() {
        let models = zoo::fig6_models();
        let hc4 = models.iter().find(|m| m.name == "HC4").unwrap();
        let g = hc4.graph();
        let single = sharded_throughput(&sim(), &g, ShardingPlan::single());
        let plan = tune_sharding(&sim(), &g, 12);
        let sharded = sharded_throughput(&sim(), &g, plan);
        assert!(
            sharded > single,
            "sharded {sharded} !> single {single} at {} shards",
            plan.shards
        );
    }

    #[test]
    fn footprint_includes_buffers() {
        let g = DlrmConfig::small(128).build();
        assert!(device_footprint(&g) > g.model_bytes());
    }
}
