//! Integration tests closing the §4.1 autotuner coverage gaps: selection
//! tie-breaking and monotonicity in the batch tuner, smallest-feasible
//! and split-conservation invariants in the sharder, and the
//! near-tie/fill preference rule in the coalescing sweep.

use mtia_autotune::batch::{tune_batch_size, DEFAULT_CANDIDATES};
use mtia_autotune::coalescing::{max_rate, predict, tune_coalescing, CoalescingConfig};
use mtia_autotune::sharding::{
    device_footprint, sharded_throughput, split_for_shards, tune_sharding, ShardingPlan,
};
use mtia_core::spec::chips;
use mtia_core::units::SimTime;
use mtia_model::models::dlrm::DlrmConfig;
use mtia_model::models::zoo;
use mtia_sim::chip::ChipSim;

fn sim() -> ChipSim {
    ChipSim::new(chips::mtia2i())
}

/// The ranking-model service profile the coalescing unit tests use:
/// 2 ms fixed + 20 µs per sample.
fn service(batch: u64) -> SimTime {
    SimTime::from_micros(2000) + SimTime::from_micros(20) * batch
}

// ---------------------------------------------------------------- batch

#[test]
fn batch_latency_is_monotone_in_batch_size() {
    let choice = tune_batch_size(
        &sim(),
        SimTime::from_millis(100),
        &DEFAULT_CANDIDATES,
        |b| DlrmConfig::small(b).build(),
    );
    let latencies: Vec<_> = choice.sweep.iter().map(|c| c.latency).collect();
    for pair in latencies.windows(2) {
        assert!(
            pair[0] < pair[1],
            "latency must grow with batch size: {latencies:?}"
        );
    }
    // Feasibility is therefore a prefix of the sorted candidate grid.
    let first_infeasible = choice.sweep.iter().position(|c| !c.feasible);
    if let Some(i) = first_infeasible {
        assert!(choice.sweep[i..].iter().all(|c| !c.feasible));
    }
}

#[test]
fn batch_sweep_preserves_candidate_order() {
    // Candidates are evaluated and reported in the order given, not
    // sorted — the argmin/argmax tie-breaks are defined over this order.
    let candidates = [1024, 64, 512];
    let choice = tune_batch_size(&sim(), SimTime::from_millis(100), &candidates, |b| {
        DlrmConfig::small(b).build()
    });
    let order: Vec<u64> = choice.sweep.iter().map(|c| c.batch).collect();
    assert_eq!(order, candidates);
}

#[test]
fn infeasible_fallback_argmin_is_stable_under_duplicates() {
    // With an impossible budget the tuner falls back to the lowest-
    // latency snapshot. Duplicated candidates produce exact latency
    // ties; the pick must be the *first* minimal entry in candidate
    // order (argmin tie-breaking), and re-running must reproduce the
    // identical choice.
    let candidates = [512, 128, 128, 1024];
    let a = tune_batch_size(&sim(), SimTime::from_nanos(1), &candidates, |b| {
        DlrmConfig::small(b).build()
    });
    assert!(a.sweep.iter().all(|c| !c.feasible));
    assert_eq!(a.batch, 128);
    assert_eq!(a.sweep[1].latency, a.sweep[2].latency, "duplicate tie");
    let b = tune_batch_size(&sim(), SimTime::from_nanos(1), &candidates, |b| {
        DlrmConfig::small(b).build()
    });
    assert_eq!(a, b, "batch tuning must be deterministic");
}

#[test]
fn budget_boundary_is_inclusive() {
    // A candidate whose latency exactly equals the budget is feasible
    // (`latency <= budget`), so tuning with budget == latency(512)
    // must select a batch of at least 512.
    let probe = tune_batch_size(&sim(), SimTime::from_millis(100), &[512], |b| {
        DlrmConfig::small(b).build()
    });
    let exact_budget = probe.sweep[0].latency;
    let choice = tune_batch_size(&sim(), exact_budget, &DEFAULT_CANDIDATES, |b| {
        DlrmConfig::small(b).build()
    });
    assert!(
        choice.sweep.iter().any(|c| c.batch == 512 && c.feasible),
        "boundary candidate must stay feasible"
    );
    assert!(choice.batch >= 512);
}

// ------------------------------------------------------------- sharding

#[test]
fn tune_sharding_returns_smallest_feasible_shard_count() {
    let hc4 = zoo::fig6_models()
        .into_iter()
        .find(|m| m.name == "HC4")
        .unwrap();
    let g = hc4.graph();
    let s = sim();
    let plan = tune_sharding(&s, &g, 12);
    assert!(plan.shards > 1, "HC4 tables exceed one device");
    let dram = s.spec().dram.capacity;
    let stats = g.stats();
    let dense = stats.weight_bytes + g.peak_activation_bytes() * 2;
    // The chosen count fits; one fewer must not.
    assert!(dense + stats.table_bytes / plan.shards as u64 <= dram);
    assert!(dense + stats.table_bytes / (plan.shards - 1) as u64 > dram);
}

#[test]
fn split_conserves_work_across_shard_counts() {
    let hc3 = zoo::fig6_models()
        .into_iter()
        .find(|m| m.name == "HC3")
        .unwrap();
    let g = hc3.graph();
    for shards in [1u32, 2, 4, 8] {
        let (remote, merge) = split_for_shards(&g, shards);
        assert_eq!(remote.validate(), Ok(()));
        assert_eq!(merge.validate(), Ok(()));
        // Dense work is untouched; sparse work splits ~1/shards.
        assert_eq!(merge.stats().gemm_nodes, g.stats().gemm_nodes);
        assert_eq!(remote.stats().sparse_nodes, g.stats().sparse_nodes);
        let expected = g.stats().table_bytes.as_f64() / shards as f64;
        let got = remote.stats().table_bytes.as_f64();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "{shards} shards: {got} vs {expected}"
        );
    }
}

#[test]
fn sharded_throughput_single_matches_unsharded_run() {
    let g = DlrmConfig::small(512).build();
    let s = sim();
    let via_plan = sharded_throughput(&s, &g, ShardingPlan::single());
    let direct = mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all())
        .run(&s)
        .throughput_samples_per_s();
    assert_eq!(via_plan, direct);
}

#[test]
fn footprint_is_monotone_in_batch() {
    let small = device_footprint(&DlrmConfig::small(128).build());
    let large = device_footprint(&DlrmConfig::small(1024).build());
    assert!(
        large > small,
        "activations grow with batch: {small} vs {large}"
    );
}

#[test]
#[should_panic(expected = "shard count must be positive")]
fn split_for_zero_shards_panics() {
    let g = DlrmConfig::small(128).build();
    let _ = split_for_shards(&g, 0);
}

// ----------------------------------------------------------- coalescing

#[test]
fn max_rate_is_monotone_in_slo() {
    let config = CoalescingConfig {
        window: SimTime::from_millis(10),
        parallel_windows: 1,
    };
    let mut prev = 0.0;
    for slo_ms in [20u64, 50, 100, 200] {
        let rate = max_rate(config, 512, SimTime::from_millis(slo_ms), &service)
            .expect("profile meets these SLOs at trickle rates");
        assert!(
            rate >= prev,
            "rate must grow with the SLO: {rate} at {slo_ms} ms after {prev}"
        );
        prev = rate;
    }
}

#[test]
fn max_rate_respects_the_slo_at_its_answer() {
    let config = CoalescingConfig {
        window: SimTime::from_millis(20),
        parallel_windows: 2,
    };
    let slo = SimTime::from_millis(100);
    let rate = max_rate(config, 512, slo, &service).unwrap();
    assert!(predict(config, rate, 512, &service).p99 <= slo);
    // Slightly above the bisected rate must violate (the answer is tight
    // to within the bisection tolerance).
    assert!(predict(config, rate * 1.05, 512, &service).p99 > slo);
}

#[test]
fn impossible_slo_yields_none() {
    let config = CoalescingConfig {
        window: SimTime::from_millis(10),
        parallel_windows: 1,
    };
    // Even one request pays >= 2 ms service; a 1 ms SLO can never be met.
    assert_eq!(
        max_rate(config, 512, SimTime::from_millis(1), &service),
        None
    );
}

#[test]
fn tuner_prefers_fill_among_near_tied_rates() {
    // Re-derive the tuner's grid and check its documented rule: the
    // winner sustains >= 98 % of the best rate, and no configuration in
    // that near-tie band fills batches better.
    let slo = SimTime::from_millis(100);
    let choice = tune_coalescing(512, slo, &service);
    let mut best_rate = 0.0f64;
    let mut band = Vec::new();
    for window_ms in [1u64, 2, 5, 10, 20, 50, 100] {
        for parallel_windows in [1u32, 2, 4] {
            let config = CoalescingConfig {
                window: SimTime::from_millis(window_ms),
                parallel_windows,
            };
            if let Some(rate) = max_rate(config, 512, slo, &service) {
                best_rate = best_rate.max(rate);
                band.push((config, rate));
            }
        }
    }
    assert!(choice.max_rate_per_s >= best_rate * 0.98);
    for (config, rate) in band {
        if rate >= best_rate * 0.98 {
            let fill = predict(config, rate, 512, &service).fill;
            assert!(
                fill <= choice.prediction.fill + 1e-9,
                "{config:?} fills {fill:.4} > chosen {:.4}",
                choice.prediction.fill
            );
        }
    }
}

#[test]
fn tuning_is_deterministic() {
    let a = tune_coalescing(512, SimTime::from_millis(100), &service);
    let b = tune_coalescing(512, SimTime::from_millis(100), &service);
    assert_eq!(a, b);
}
