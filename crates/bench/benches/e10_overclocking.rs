//! `cargo bench --bench e10_overclocking` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fleet_exps::e10_overclocking().print();
}
