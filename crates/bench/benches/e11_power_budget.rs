//! `cargo bench --bench e11_power_budget` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fleet_exps::e11_power_budget().print();
}
