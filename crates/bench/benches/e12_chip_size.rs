//! `cargo bench --bench e12_chip_size` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fleet_exps::e12_chip_size().print();
}
