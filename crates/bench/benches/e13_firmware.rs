//! `cargo bench --bench e13_firmware` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fleet_exps::e13_firmware().print();
}
