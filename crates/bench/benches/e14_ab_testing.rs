//! `cargo bench --bench e14_ab_testing` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::ab::e14_ab_testing().print();
}
