//! `cargo bench --bench e15_fusion_gains` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::locality::e15_fusion_gains().print();
}
