//! `cargo bench --bench e16_compression` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::quant::e16_compression().print();
}
