//! `cargo bench --bench e17_complexity_frontier` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::frontier::run().print();
}
