//! `cargo bench --bench e18_ablations` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::ablations::run().print();
}
