//! `cargo bench --bench e19_sdc_defense` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::sdc_exps::e19_sdc_defense().print();
}
