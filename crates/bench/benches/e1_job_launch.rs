//! `cargo bench --bench e1_job_launch` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::chip_exps::e1_job_launch().print();
}
