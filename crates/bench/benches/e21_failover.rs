//! `cargo bench --bench e21_failover` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::failover_exps::e21_failover().print();
}
