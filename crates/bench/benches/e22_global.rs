//! `cargo bench --bench e22_global` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::global_exps::e22_global().print();
}
