//! `cargo bench --bench e23_gray` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::gray_exps::e23_gray().print();
}
