//! `cargo bench --bench e2_gemm_efficiency` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::chip_exps::e2_gemm_efficiency().print();
}
