//! `cargo bench --bench e3_llm_roofline` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::llm::e3_llm_roofline().print();
}
