//! `cargo bench --bench e4_kernel_tuning` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::tuning::e4_kernel_tuning().print();
}
