//! `cargo bench --bench e5_coalescing` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::tuning::e5_coalescing().print();
}
