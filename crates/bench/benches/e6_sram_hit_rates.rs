//! `cargo bench --bench e6_sram_hit_rates` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::locality::e6_sram_hit_rates().print();
}
