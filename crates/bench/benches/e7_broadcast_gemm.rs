//! `cargo bench --bench e7_broadcast_gemm` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::chip_exps::e7_broadcast_gemm().print();
}
