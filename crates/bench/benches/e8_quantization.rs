//! `cargo bench --bench e8_quantization` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::quant::e8_quantization().print();
}
