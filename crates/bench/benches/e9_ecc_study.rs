//! `cargo bench --bench e9_ecc_study` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fleet_exps::e9_ecc_study().print();
}
