//! Microbenchmarks of the DES event queue: the slab indexed binary heap
//! (`mtia_core::eventq::EventQueue`) against the `BTreeMap<(SimTime,
//! u64), T>` it replaced in the serving DES hot path, across pending-set
//! sizes from 10³ to 10⁶.
//!
//! Three access patterns, mirroring what `mtia_serving::global::Sim`
//! actually does per simulated request:
//!
//! - **churn**: pop the earliest event, schedule a replacement — the
//!   steady-state inner loop (≥98% of queue traffic in a replay);
//! - **cancel**: revoke a pending event by handle — hedge timers and
//!   device wakes that a completion beats;
//! - **fill+drain**: bulk build-up then full drain — trace load and
//!   end-of-horizon.
//!
//! Times are drawn from a narrow LCG window around the current front so
//! the heap depth actually matters; both structures see the identical
//! key sequence. The equivalence of pop *order* is proved elsewhere
//! (`tests/event_queue_model.rs`); this file only measures speed.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mtia_core::eventq::EventQueue;
use mtia_core::SimTime;

/// Deterministic time stream: a small offset window keeps pushed events
/// interleaved with the pending set instead of always landing last.
struct Lcg(u64);

impl Lcg {
    fn next_offset(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % 4096
    }
}

const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
/// Pop/push (or cancel/push) pairs measured per iteration.
const CHURN: u64 = 1_000;

fn prefill_queue(n: usize) -> (EventQueue<u64>, Lcg, u64) {
    let mut q = EventQueue::with_capacity(n);
    let mut lcg = Lcg(0x9e3779b97f4a7c15);
    for seq in 0..n as u64 {
        q.push(SimTime::from_nanos(lcg.next_offset()), seq, seq);
    }
    (q, lcg, n as u64)
}

fn prefill_map(n: usize) -> (BTreeMap<(SimTime, u64), u64>, Lcg, u64) {
    let mut m = BTreeMap::new();
    let mut lcg = Lcg(0x9e3779b97f4a7c15);
    for seq in 0..n as u64 {
        m.insert((SimTime::from_nanos(lcg.next_offset()), seq), seq);
    }
    (m, lcg, n as u64)
}

fn bench_churn(c: &mut Criterion) {
    for n in SIZES {
        c.bench_function(&format!("slab_queue_churn_{n}"), |b| {
            let (mut q, mut lcg, mut seq) = prefill_queue(n);
            b.iter(|| {
                for _ in 0..CHURN {
                    let (t, _, v) = q.pop().expect("pending set never drains");
                    black_box(v);
                    q.push(t + SimTime::from_nanos(lcg.next_offset()), seq, seq);
                    seq += 1;
                }
            });
        });
        c.bench_function(&format!("btreemap_churn_{n}"), |b| {
            let (mut m, mut lcg, mut seq) = prefill_map(n);
            b.iter(|| {
                for _ in 0..CHURN {
                    let ((t, _), v) = m.pop_first().expect("pending set never drains");
                    black_box(v);
                    m.insert((t + SimTime::from_nanos(lcg.next_offset()), seq), seq);
                    seq += 1;
                }
            });
        });
    }
}

fn bench_cancel(c: &mut Criterion) {
    for n in SIZES {
        c.bench_function(&format!("slab_queue_cancel_{n}"), |b| {
            let (mut q, mut lcg, mut seq) = prefill_queue(n);
            // Rolling window of live handles to revoke, oldest first —
            // the hedge-timer pattern.
            let mut handles = std::collections::VecDeque::with_capacity(CHURN as usize);
            b.iter(|| {
                for _ in 0..CHURN {
                    let id = q.push(SimTime::from_nanos(lcg.next_offset()), seq, seq);
                    handles.push_back(id);
                    seq += 1;
                    if handles.len() > CHURN as usize / 2 {
                        let victim = handles.pop_front().expect("window is non-empty");
                        black_box(q.cancel(victim));
                    }
                }
                while let Some(victim) = handles.pop_front() {
                    black_box(q.cancel(victim));
                }
            });
        });
        c.bench_function(&format!("btreemap_cancel_{n}"), |b| {
            let (mut m, mut lcg, mut seq) = prefill_map(n);
            // The BTreeMap "handle" is the key itself: cancel = remove.
            let mut keys = std::collections::VecDeque::with_capacity(CHURN as usize);
            b.iter(|| {
                for _ in 0..CHURN {
                    let key = (SimTime::from_nanos(lcg.next_offset()), seq);
                    m.insert(key, seq);
                    keys.push_back(key);
                    seq += 1;
                    if keys.len() > CHURN as usize / 2 {
                        let victim = keys.pop_front().expect("window is non-empty");
                        black_box(m.remove(&victim));
                    }
                }
                while let Some(victim) = keys.pop_front() {
                    black_box(m.remove(&victim));
                }
            });
        });
    }
}

fn bench_fill_drain(c: &mut Criterion) {
    // Full build-up + drain only at the two smaller sizes: per-iteration
    // cost is O(n log n), and the larger sizes are covered by churn.
    for n in [1_000usize, 10_000] {
        c.bench_function(&format!("slab_queue_fill_drain_{n}"), |b| {
            b.iter_batched(
                || EventQueue::with_capacity(n),
                |mut q| {
                    let mut lcg = Lcg(7);
                    for seq in 0..n as u64 {
                        q.push(SimTime::from_nanos(lcg.next_offset()), seq, seq);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
        c.bench_function(&format!("btreemap_fill_drain_{n}"), |b| {
            b.iter_batched(
                BTreeMap::new,
                |mut m| {
                    let mut lcg = Lcg(7);
                    for seq in 0..n as u64 {
                        m.insert((SimTime::from_nanos(lcg.next_offset()), seq), seq);
                    }
                    while let Some(ev) = m.pop_first() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_churn, bench_cancel, bench_fill_drain
}
criterion_main!(benches);
