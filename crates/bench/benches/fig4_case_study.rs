//! `cargo bench --bench fig4_case_study` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fig4::run().print();
}
