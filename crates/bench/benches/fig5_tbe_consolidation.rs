//! `cargo bench --bench fig5_tbe_consolidation` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fig5::run().print();
}
