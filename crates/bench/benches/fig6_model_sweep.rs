//! `cargo bench --bench fig6_model_sweep` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::fig6::run().print();
}
