//! Criterion microbenchmarks of the simulator's hot paths: the cache
//! simulator, the Che/Zipf analytic model, the rANS and LZSS codecs, the
//! event engine, and one full chip-level model execution.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mtia_core::spec::chips;
use mtia_core::SimTime;
use mtia_model::compress::{ans, lzss};
use mtia_model::models::dlrm::DlrmConfig;
use mtia_sim::chip::ChipSim;
use mtia_sim::engine::Simulator;
use mtia_sim::mem::cache::{zipf_hit_rate, SetAssocCache};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("set_assoc_cache_1k_accesses", |b| {
        let mut cache = SetAssocCache::new(1 << 20, 8, 64);
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(cache.access(addr % (1 << 24), addr & 1 == 0));
            }
        });
    });

    c.bench_function("zipf_hit_rate_1b_catalog", |b| {
        b.iter(|| black_box(zipf_hit_rate(1_000_000_000, 1_000_000, 0.95)));
    });
}

fn bench_codecs(c: &mut Criterion) {
    let peaked: Vec<u8> = (0..64 * 1024)
        .map(|i: u32| {
            let x = (i.wrapping_mul(2654435761)) >> 24;
            (x % 7) as u8
        })
        .collect();
    c.bench_function("rans_compress_64k", |b| {
        b.iter(|| black_box(ans::compress(&peaked)));
    });
    let compressed = ans::compress(&peaked);
    c.bench_function("rans_decompress_64k", |b| {
        b.iter(|| black_box(ans::decompress(&compressed).unwrap()));
    });
    c.bench_function("lzss_compress_64k", |b| {
        b.iter(|| black_box(lzss::compress(&peaked)));
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("event_engine_10k_events", |b| {
        b.iter_batched(
            Simulator::new,
            |mut sim| {
                for i in 0..10_000u64 {
                    sim.schedule(SimTime::from_nanos(i * 7), |_| {});
                }
                black_box(sim.run());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_chip(c: &mut Criterion) {
    let graph = DlrmConfig::small(512).build();
    let sim = ChipSim::new(chips::mtia2i());
    c.bench_function("chip_sim_dlrm_small", |b| {
        b.iter(|| black_box(sim.run_optimized(&graph)));
    });
    c.bench_function("compile_dlrm_small", |b| {
        b.iter(|| {
            black_box(mtia_compiler::compile(
                &graph,
                mtia_compiler::CompilerOptions::all(),
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_codecs, bench_engine, bench_chip
}
criterion_main!(benches);
