//! `cargo bench --bench table1_models` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::tables::table1().print();
}
