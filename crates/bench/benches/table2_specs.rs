//! `cargo bench --bench table2_specs` — prints the reproduced rows.

fn main() {
    mtia_bench::experiments::tables::table2().print();
}
