//! Runs table/figure reproductions and prints them in paper order — the
//! source of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p mtia-bench --bin reproduce [-- OPTIONS]
//!
//! OPTIONS:
//!   --threads N          worker threads for the experiment pool
//!                        (default: auto; 1 = serial)
//!   --filter STR         comma-separated substring terms selecting
//!                        experiments by name; "quick" = the fast
//!                        determinism subset
//!   --list               print the experiment names and exit
//!   --determinism-check  run the selection at 1 thread and at N
//!                        threads and fail unless the rendered output
//!                        is byte-identical
//!   --bench-perf PATH    time each selected experiment at 1 thread and
//!                        at N threads and write a JSON report (wall
//!                        clock, speedup, simulated DES events and
//!                        events/sec, peak RSS, kernel-cost-cache hit
//!                        rate plus per-shard hit/miss counts)
//!   --perf-baseline PATH compare the --bench-perf results against a
//!                        checked-in baseline JSON and fail when any
//!                        gated experiment's single-thread events/sec
//!                        regresses by more than 25%; only entries
//!                        simulating ≥100k events are gated (smaller
//!                        ones are timing noise). Setting
//!                        MTIA_PERF_ALLOW_REGRESSION=1 downgrades the
//!                        failure to a warning (for hosts with known
//!                        slower/noisier clocks; the JSON still records
//!                        the measured rates)
//!   --trace-out DIR      write the pinned-seed scenario traces
//!                        (canonical + Chrome trace_event JSON) and a
//!                        per-experiment metrics dump into DIR
//!   --telemetry-smoke    verify tracing is a pure observer: traced and
//!                        untraced scenario results byte-identical,
//!                        canonical exports stable, overhead < 10 %
//!   --chaos-smoke        run the seeded chaos-schedule suite — the
//!                        cell-level scenarios against a domain-aware
//!                        failover cell plus the region-level suite
//!                        (pod loss, rolling pod loss, region outage,
//!                        WAN partition) against the global router —
//!                        and fail if accounting leaks a request or
//!                        goodput dips below 90 %
//!   --explore            run the E25 design-space search over the full
//!                        §3.6 axes (seeded successive halving, Pareto
//!                        pruning) and print the discovered frontier,
//!                        best-vs-paper verdict, and per-generation
//!                        telemetry; fails if the search falls short of
//!                        the paper's hand-picked point
//!   --explore-smoke      exhaustively search the tiny pinned space and
//!                        fail unless the optimum is the paper's design
//!                        point (the CI rung behind the golden fixture)
//! ```
//!
//! Experiments are pure `(config, seed)` functions, so every mode prints
//! byte-identical tables at any `--threads` value; only wall-clock (and
//! the cache/timing telemetry in the JSON report) changes.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mtia_bench::experiments::{self, ExperimentEntry};
use mtia_bench::render_reports;
use mtia_core::pool;

struct Options {
    threads: usize,
    filter: Option<String>,
    list: bool,
    determinism_check: bool,
    bench_perf: Option<String>,
    perf_baseline: Option<String>,
    trace_out: Option<String>,
    telemetry_smoke: bool,
    chaos_smoke: bool,
    explore: bool,
    explore_smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--threads N] [--filter STR] [--list] \
         [--determinism-check] [--bench-perf PATH] \
         [--perf-baseline PATH] [--trace-out DIR] \
         [--telemetry-smoke] [--chaos-smoke] [--explore] \
         [--explore-smoke]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        threads: 0,
        filter: None,
        list: false,
        determinism_check: false,
        bench_perf: None,
        perf_baseline: None,
        trace_out: None,
        telemetry_smoke: false,
        chaos_smoke: false,
        explore: false,
        explore_smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--filter" => opts.filter = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => opts.list = true,
            "--determinism-check" => opts.determinism_check = true,
            "--bench-perf" => opts.bench_perf = Some(args.next().unwrap_or_else(|| usage())),
            "--perf-baseline" => opts.perf_baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => opts.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--telemetry-smoke" => opts.telemetry_smoke = true,
            "--chaos-smoke" => opts.chaos_smoke = true,
            "--explore" => opts.explore = true,
            "--explore-smoke" => opts.explore_smoke = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn selection(opts: &Options) -> Vec<ExperimentEntry> {
    let entries = match &opts.filter {
        Some(f) => experiments::filtered(f),
        None => experiments::registry(),
    };
    if entries.is_empty() {
        let near = opts
            .filter
            .as_deref()
            .map(experiments::near_misses)
            .unwrap_or_default();
        if near.is_empty() {
            eprintln!("no experiments match the filter");
        } else {
            eprintln!(
                "no experiments match the filter; did you mean: {}?",
                near.join(", ")
            );
        }
        eprintln!("run with --list to see every experiment name");
        std::process::exit(2);
    }
    entries
}

/// One timed pass over a selection: rendered output, wall clock, the
/// kernel-cost-cache delta, and the simulated-DES-event delta (both
/// process-global, so both are snapshotted around the run).
struct TimedRun {
    out: String,
    wall: f64,
    cache: mtia_core::memo::CacheStats,
    events: u64,
}

/// Runs `entries` and reports wall-clock plus the kernel-cost-cache and
/// DES-event deltas for the run (the cache is process-global, so it is
/// reset first for honest cold-start numbers).
fn timed_run(entries: &[ExperimentEntry], threads: usize) -> TimedRun {
    mtia_sim::costcache::reset();
    let events_before = mtia_core::perfcount::events();
    pool::set_threads(threads);
    let start = Instant::now();
    let reports = experiments::run_entries(entries.to_vec());
    let wall = start.elapsed().as_secs_f64();
    pool::set_threads(0);
    TimedRun {
        out: render_reports(&reports),
        wall,
        cache: mtia_sim::costcache::stats(),
        events: mtia_core::perfcount::events() - events_before,
    }
}

/// Process peak resident-set size from `/proc/self/status` (`VmHWM`), in
/// bytes. A high-water mark: per-experiment readings attribute the peak
/// to the first entry that reached it. `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// One experiment's measured rates, kept for the baseline gate.
struct PerfRow {
    name: &'static str,
    events: u64,
    events_per_sec_1t: f64,
}

/// Experiments below this simulated-event count are not regression-gated:
/// their wall clock is milliseconds and the events/sec quotient is
/// dominated by scheduler/allocator noise, not simulator throughput.
const PERF_GATE_MIN_EVENTS: u64 = 100_000;

/// Maximum tolerated single-thread events/sec drop vs the baseline.
const PERF_GATE_MAX_REGRESSION: f64 = 0.25;

/// Emits the BENCH_PERF.json payload: per-experiment wall clock at one
/// thread and at `threads`, speedup, byte-identity, simulated DES
/// events with single-thread events/sec, peak RSS, and cost-cache hit
/// rates. Hand-rolled JSON — the workspace takes no serde dependency.
fn bench_perf(
    entries: &[ExperimentEntry],
    threads: usize,
    path: &str,
    measured: &mut Vec<PerfRow>,
) -> bool {
    let mut rows = String::new();
    let mut total_1t = 0.0;
    let mut total_nt = 0.0;
    let mut total_events = 0u64;
    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    let mut all_identical = true;
    for (i, entry) in entries.iter().enumerate() {
        let one = std::slice::from_ref(entry);
        let run_1t = timed_run(one, 1);
        let run_nt = timed_run(one, threads);
        // Per-shard counters from the N-thread run (the cache was reset
        // at its start), so shard-load skew under the pool is visible.
        // Only shards that saw traffic are emitted — the all-zero
        // entries carry no signal and used to dominate the file.
        let shards = mtia_sim::costcache::shard_stats();
        let shard_rows: Vec<String> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.hits + s.misses > 0)
            .map(|(i, s)| {
                format!(
                    "{{\"shard\": {}, \"hits\": {}, \"misses\": {}}}",
                    i, s.hits, s.misses
                )
            })
            .collect();
        let identical = run_1t.out == run_nt.out && run_1t.events == run_nt.events;
        all_identical &= identical;
        total_1t += run_1t.wall;
        total_nt += run_nt.wall;
        total_events += run_1t.events;
        total_hits += run_nt.cache.hits;
        total_misses += run_nt.cache.misses;
        // Single-thread rate, best-of-runs: on a one-core host both legs
        // run at one thread, so taking the faster (min-time practice)
        // roughly halves the scheduler jitter the regression gate sees.
        let mut wall_1t = run_1t.wall;
        if threads == 1 {
            wall_1t = wall_1t.min(run_nt.wall);
        }
        let events_per_sec_1t = run_1t.events as f64 / wall_1t.max(1e-9);
        let peak_rss = peak_rss_bytes();
        measured.push(PerfRow {
            name: entry.name,
            events: run_1t.events,
            events_per_sec_1t,
        });
        eprintln!(
            "  {:<24} 1t {:>8.3}s  {}t {:>8.3}s  speedup {:>5.2}x  \
             {:>10} ev ({:>9.0}/s)  cache {:>5.1}%  {}",
            entry.name,
            run_1t.wall,
            threads,
            run_nt.wall,
            run_1t.wall / run_nt.wall,
            run_1t.events,
            events_per_sec_1t,
            run_nt.cache.hit_rate() * 100.0,
            if identical { "identical" } else { "MISMATCH" },
        );
        write!(
            rows,
            "{}    {{\"name\": \"{}\", \"wall_s_1t\": {}, \"wall_s_nt\": {}, \
             \"speedup\": {}, \"identical\": {}, \
             \"events\": {}, \"events_per_sec_1t\": {}, \
             \"events_per_sec_nt\": {}, \"peak_rss_bytes\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}, \
             \"shards\": [{}]}}}}",
            if i == 0 { "" } else { ",\n" },
            entry.name,
            json_f64(run_1t.wall),
            json_f64(run_nt.wall),
            json_f64(run_1t.wall / run_nt.wall),
            identical,
            run_1t.events,
            json_f64(events_per_sec_1t),
            json_f64(run_nt.events as f64 / run_nt.wall.max(1e-9)),
            peak_rss.map_or("null".to_string(), |b| b.to_string()),
            run_nt.cache.hits,
            run_nt.cache.misses,
            json_f64(run_nt.cache.hit_rate()),
            shard_rows.join(", "),
        )
        .expect("string write");
    }
    let json = format!(
        "{{\n  \"threads\": {},\n  \"host_parallelism\": {},\n  \
         \"experiments\": [\n{}\n  ],\n  \"total_wall_s_1t\": {},\n  \
         \"total_wall_s_nt\": {},\n  \"overall_speedup\": {},\n  \
         \"total_events\": {},\n  \"overall_events_per_sec_1t\": {},\n  \
         \"peak_rss_bytes\": {},\n  \"all_identical\": {}\n}}\n",
        threads,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
        json_f64(total_1t),
        json_f64(total_nt),
        json_f64(total_1t / total_nt),
        total_events,
        json_f64(total_events as f64 / total_1t.max(1e-9)),
        peak_rss_bytes().map_or("null".to_string(), |b| b.to_string()),
        all_identical,
    );
    if total_hits == 0 {
        eprintln!(
            "warning: kernel-cost-cache hit rate is 0% across the selected \
             experiments ({total_misses} misses) — the selection never \
             re-evaluates a (env, op) tuple, so the memo layer is dead \
             weight for it"
        );
    }
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
    all_identical
}

/// Pulls `(name, events, events_per_sec_1t)` triples out of a
/// `--bench-perf` JSON file. A purpose-built scanner, not a JSON parser:
/// it reads the format `bench_perf` writes (and tolerates whitespace
/// differences), which is all the baseline gate needs without a serde
/// dependency.
fn parse_baseline(body: &str) -> Vec<(String, u64, f64)> {
    let mut rows = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let field = |rest: &str, key: &str| -> Option<f64> {
            let pos = rest.find(key)?;
            let tail = &rest[pos + key.len()..];
            let num: String = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
                .collect();
            num.parse().ok()
        };
        // Search within this row only (up to the next "name" key or EOF)
        // so a malformed row cannot borrow fields from its neighbor.
        let row_end = rest.find("\"name\": \"").unwrap_or(rest.len());
        let row = &rest[..row_end];
        if let (Some(events), Some(eps)) = (
            field(row, "\"events\": "),
            field(row, "\"events_per_sec_1t\": "),
        ) {
            rows.push((name, events as u64, eps));
        }
        rest = &rest[end..];
    }
    rows
}

/// Gates the measured single-thread events/sec against a checked-in
/// baseline: any entry simulating ≥[`PERF_GATE_MIN_EVENTS`] events in
/// both runs must stay within [`PERF_GATE_MAX_REGRESSION`] of its
/// baseline rate. `MTIA_PERF_ALLOW_REGRESSION=1` downgrades a failure
/// to a warning.
fn perf_baseline_gate(measured: &[PerfRow], path: &str) -> bool {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to read perf baseline {path}: {e}");
            return false;
        }
    };
    let baseline = parse_baseline(&body);
    if baseline.is_empty() {
        eprintln!("perf baseline {path} contains no parsable experiment rows");
        return false;
    }
    let mut gated = 0;
    let mut regressed = Vec::new();
    for row in measured {
        let Some((_, base_events, base_eps)) =
            baseline.iter().find(|(name, _, _)| name == row.name)
        else {
            continue;
        };
        if row.events < PERF_GATE_MIN_EVENTS
            || *base_events < PERF_GATE_MIN_EVENTS
            || *base_eps <= 0.0
        {
            continue;
        }
        gated += 1;
        let ratio = row.events_per_sec_1t / base_eps;
        let verdict = if ratio < 1.0 - PERF_GATE_MAX_REGRESSION {
            regressed.push(row.name);
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  perf gate {:<24} {:>9.0}/s vs baseline {:>9.0}/s ({:+.1}%)  {}",
            row.name,
            row.events_per_sec_1t,
            base_eps,
            (ratio - 1.0) * 100.0,
            verdict,
        );
    }
    if gated == 0 {
        eprintln!(
            "perf gate: no experiment cleared the {PERF_GATE_MIN_EVENTS}-event \
             floor in both runs — nothing gated"
        );
        return true;
    }
    if regressed.is_empty() {
        eprintln!("perf gate passed: {gated} experiment(s) within 25% of baseline events/sec");
        return true;
    }
    let allow = std::env::var("MTIA_PERF_ALLOW_REGRESSION").is_ok_and(|v| v == "1");
    eprintln!(
        "perf gate {}: events/sec regressed >25% vs {path} for: {}{}",
        if allow { "overridden" } else { "FAILED" },
        regressed.join(", "),
        if allow {
            " (MTIA_PERF_ALLOW_REGRESSION=1)"
        } else {
            "; rerun with MTIA_PERF_ALLOW_REGRESSION=1 to override on a \
             known-slow host, or refresh BENCH_BASELINE.json if the \
             slowdown is intended"
        },
    );
    allow
}

/// Writes the pinned-seed scenario traces (canonical + Chrome
/// `trace_event` JSON, for chrome://tracing or Perfetto) plus one
/// metrics dump per selected experiment into `dir`.
fn trace_out(entries: &[ExperimentEntry], dir: &str) -> bool {
    use mtia_bench::traces;
    use mtia_core::telemetry::Telemetry;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {dir}: {e}");
        return false;
    }
    let mut ok = true;
    let mut write_file = |path: String, body: &str| {
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            ok = false;
        } else {
            eprintln!("wrote {path}");
        }
    };
    for scenario in traces::scenarios() {
        let mut tel = Telemetry::new_enabled();
        (scenario.run)(&mut tel);
        write_file(
            format!("{dir}/{}.trace.json", scenario.name),
            &tel.to_canonical_json(),
        );
        write_file(
            format!("{dir}/{}.chrome.json", scenario.name),
            &tel.to_chrome_json(),
        );
    }
    // Per-experiment metrics: wall clock + the kernel-cost-cache delta
    // each experiment produced on a cold cache.
    let mut rows = String::new();
    for (i, entry) in entries.iter().enumerate() {
        let run = timed_run(std::slice::from_ref(entry), 1);
        write!(
            rows,
            "{}    {{\"name\": \"{}\", \"wall_s\": {}, \"events\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}}}",
            if i == 0 { "" } else { ",\n" },
            entry.name,
            json_f64(run.wall),
            run.events,
            run.cache.hits,
            run.cache.misses,
            json_f64(run.cache.hit_rate()),
        )
        .expect("string write");
    }
    write_file(
        format!("{dir}/experiments.metrics.json"),
        &format!("{{\n  \"experiments\": [\n{rows}\n  ]\n}}\n"),
    );
    ok
}

/// Checks tracing is a pure observer: traced and untraced scenario
/// results are byte-identical, canonical exports are stable across
/// runs, and the traced wall clock stays within the overhead budget.
fn telemetry_smoke() -> bool {
    let report = mtia_bench::traces::run_telemetry_smoke(5);
    for (name, ok) in &report.identical {
        eprintln!(
            "  {name:<12} traced == untraced: {}",
            if *ok { "identical" } else { "MISMATCH" }
        );
    }
    for (name, ok) in &report.stable {
        eprintln!(
            "  {name:<12} canonical export:   {}",
            if *ok { "stable" } else { "UNSTABLE" }
        );
    }
    eprintln!(
        "  wall clock: untraced {:.4}s, traced {:.4}s ({:+.1}% overhead)",
        report.untraced_s,
        report.traced_s,
        report.overhead() * 100.0
    );
    let passed = report.passed(0.10);
    eprintln!(
        "telemetry smoke {}",
        if passed { "passed" } else { "FAILED" }
    );
    passed
}

/// Runs the seeded chaos suite: the cell-level scenarios against the
/// paper-shape pod with domain-aware placement and failover on, plus
/// the region-level suite against the global router on the toy global
/// fleet. Passes when accounting conserves everywhere, no cell-level
/// scenario loses a request forever, and goodput holds (region storms
/// may legitimately kill in-flight work, so global lines gate on
/// conservation + goodput only).
fn chaos_smoke() -> bool {
    let report = mtia_bench::chaos::run_chaos_smoke(mtia_core::seed::DEFAULT_SEED);
    for line in &report.lines {
        let r = &line.report;
        eprintln!(
            "  {:<18} goodput {:>6.2}%  lost {}  unavailable {:.2}s  recovery {:.2}s  \
             promo/restore/rerepl {}/{}/{}",
            line.name,
            r.goodput() * 100.0,
            r.lost,
            r.unavailable.as_secs_f64(),
            r.recovery_time.as_secs_f64(),
            r.promotions,
            r.restores,
            r.rereplications,
        );
    }
    for line in &report.global_lines {
        let r = &line.report;
        eprintln!(
            "  {:<24} goodput {:>6.2}%  shed {}  lost {}  spillover {}  recovery {:.2}s  \
             headroom {:.1}%",
            line.name,
            r.goodput() * 100.0,
            r.shed,
            r.lost,
            r.spillover,
            r.recovery_time.as_secs_f64(),
            r.capacity_headroom * 100.0,
        );
    }
    let passed = report.passed(0.90);
    eprintln!("chaos smoke {}", if passed { "passed" } else { "FAILED" });
    passed
}

/// Runs the full E25 design-space search (seeded successive halving with
/// Pareto pruning over the §3.6 axes) and prints the frontier,
/// best-vs-paper verdict, and per-generation telemetry. Fails only if
/// the search falls short of the paper's hand-picked point — matching or
/// dominating it both count as success.
fn explore_full(threads: usize) -> bool {
    use mtia_bench::experiments::explore_exps::{self, Verdict};

    pool::set_threads(threads);
    let run = explore_exps::e25_run();
    pool::set_threads(0);
    print!("{}", explore_exps::report_tables(&run, "E25"));
    let out = &run.outcome;
    eprintln!(
        "explore: {} candidates evaluated ({} infeasible, memo hit rate {:.1}%), \
         best perf/TCO {:.4} vs paper {:.4}",
        out.evaluated.len(),
        out.infeasible,
        out.cache_hit_rate() * 100.0,
        out.best.score.perf_per_tco,
        run.paper_score.perf_per_tco,
    );
    let passed = run.verdict != Verdict::FellShort;
    eprintln!(
        "explore {} ({})",
        if passed { "passed" } else { "FAILED" },
        match run.verdict {
            Verdict::Rediscovered => "search rediscovered the shipped design point",
            Verdict::Dominates => "search found a point dominating the shipped design",
            Verdict::FellShort => "search fell short of the shipped design point",
        }
    );
    passed
}

/// Exhaustively searches the tiny pinned space and passes only when the
/// optimum is exactly the paper's design point — the cheap CI rung that
/// backs the golden-frontier fixture.
fn explore_smoke() -> bool {
    use mtia_bench::experiments::explore_exps::{self, Verdict};

    let run = explore_exps::e25_tiny_run();
    let best = &run.outcome.best;
    eprintln!(
        "  tiny-space optimum: {} perf/TCO {:.4} (paper {:.4})",
        best.design.label(),
        best.score.perf_per_tco,
        run.paper_score.perf_per_tco,
    );
    let passed = run.verdict == Verdict::Rediscovered;
    eprintln!("explore smoke {}", if passed { "passed" } else { "FAILED" });
    passed
}

fn main() -> ExitCode {
    let opts = parse_args();
    let entries = selection(&opts);
    if opts.list {
        for e in &entries {
            println!("{}", e.name);
        }
        return ExitCode::SUCCESS;
    }
    let threads = if opts.threads == 0 {
        pool::configured_threads()
    } else {
        opts.threads
    };

    let mut failed = false;
    if opts.determinism_check {
        let run_1t = timed_run(&entries, 1);
        let run_nt = timed_run(&entries, threads);
        if run_1t.out == run_nt.out {
            eprintln!(
                "determinism check passed: {} experiments byte-identical at 1 \
                 and {threads} threads ({:.3}s -> {:.3}s)",
                entries.len(),
                run_1t.wall,
                run_nt.wall,
            );
        } else {
            eprintln!("determinism check FAILED: output differs between 1 and {threads} threads");
            failed = true;
        }
    }
    if let Some(path) = &opts.bench_perf {
        let mut measured = Vec::new();
        failed |= !bench_perf(&entries, threads, path, &mut measured);
        if let Some(baseline) = &opts.perf_baseline {
            failed |= !perf_baseline_gate(&measured, baseline);
        }
    } else if opts.perf_baseline.is_some() {
        eprintln!("--perf-baseline requires --bench-perf");
        usage();
    }
    if opts.telemetry_smoke {
        failed |= !telemetry_smoke();
    }
    if opts.chaos_smoke {
        failed |= !chaos_smoke();
    }
    if opts.explore {
        failed |= !explore_full(threads);
    }
    if opts.explore_smoke {
        failed |= !explore_smoke();
    }
    if let Some(dir) = &opts.trace_out {
        failed |= !trace_out(&entries, dir);
    }
    if opts.determinism_check
        || opts.bench_perf.is_some()
        || opts.telemetry_smoke
        || opts.chaos_smoke
        || opts.explore
        || opts.explore_smoke
        || opts.trace_out.is_some()
    {
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    pool::set_threads(threads);
    println!("# MTIA 2i reproduction — every table and figure\n");
    println!(
        "Generated by `cargo run --release -p mtia-bench --bin reproduce`.\n\
         Absolute numbers come from the simulator stack; the *shape* of each\n\
         result (who wins, by what factor, where thresholds fall) is the\n\
         reproduction target."
    );
    let reports = experiments::run_entries(entries);
    print!("{}", render_reports(&reports));
    ExitCode::SUCCESS
}
