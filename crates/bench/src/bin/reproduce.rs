//! Runs table/figure reproductions and prints them in paper order — the
//! source of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p mtia-bench --bin reproduce [-- OPTIONS]
//!
//! OPTIONS:
//!   --threads N          worker threads for the experiment pool
//!                        (default: auto; 1 = serial)
//!   --filter STR         comma-separated substring terms selecting
//!                        experiments by name; "quick" = the fast
//!                        determinism subset
//!   --list               print the experiment names and exit
//!   --determinism-check  run the selection at 1 thread and at N
//!                        threads and fail unless the rendered output
//!                        is byte-identical
//!   --bench-perf PATH    time each selected experiment at 1 thread and
//!                        at N threads and write a JSON report (wall
//!                        clock, speedup, kernel-cost-cache hit rate
//!                        plus per-shard hit/miss counts)
//!   --trace-out DIR      write the pinned-seed scenario traces
//!                        (canonical + Chrome trace_event JSON) and a
//!                        per-experiment metrics dump into DIR
//!   --telemetry-smoke    verify tracing is a pure observer: traced and
//!                        untraced scenario results byte-identical,
//!                        canonical exports stable, overhead < 10 %
//!   --chaos-smoke        run the seeded chaos-schedule suite — the
//!                        cell-level scenarios against a domain-aware
//!                        failover cell plus the region-level suite
//!                        (pod loss, rolling pod loss, region outage,
//!                        WAN partition) against the global router —
//!                        and fail if accounting leaks a request or
//!                        goodput dips below 90 %
//! ```
//!
//! Experiments are pure `(config, seed)` functions, so every mode prints
//! byte-identical tables at any `--threads` value; only wall-clock (and
//! the cache/timing telemetry in the JSON report) changes.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mtia_bench::experiments::{self, ExperimentEntry};
use mtia_bench::render_reports;
use mtia_core::pool;

struct Options {
    threads: usize,
    filter: Option<String>,
    list: bool,
    determinism_check: bool,
    bench_perf: Option<String>,
    trace_out: Option<String>,
    telemetry_smoke: bool,
    chaos_smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--threads N] [--filter STR] [--list] \
         [--determinism-check] [--bench-perf PATH] [--trace-out DIR] \
         [--telemetry-smoke] [--chaos-smoke]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        threads: 0,
        filter: None,
        list: false,
        determinism_check: false,
        bench_perf: None,
        trace_out: None,
        telemetry_smoke: false,
        chaos_smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--filter" => opts.filter = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => opts.list = true,
            "--determinism-check" => opts.determinism_check = true,
            "--bench-perf" => opts.bench_perf = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => opts.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--telemetry-smoke" => opts.telemetry_smoke = true,
            "--chaos-smoke" => opts.chaos_smoke = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn selection(opts: &Options) -> Vec<ExperimentEntry> {
    let entries = match &opts.filter {
        Some(f) => experiments::filtered(f),
        None => experiments::registry(),
    };
    if entries.is_empty() {
        let near = opts
            .filter
            .as_deref()
            .map(experiments::near_misses)
            .unwrap_or_default();
        if near.is_empty() {
            eprintln!("no experiments match the filter");
        } else {
            eprintln!(
                "no experiments match the filter; did you mean: {}?",
                near.join(", ")
            );
        }
        eprintln!("run with --list to see every experiment name");
        std::process::exit(2);
    }
    entries
}

/// Runs `entries` and reports wall-clock plus the kernel-cost-cache
/// delta for the run (the cache is process-global, so it is reset first
/// for honest cold-start numbers).
fn timed_run(
    entries: &[ExperimentEntry],
    threads: usize,
) -> (String, f64, mtia_core::memo::CacheStats) {
    mtia_sim::costcache::reset();
    pool::set_threads(threads);
    let start = Instant::now();
    let reports = experiments::run_entries(entries.to_vec());
    let wall = start.elapsed().as_secs_f64();
    pool::set_threads(0);
    (render_reports(&reports), wall, mtia_sim::costcache::stats())
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// Emits the BENCH_PERF.json payload: per-experiment wall clock at one
/// thread and at `threads`, speedup, byte-identity, and cost-cache hit
/// rates. Hand-rolled JSON — the workspace takes no serde dependency.
fn bench_perf(entries: &[ExperimentEntry], threads: usize, path: &str) -> bool {
    let mut rows = String::new();
    let mut total_1t = 0.0;
    let mut total_nt = 0.0;
    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    let mut all_identical = true;
    for (i, entry) in entries.iter().enumerate() {
        let one = std::slice::from_ref(entry);
        let (out_1t, wall_1t, _) = timed_run(one, 1);
        let (out_nt, wall_nt, cache) = timed_run(one, threads);
        // Per-shard counters from the N-thread run (the cache was reset
        // at its start), so shard-load skew under the pool is visible.
        // Only shards that saw traffic are emitted — the all-zero
        // entries carry no signal and used to dominate the file.
        let shards = mtia_sim::costcache::shard_stats();
        let shard_rows: Vec<String> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.hits + s.misses > 0)
            .map(|(i, s)| {
                format!(
                    "{{\"shard\": {}, \"hits\": {}, \"misses\": {}}}",
                    i, s.hits, s.misses
                )
            })
            .collect();
        let identical = out_1t == out_nt;
        all_identical &= identical;
        total_1t += wall_1t;
        total_nt += wall_nt;
        total_hits += cache.hits;
        total_misses += cache.misses;
        eprintln!(
            "  {:<24} 1t {:>8.3}s  {}t {:>8.3}s  speedup {:>5.2}x  cache {:>5.1}%  {}",
            entry.name,
            wall_1t,
            threads,
            wall_nt,
            wall_1t / wall_nt,
            cache.hit_rate() * 100.0,
            if identical { "identical" } else { "MISMATCH" },
        );
        write!(
            rows,
            "{}    {{\"name\": \"{}\", \"wall_s_1t\": {}, \"wall_s_nt\": {}, \
             \"speedup\": {}, \"identical\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}, \
             \"shards\": [{}]}}}}",
            if i == 0 { "" } else { ",\n" },
            entry.name,
            json_f64(wall_1t),
            json_f64(wall_nt),
            json_f64(wall_1t / wall_nt),
            identical,
            cache.hits,
            cache.misses,
            json_f64(cache.hit_rate()),
            shard_rows.join(", "),
        )
        .expect("string write");
    }
    let json = format!(
        "{{\n  \"threads\": {},\n  \"host_parallelism\": {},\n  \
         \"experiments\": [\n{}\n  ],\n  \"total_wall_s_1t\": {},\n  \
         \"total_wall_s_nt\": {},\n  \"overall_speedup\": {},\n  \
         \"all_identical\": {}\n}}\n",
        threads,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
        json_f64(total_1t),
        json_f64(total_nt),
        json_f64(total_1t / total_nt),
        all_identical,
    );
    if total_hits == 0 {
        eprintln!(
            "warning: kernel-cost-cache hit rate is 0% across the selected \
             experiments ({total_misses} misses) — the selection never \
             re-evaluates a (env, op) tuple, so the memo layer is dead \
             weight for it"
        );
    }
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
    all_identical
}

/// Writes the pinned-seed scenario traces (canonical + Chrome
/// `trace_event` JSON, for chrome://tracing or Perfetto) plus one
/// metrics dump per selected experiment into `dir`.
fn trace_out(entries: &[ExperimentEntry], dir: &str) -> bool {
    use mtia_bench::traces;
    use mtia_core::telemetry::Telemetry;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {dir}: {e}");
        return false;
    }
    let mut ok = true;
    let mut write_file = |path: String, body: &str| {
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            ok = false;
        } else {
            eprintln!("wrote {path}");
        }
    };
    for scenario in traces::scenarios() {
        let mut tel = Telemetry::new_enabled();
        (scenario.run)(&mut tel);
        write_file(
            format!("{dir}/{}.trace.json", scenario.name),
            &tel.to_canonical_json(),
        );
        write_file(
            format!("{dir}/{}.chrome.json", scenario.name),
            &tel.to_chrome_json(),
        );
    }
    // Per-experiment metrics: wall clock + the kernel-cost-cache delta
    // each experiment produced on a cold cache.
    let mut rows = String::new();
    for (i, entry) in entries.iter().enumerate() {
        let (_, wall, cache) = timed_run(std::slice::from_ref(entry), 1);
        write!(
            rows,
            "{}    {{\"name\": \"{}\", \"wall_s\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}}}",
            if i == 0 { "" } else { ",\n" },
            entry.name,
            json_f64(wall),
            cache.hits,
            cache.misses,
            json_f64(cache.hit_rate()),
        )
        .expect("string write");
    }
    write_file(
        format!("{dir}/experiments.metrics.json"),
        &format!("{{\n  \"experiments\": [\n{rows}\n  ]\n}}\n"),
    );
    ok
}

/// Checks tracing is a pure observer: traced and untraced scenario
/// results are byte-identical, canonical exports are stable across
/// runs, and the traced wall clock stays within the overhead budget.
fn telemetry_smoke() -> bool {
    let report = mtia_bench::traces::run_telemetry_smoke(5);
    for (name, ok) in &report.identical {
        eprintln!(
            "  {name:<12} traced == untraced: {}",
            if *ok { "identical" } else { "MISMATCH" }
        );
    }
    for (name, ok) in &report.stable {
        eprintln!(
            "  {name:<12} canonical export:   {}",
            if *ok { "stable" } else { "UNSTABLE" }
        );
    }
    eprintln!(
        "  wall clock: untraced {:.4}s, traced {:.4}s ({:+.1}% overhead)",
        report.untraced_s,
        report.traced_s,
        report.overhead() * 100.0
    );
    let passed = report.passed(0.10);
    eprintln!(
        "telemetry smoke {}",
        if passed { "passed" } else { "FAILED" }
    );
    passed
}

/// Runs the seeded chaos suite: the cell-level scenarios against the
/// paper-shape pod with domain-aware placement and failover on, plus
/// the region-level suite against the global router on the toy global
/// fleet. Passes when accounting conserves everywhere, no cell-level
/// scenario loses a request forever, and goodput holds (region storms
/// may legitimately kill in-flight work, so global lines gate on
/// conservation + goodput only).
fn chaos_smoke() -> bool {
    let report = mtia_bench::chaos::run_chaos_smoke(mtia_core::seed::DEFAULT_SEED);
    for line in &report.lines {
        let r = &line.report;
        eprintln!(
            "  {:<18} goodput {:>6.2}%  lost {}  unavailable {:.2}s  recovery {:.2}s  \
             promo/restore/rerepl {}/{}/{}",
            line.name,
            r.goodput() * 100.0,
            r.lost,
            r.unavailable.as_secs_f64(),
            r.recovery_time.as_secs_f64(),
            r.promotions,
            r.restores,
            r.rereplications,
        );
    }
    for line in &report.global_lines {
        let r = &line.report;
        eprintln!(
            "  {:<24} goodput {:>6.2}%  shed {}  lost {}  spillover {}  recovery {:.2}s  \
             headroom {:.1}%",
            line.name,
            r.goodput() * 100.0,
            r.shed,
            r.lost,
            r.spillover,
            r.recovery_time.as_secs_f64(),
            r.capacity_headroom * 100.0,
        );
    }
    let passed = report.passed(0.90);
    eprintln!("chaos smoke {}", if passed { "passed" } else { "FAILED" });
    passed
}

fn main() -> ExitCode {
    let opts = parse_args();
    let entries = selection(&opts);
    if opts.list {
        for e in &entries {
            println!("{}", e.name);
        }
        return ExitCode::SUCCESS;
    }
    let threads = if opts.threads == 0 {
        pool::configured_threads()
    } else {
        opts.threads
    };

    let mut failed = false;
    if opts.determinism_check {
        let (out_1t, wall_1t, _) = timed_run(&entries, 1);
        let (out_nt, wall_nt, _) = timed_run(&entries, threads);
        if out_1t == out_nt {
            eprintln!(
                "determinism check passed: {} experiments byte-identical at 1 \
                 and {threads} threads ({wall_1t:.3}s -> {wall_nt:.3}s)",
                entries.len()
            );
        } else {
            eprintln!("determinism check FAILED: output differs between 1 and {threads} threads");
            failed = true;
        }
    }
    if let Some(path) = &opts.bench_perf {
        failed |= !bench_perf(&entries, threads, path);
    }
    if opts.telemetry_smoke {
        failed |= !telemetry_smoke();
    }
    if opts.chaos_smoke {
        failed |= !chaos_smoke();
    }
    if let Some(dir) = &opts.trace_out {
        failed |= !trace_out(&entries, dir);
    }
    if opts.determinism_check
        || opts.bench_perf.is_some()
        || opts.telemetry_smoke
        || opts.chaos_smoke
        || opts.trace_out.is_some()
    {
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    pool::set_threads(threads);
    println!("# MTIA 2i reproduction — every table and figure\n");
    println!(
        "Generated by `cargo run --release -p mtia-bench --bin reproduce`.\n\
         Absolute numbers come from the simulator stack; the *shape* of each\n\
         result (who wins, by what factor, where thresholds fall) is the\n\
         reproduction target."
    );
    let reports = experiments::run_entries(entries);
    print!("{}", render_reports(&reports));
    ExitCode::SUCCESS
}
