//! Declarative chaos schedules over the fleet fault-domain tree.
//!
//! A [`ChaosSchedule`] is a seeded scenario spec — *which* correlated
//! fault hits *which* domain, *when*, against *what* traffic — that
//! compiles to a concrete [`FaultPlan`] via
//! [`FleetTopology::correlated_event`] and an arrival process from the
//! same derived seed. Running one schedule twice, or under two
//! placement policies, therefore replays a byte-identical trace
//! (`FailoverReport::fault_fingerprint` witnesses it), which is what
//! makes the E21 naive-vs-domain-aware comparison and the CI chaos
//! smoke an apples-to-apples availability measurement rather than two
//! different storms.
//!
//! Three scenario families cover the §5.5 blast-radius ladder:
//!
//! - **single host loss** — one host crash takes all 24 accelerators
//!   behind one PCIe fabric (§3.4) down at once;
//! - **rolling rack loss** — a rack's hosts brown out one after
//!   another, the way a failing power shelf takes a rack down;
//! - **partition during diurnal peak** — a NIC partition isolates a
//!   host exactly at the top of the sinusoidal traffic curve, when
//!   spare capacity is thinnest.
//!
//! Above the pod, the same discipline extends to the region-scale
//! blast radii of the global router ([`GlobalChaosSchedule`]): single
//! pod loss, a region's pods rolling over one by one, a full region
//! outage timed to the victim's diurnal crest, and a WAN partition
//! isolating one region — each compiled against a
//! [`GlobalTopology`] and replayed on a byte-identical
//! [`RegionalTrace`].

use mtia_core::seed::derive;
use mtia_core::telemetry::Telemetry;
use mtia_core::SimTime;
use mtia_fleet::overclock::SiliconMargin;
use mtia_fleet::topology::{DomainLevel, FleetTopology, GlobalLevel, GlobalTopology};
use mtia_serving::failover::{
    simulate_cell_failover_traced, FailoverConfig, FailoverReport, PlacementPolicy,
};
use mtia_serving::global::{
    build_regional_trace, build_regional_trace_crested, compare_global, simulate_global_traced,
    AutoscaleConfig, GlobalComparison, GlobalConfig, GlobalReport, RegionalTrace,
    RegionalTrafficConfig, RoutingPolicy,
};
use mtia_serving::traffic::{ArrivalProcess, DiurnalArrivals, PoissonArrivals};
use mtia_sim::faults::{throttle_floor, FaultEvent, FaultKind, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which correlated storm the schedule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// One host crash: every device behind the host's PCIe fabric goes
    /// down at `start` and reboots after `repair`.
    SingleHostLoss {
        /// Host index in the topology.
        host: u32,
        /// Host reboot time.
        repair: SimTime,
    },
    /// A rack browns out host by host: host `i` of the rack loses power
    /// at `start + i·stagger`, each restored after `repair`.
    RollingRackLoss {
        /// Rack index in the topology.
        rack: u32,
        /// Delay between consecutive host losses.
        stagger: SimTime,
        /// Per-host power-restore time.
        repair: SimTime,
    },
    /// A NIC partition isolates one host at the diurnal traffic peak:
    /// devices stay up and finish in-flight work, but no new work can
    /// reach them until the partition heals after `heal`.
    PartitionDuringPeak {
        /// Host index in the topology.
        host: u32,
        /// Partition duration.
        heal: SimTime,
    },
}

impl ChaosScenario {
    /// Stable scenario-family name for reports and telemetry.
    pub fn family(&self) -> &'static str {
        match self {
            ChaosScenario::SingleHostLoss { .. } => "single-host-loss",
            ChaosScenario::RollingRackLoss { .. } => "rolling-rack-loss",
            ChaosScenario::PartitionDuringPeak { .. } => "partition-at-peak",
        }
    }
}

/// One seeded chaos run: a scenario, its injection time, and the
/// traffic it plays against. Everything downstream — the fault plan,
/// the arrival stream — is a pure function of this struct.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSchedule {
    /// Scenario-family name (stable across seeds).
    pub name: &'static str,
    /// The correlated storm to inject.
    pub scenario: ChaosScenario,
    /// When the first fault fires.
    pub start: SimTime,
    /// Offered arrival rate (base rate for the diurnal scenario).
    pub rate_per_s: f64,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Warmup excluded from latency stats.
    pub warmup: SimTime,
    /// Root seed; the target domain and arrival stream derive from it.
    pub seed: u64,
}

impl ChaosSchedule {
    /// Seeded single-host-crash schedule: the victim host is drawn from
    /// `derive(seed, "chaos.single-host")` over the topology's hosts.
    pub fn single_host_loss(topo: &FleetTopology, seed: u64) -> Self {
        let hosts = topo.domain_count(DomainLevel::Host) as u64;
        ChaosSchedule {
            name: "single-host-loss",
            scenario: ChaosScenario::SingleHostLoss {
                host: (derive(seed, "chaos.single-host") % hosts) as u32,
                repair: SimTime::from_secs(20),
            },
            start: SimTime::from_secs(10),
            rate_per_s: 160.0,
            horizon: SimTime::from_secs(60),
            warmup: SimTime::from_secs(2),
            seed,
        }
    }

    /// Seeded rolling-rack-loss schedule: the victim rack is drawn from
    /// `derive(seed, "chaos.rolling-rack")`.
    pub fn rolling_rack_loss(topo: &FleetTopology, seed: u64) -> Self {
        let racks = topo.domain_count(DomainLevel::Rack) as u64;
        ChaosSchedule {
            name: "rolling-rack-loss",
            scenario: ChaosScenario::RollingRackLoss {
                rack: (derive(seed, "chaos.rolling-rack") % racks) as u32,
                stagger: SimTime::from_secs(5),
                repair: SimTime::from_secs(25),
            },
            start: SimTime::from_secs(10),
            rate_per_s: 160.0,
            horizon: SimTime::from_secs(80),
            warmup: SimTime::from_secs(2),
            seed,
        }
    }

    /// Seeded partition-at-peak schedule: the victim host is drawn from
    /// `derive(seed, "chaos.partition-host")`; the partition fires at
    /// the crest of the diurnal curve (one quarter period in).
    pub fn partition_during_peak(topo: &FleetTopology, seed: u64) -> Self {
        let hosts = topo.domain_count(DomainLevel::Host) as u64;
        let horizon = SimTime::from_secs(60);
        ChaosSchedule {
            name: "partition-at-peak",
            scenario: ChaosScenario::PartitionDuringPeak {
                host: (derive(seed, "chaos.partition-host") % hosts) as u32,
                heal: SimTime::from_secs(8),
            },
            // rate(t) peaks at t = period/4 of the sinusoid.
            start: horizon.scale(0.25),
            rate_per_s: 160.0,
            horizon,
            warmup: SimTime::from_secs(2),
            seed,
        }
    }

    /// The standard three-scenario suite, all derived from one seed.
    pub fn standard_suite(topo: &FleetTopology, seed: u64) -> Vec<ChaosSchedule> {
        vec![
            ChaosSchedule::single_host_loss(topo, seed),
            ChaosSchedule::rolling_rack_loss(topo, seed),
            ChaosSchedule::partition_during_peak(topo, seed),
        ]
    }

    /// The same suite with victims *aimed* at the cell under test: host
    /// 0 and rack 0 — the domains where both placement policies put the
    /// first replicas (lowest-id tie-breaking is deterministic). A
    /// seeded random victim usually misses a small cell on a large pod
    /// entirely; aiming guarantees every scenario actually exercises
    /// promotion/restore, which is what the CI smoke must gate on.
    pub fn aimed_suite(topo: &FleetTopology, seed: u64) -> Vec<ChaosSchedule> {
        let mut suite = ChaosSchedule::standard_suite(topo, seed);
        suite[0].scenario = match suite[0].scenario {
            ChaosScenario::SingleHostLoss { repair, .. } => {
                ChaosScenario::SingleHostLoss { host: 0, repair }
            }
            other => other,
        };
        suite[1].scenario = match suite[1].scenario {
            ChaosScenario::RollingRackLoss {
                stagger, repair, ..
            } => ChaosScenario::RollingRackLoss {
                rack: 0,
                stagger,
                repair,
            },
            other => other,
        };
        suite[2].scenario = match suite[2].scenario {
            ChaosScenario::PartitionDuringPeak { heal, .. } => {
                ChaosScenario::PartitionDuringPeak { host: 0, heal }
            }
            other => other,
        };
        suite
    }

    /// Compiles the scenario to a concrete correlated fault plan over
    /// `topo`. Pure: same schedule + topology → identical fingerprint.
    pub fn plan(&self, topo: &FleetTopology) -> FaultPlan {
        let plan = FaultPlan::empty(derive(self.seed, "chaos.plan"));
        match self.scenario {
            ChaosScenario::SingleHostLoss { host, repair } => topo.correlated_event(
                plan,
                DomainLevel::Host,
                host,
                self.start,
                FaultKind::HostCrash,
                repair,
            ),
            ChaosScenario::RollingRackLoss {
                rack,
                stagger,
                repair,
            } => {
                let hosts_per_rack = topo.config().hosts_per_rack;
                let first_host = rack * hosts_per_rack;
                (0..hosts_per_rack).fold(plan, |acc, i| {
                    topo.correlated_event(
                        acc,
                        DomainLevel::Host,
                        first_host + i,
                        self.start + stagger.scale(i as f64),
                        FaultKind::RackPowerLoss,
                        repair,
                    )
                })
            }
            ChaosScenario::PartitionDuringPeak { host, heal } => topo.correlated_event(
                plan,
                DomainLevel::Host,
                host,
                self.start,
                FaultKind::NicPartition,
                heal,
            ),
        }
    }

    /// The schedule's arrival process: Poisson for the loss scenarios,
    /// diurnal (period = horizon, so the crest lands at `start`) for
    /// the partition-at-peak scenario. Seeded from the schedule seed.
    pub fn arrivals(&self) -> Box<dyn ArrivalProcess> {
        let rng = StdRng::seed_from_u64(derive(self.seed, "chaos.arrivals"));
        match self.scenario {
            ChaosScenario::PartitionDuringPeak { .. } => Box::new(DiurnalArrivals::new(
                self.rate_per_s,
                0.6,
                self.horizon,
                rng,
            )),
            _ => Box::new(PoissonArrivals::new(self.rate_per_s, rng)),
        }
    }

    /// Runs the schedule against a cell under `placement`, untraced.
    pub fn run(
        &self,
        topo: &FleetTopology,
        config: &FailoverConfig,
        placement: PlacementPolicy,
    ) -> FailoverReport {
        self.run_traced(topo, config, placement, &mut Telemetry::disabled())
    }

    /// Runs the schedule with telemetry; the report must not depend on
    /// whether `tel` is enabled.
    pub fn run_traced(
        &self,
        topo: &FleetTopology,
        config: &FailoverConfig,
        placement: PlacementPolicy,
        tel: &mut Telemetry,
    ) -> FailoverReport {
        let plan = self.plan(topo);
        let mut arrivals = self.arrivals();
        simulate_cell_failover_traced(
            config,
            placement,
            topo,
            arrivals.as_mut(),
            &plan,
            self.horizon,
            self.warmup,
            tel,
        )
    }
}

/// Which region-scale storm a [`GlobalChaosSchedule`] injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalChaosScenario {
    /// One whole pod drops at `start` (spine switch, pod power bus) and
    /// returns after `repair`.
    SinglePodLoss {
        /// Pod index in the global topology.
        pod: u32,
        /// Pod restoration time.
        repair: SimTime,
    },
    /// A region's pods go down one after another — a cascading regional
    /// incident rather than a clean cut.
    RollingPodLoss {
        /// Victim region.
        region: u32,
        /// Delay between consecutive pod losses.
        stagger: SimTime,
        /// Per-pod restoration time.
        repair: SimTime,
    },
    /// Every pod of a region goes dark exactly at the victim region's
    /// diurnal crest — the worst instant the §4.1 disaster case can
    /// pick.
    RegionOutageAtPeak {
        /// Victim region.
        region: u32,
        /// Region restoration time.
        repair: SimTime,
    },
    /// A WAN partition isolates one region: its devices keep serving
    /// local ingress but neither give nor take spillover until `heal`.
    WanPartitionIsolation {
        /// Isolated region.
        region: u32,
        /// Partition duration.
        heal: SimTime,
    },
    /// Fail-slow storm at the diurnal crest: a handful of devices per
    /// pod thermally throttle (floors seeded from the silicon
    /// frequency-margin distribution), one device per region starts a
    /// progressive retention drift, and one NIC flaps intermittently.
    /// Every victim keeps passing liveness probes — the storm is
    /// invisible to the health-check-only router.
    GrayFailure {
        /// Thermally throttled devices per pod.
        throttled_per_pod: u32,
        /// How long the throttles last.
        window: SimTime,
    },
    /// Metastable-overload storm: flash crowds land exactly at every
    /// region's diurnal crest while a fraction of every pod's nominal
    /// devices dips and heals mid-run. The question the smoke asks is
    /// whether goodput comes back once the trigger is gone — the
    /// defended arm (retry budgets, breakers, deadline propagation,
    /// forecast-driven autoscaling) must not latch into collapse.
    OverloadStorm {
        /// Fraction of each pod's devices the dip takes down.
        dip_fraction: f64,
        /// How long the dip lasts before healing.
        window: SimTime,
    },
}

impl GlobalChaosScenario {
    /// Stable scenario-family name for reports and telemetry.
    pub fn family(&self) -> &'static str {
        match self {
            GlobalChaosScenario::SinglePodLoss { .. } => "single-pod-loss",
            GlobalChaosScenario::RollingPodLoss { .. } => "rolling-pod-loss",
            GlobalChaosScenario::RegionOutageAtPeak { .. } => "region-outage-at-peak",
            GlobalChaosScenario::WanPartitionIsolation { .. } => "wan-partition-isolation",
            GlobalChaosScenario::GrayFailure { .. } => "gray-failure",
            GlobalChaosScenario::OverloadStorm { .. } => "overload-storm",
        }
    }

    /// The routing arm the scenario is meant to stress. Fail-stop
    /// storms exercise the health-aware router; the fail-slow storm is
    /// invisible to liveness probes, so it runs the gray-resilient arm
    /// (detector + hedging).
    pub fn policy(&self) -> RoutingPolicy {
        match self {
            GlobalChaosScenario::GrayFailure { .. } => RoutingPolicy::GrayResilient,
            GlobalChaosScenario::OverloadStorm { .. } => RoutingPolicy::OverloadResilient,
            _ => RoutingPolicy::HealthAware,
        }
    }
}

/// One seeded region-scale chaos run: scenario, regional traffic shape,
/// horizon, seed. The fault plan and the arrival trace are pure
/// functions of this struct plus the topology.
#[derive(Debug, Clone, Copy)]
pub struct GlobalChaosSchedule {
    /// Scenario-family name (stable across seeds).
    pub name: &'static str,
    /// The region-scale storm to inject.
    pub scenario: GlobalChaosScenario,
    /// When the first fault fires.
    pub start: SimTime,
    /// Per-region traffic shape.
    pub traffic: RegionalTrafficConfig,
    /// Simulation horizon (arrivals stop here; the run drains fully).
    pub horizon: SimTime,
    /// Root seed; victims and arrival streams derive from it.
    pub seed: u64,
}

impl GlobalChaosSchedule {
    /// The smoke-sized traffic shape: light enough that the toy fleet
    /// can absorb a region outage without saturating.
    fn smoke_traffic(horizon: SimTime) -> RegionalTrafficConfig {
        RegionalTrafficConfig::production(20.0, horizon)
    }

    /// Seeded single-pod-loss schedule; the victim pod is drawn from
    /// `derive(seed, "chaos.pod")`.
    pub fn single_pod_loss(global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(60);
        GlobalChaosSchedule {
            name: "single-pod-loss",
            scenario: GlobalChaosScenario::SinglePodLoss {
                pod: (derive(seed, "chaos.pod") % global.pod_count() as u64) as u32,
                repair: SimTime::from_secs(15),
            },
            start: SimTime::from_secs(12),
            traffic: Self::smoke_traffic(horizon),
            horizon,
            seed,
        }
    }

    /// Seeded rolling-pod-loss schedule inside the region drawn from
    /// `derive(seed, "chaos.rolling-region")`.
    pub fn rolling_pod_loss(global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(70);
        GlobalChaosSchedule {
            name: "rolling-pod-loss",
            scenario: GlobalChaosScenario::RollingPodLoss {
                region: (derive(seed, "chaos.rolling-region") % global.region_count() as u64)
                    as u32,
                stagger: SimTime::from_secs(6),
                repair: SimTime::from_secs(18),
            },
            start: SimTime::from_secs(10),
            traffic: Self::smoke_traffic(horizon),
            horizon,
            seed,
        }
    }

    /// Seeded region-outage schedule, timed to the victim region's
    /// diurnal crest.
    pub fn region_outage_at_peak(global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(60);
        let traffic = Self::smoke_traffic(horizon);
        let region = (derive(seed, "chaos.outage-region") % global.region_count() as u64) as u32;
        // Region r's phase-shifted sinusoid crests where
        // (t + phase_r) / period = 1/4, i.e. a quarter period in minus
        // the region's timezone offset (mod period).
        let regions = global.region_count() as f64;
        let crest = 0.25 - region as f64 / regions;
        let crest = if crest < 0.0 { crest + 1.0 } else { crest };
        GlobalChaosSchedule {
            name: "region-outage-at-peak",
            scenario: GlobalChaosScenario::RegionOutageAtPeak {
                region,
                repair: SimTime::from_secs(15),
            },
            start: traffic.period.scale(crest),
            traffic,
            horizon,
            seed,
        }
    }

    /// Seeded WAN-partition schedule isolating the region drawn from
    /// `derive(seed, "chaos.partition-region")`.
    pub fn wan_partition_isolation(global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(60);
        GlobalChaosSchedule {
            name: "wan-partition-isolation",
            scenario: GlobalChaosScenario::WanPartitionIsolation {
                region: (derive(seed, "chaos.partition-region") % global.region_count() as u64)
                    as u32,
                heal: SimTime::from_secs(20),
            },
            start: SimTime::from_secs(15),
            traffic: Self::smoke_traffic(horizon),
            horizon,
            seed,
        }
    }

    /// Seeded fail-slow storm timed to the diurnal crest — the
    /// `gray_failure` preset behind `--chaos-smoke` and E23's rung.
    pub fn gray_failure(_global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(60);
        let traffic = Self::smoke_traffic(horizon);
        GlobalChaosSchedule {
            name: "gray-failure",
            scenario: GlobalChaosScenario::GrayFailure {
                throttled_per_pod: 2,
                window: SimTime::from_secs(25),
            },
            start: traffic.period.scale(0.25),
            traffic,
            horizon,
            seed,
        }
    }

    /// Seeded metastable-overload storm — the `overload_storm` preset
    /// behind `--chaos-smoke` and E26's rung: flash crowds pinned at
    /// every region's diurnal crest while a quarter of each pod's
    /// nominal devices dips and heals mid-run. Runs the fully-defended
    /// arm: retry budgets, breakers, deadline propagation, and
    /// forecast-driven autoscaling over a reserve tail.
    pub fn overload_storm(_global: &GlobalTopology, seed: u64) -> Self {
        let horizon = SimTime::from_secs(60);
        let mut traffic = Self::smoke_traffic(horizon);
        // Hot enough that the diurnal crest genuinely needs the reserve
        // tail: the forecast target must cross the nominal floor or the
        // autoscaler would never move.
        traffic.base_rate_per_s = 40.0;
        GlobalChaosSchedule {
            name: "overload-storm",
            scenario: GlobalChaosScenario::OverloadStorm {
                dip_fraction: 0.25,
                window: SimTime::from_secs(20),
            },
            // Region 0's crest; every region's crowd is crest-pinned by
            // the crested trace builder regardless.
            start: traffic.period.scale(0.25),
            traffic,
            horizon,
            seed,
        }
    }

    /// The standard six-scenario region-scale suite from one seed:
    /// four fail-stop storms, the fail-slow `gray_failure` preset, and
    /// the metastable `overload_storm` preset.
    pub fn region_suite(global: &GlobalTopology, seed: u64) -> Vec<GlobalChaosSchedule> {
        vec![
            GlobalChaosSchedule::single_pod_loss(global, seed),
            GlobalChaosSchedule::rolling_pod_loss(global, seed),
            GlobalChaosSchedule::region_outage_at_peak(global, seed),
            GlobalChaosSchedule::wan_partition_isolation(global, seed),
            GlobalChaosSchedule::gray_failure(global, seed),
            GlobalChaosSchedule::overload_storm(global, seed),
        ]
    }

    /// Compiles the scenario to a correlated fault plan over `global`.
    /// Pure: same schedule + topology → identical fingerprint.
    pub fn plan(&self, global: &GlobalTopology) -> FaultPlan {
        let plan = FaultPlan::empty(derive(self.seed, "chaos.global-plan"));
        match self.scenario {
            GlobalChaosScenario::SinglePodLoss { pod, repair } => global.correlated_event(
                plan,
                GlobalLevel::Pod,
                pod,
                self.start,
                FaultKind::PodLoss,
                repair,
            ),
            GlobalChaosScenario::RollingPodLoss {
                region,
                stagger,
                repair,
            } => {
                let pods_per_region = global.config().pods_per_region;
                let first = region * pods_per_region;
                (0..pods_per_region).fold(plan, |acc, i| {
                    global.correlated_event(
                        acc,
                        GlobalLevel::Pod,
                        first + i,
                        self.start + stagger.scale(i as f64),
                        FaultKind::PodLoss,
                        repair,
                    )
                })
            }
            GlobalChaosScenario::RegionOutageAtPeak { region, repair } => global.correlated_event(
                plan,
                GlobalLevel::Region,
                region,
                self.start,
                FaultKind::RegionOutage,
                repair,
            ),
            GlobalChaosScenario::WanPartitionIsolation { region, heal } => global.correlated_event(
                plan,
                GlobalLevel::Region,
                region,
                self.start,
                FaultKind::WanPartition,
                heal,
            ),
            GlobalChaosScenario::GrayFailure {
                throttled_per_pod,
                window,
            } => {
                let spec = global.fleet_spec();
                let margin = SiliconMargin::production();
                let mut rng = StdRng::seed_from_u64(derive(self.seed, "chaos.gray"));
                let mut plan = plan;
                for pod in 0..spec.pods() {
                    // Thermal throttles: victims drawn per pod, floors
                    // seeded from each victim chip's frequency margin —
                    // low-margin silicon throttles deeper (§5.2).
                    for _ in 0..throttled_per_pod.min(spec.devices_per_pod) {
                        let device =
                            pod * spec.devices_per_pod + rng.gen_range(0..spec.devices_per_pod);
                        let fmax = margin.sample_chip(&mut rng).fmax.as_ghz();
                        plan = plan.with_event(FaultEvent {
                            at: self.start,
                            device,
                            kind: FaultKind::ThermalThrottle {
                                ramp_s: window.as_secs_f64() * 0.25,
                                floor: throttle_floor(fmax, margin.mean_ghz, margin.std_ghz),
                            },
                            duration: window,
                        });
                    }
                }
                for region in 0..spec.regions {
                    // One retention drifter per region (never heals)
                    // and one intermittently flapping NIC.
                    let pods = spec.pods_in_region(region);
                    let drifter = pods[rng.gen_range(0..pods.len())] * spec.devices_per_pod
                        + rng.gen_range(0..spec.devices_per_pod);
                    plan = plan.with_event(FaultEvent {
                        at: self.start,
                        device: drifter,
                        kind: FaultKind::MemoryRetentionDegradation {
                            slowdown_per_hour: 30.0,
                        },
                        duration: SimTime::ZERO,
                    });
                    let flapper = pods[rng.gen_range(0..pods.len())] * spec.devices_per_pod
                        + rng.gen_range(0..spec.devices_per_pod);
                    plan = plan.with_event(FaultEvent {
                        at: self.start,
                        device: flapper,
                        kind: FaultKind::NicFlap {
                            period_s: 8.0,
                            loss_frac: 0.4,
                        },
                        duration: window,
                    });
                }
                plan
            }
            GlobalChaosScenario::OverloadStorm {
                dip_fraction,
                window,
            } => {
                let spec = global.fleet_spec();
                let dip = ((spec.devices_per_pod as f64) * dip_fraction).ceil() as u32;
                let mut plan = plan;
                for pod in 0..spec.pods() {
                    // The dip takes the *lowest*-indexed devices —
                    // nominal capacity, never the reserve tail the
                    // autoscaler owns.
                    for k in 0..dip.min(spec.devices_per_pod) {
                        plan = plan.with_event(FaultEvent {
                            at: self.start,
                            device: pod * spec.devices_per_pod + k,
                            kind: FaultKind::PodLoss,
                            duration: window,
                        });
                    }
                }
                plan
            }
        }
    }

    /// The schedule's multi-region arrival trace (seeded, replayable).
    /// The overload storm pins every flash crowd to its region's
    /// diurnal crest; every other storm places crowds by seeded draw.
    pub fn trace(&self, global: &GlobalTopology) -> RegionalTrace {
        let seed = derive(self.seed, "chaos.global-arrivals");
        match self.scenario {
            GlobalChaosScenario::OverloadStorm { .. } => build_regional_trace_crested(
                &self.traffic,
                global.region_count(),
                self.horizon,
                seed,
            ),
            _ => build_regional_trace(&self.traffic, global.region_count(), self.horizon, seed),
        }
    }

    /// The router config the schedule runs under: stock production
    /// everywhere except the overload storm, which provisions a
    /// two-device reserve tail per pod and the forecast-driven
    /// autoscaler.
    pub fn config(&self) -> GlobalConfig {
        let mut config = GlobalConfig::production(self.seed);
        if matches!(self.scenario, GlobalChaosScenario::OverloadStorm { .. }) {
            config.reserve_per_pod = 2;
            config.autoscale = Some(AutoscaleConfig::production(self.traffic.period));
        }
        config
    }

    /// Runs the schedule under `policy`, untraced.
    pub fn run(&self, global: &GlobalTopology, policy: RoutingPolicy) -> GlobalReport {
        self.run_traced(global, policy, &mut Telemetry::disabled())
    }

    /// Runs the schedule with telemetry; the report must not depend on
    /// whether `tel` is enabled.
    pub fn run_traced(
        &self,
        global: &GlobalTopology,
        policy: RoutingPolicy,
        tel: &mut Telemetry,
    ) -> GlobalReport {
        simulate_global_traced(
            &global.fleet_spec(),
            &self.config(),
            &self.trace(global),
            &self.plan(global),
            policy,
            tel,
        )
    }

    /// Replays the schedule through both routing arms on the identical
    /// trace.
    pub fn compare(&self, global: &GlobalTopology) -> GlobalComparison {
        compare_global(
            &global.fleet_spec(),
            &self.config(),
            &self.trace(global),
            &self.plan(global),
        )
    }
}

/// One scenario's line in the CI chaos smoke.
#[derive(Debug, Clone)]
pub struct ChaosSmokeLine {
    /// Scenario-family name.
    pub name: &'static str,
    /// The domain-aware, failover-enabled report.
    pub report: FailoverReport,
}

/// One region-scale scenario's line in the CI chaos smoke.
#[derive(Debug, Clone)]
pub struct GlobalChaosSmokeLine {
    /// Scenario-family name.
    pub name: &'static str,
    /// The global-router report.
    pub report: GlobalReport,
}

/// The `reproduce --chaos-smoke` / `scripts/ci.sh` gate: the standard
/// seeded suite against a domain-aware, failover-enabled cell, plus the
/// region-scale suite against the global router.
#[derive(Debug, Clone)]
pub struct ChaosSmokeReport {
    /// One line per cell-level scenario.
    pub lines: Vec<ChaosSmokeLine>,
    /// One line per region-scale scenario (global-router arm).
    pub global_lines: Vec<GlobalChaosSmokeLine>,
}

impl ChaosSmokeReport {
    /// The smoke passes when no cell scenario loses a request forever,
    /// every run (cell and global) conserves its request accounting,
    /// and goodput stays at or above `min_goodput` everywhere. Region-
    /// scale storms legitimately kill in-flight work, so the global
    /// lines gate on conservation + goodput rather than zero loss.
    pub fn passed(&self, min_goodput: f64) -> bool {
        self.lines.iter().all(|l| {
            l.report.lost == 0 && l.report.unaccounted() == 0 && l.report.goodput() >= min_goodput
        }) && self
            .global_lines
            .iter()
            .all(|l| l.report.unaccounted() == 0 && l.report.goodput() >= min_goodput)
    }
}

/// Runs the aimed chaos suite on the paper-shape pod with domain-aware
/// placement and failover enabled, plus the region-scale suite on the
/// toy global fleet under the health-aware router.
pub fn run_chaos_smoke(seed: u64) -> ChaosSmokeReport {
    let topo = mtia_fleet::topology::TopologyConfig::paper_server().build();
    let config = FailoverConfig::production(8, 2, seed);
    let lines =
        mtia_core::pool::parallel_map(ChaosSchedule::aimed_suite(&topo, seed), |_, schedule| {
            ChaosSmokeLine {
                name: schedule.name,
                report: schedule.run(&topo, &config, PlacementPolicy::DomainAware),
            }
        });
    let global = mtia_fleet::topology::GlobalTopologyConfig::global_small().build();
    let global_lines = mtia_core::pool::parallel_map(
        GlobalChaosSchedule::region_suite(&global, seed),
        |_, schedule| GlobalChaosSmokeLine {
            name: schedule.name,
            // Fail-stop storms run the health-aware router; the
            // fail-slow storm runs the gray-resilient arm it targets.
            report: schedule.run(&global, schedule.scenario.policy()),
        },
    );
    ChaosSmokeReport {
        lines,
        global_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::seed::DEFAULT_SEED;
    use mtia_fleet::topology::TopologyConfig;
    use mtia_serving::failover::FaultDomains;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let topo = TopologyConfig::paper_server().build();
        for (a, b) in ChaosSchedule::standard_suite(&topo, DEFAULT_SEED)
            .into_iter()
            .zip(ChaosSchedule::standard_suite(&topo, DEFAULT_SEED))
        {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(
                a.plan(&topo).fingerprint(),
                b.plan(&topo).fingerprint(),
                "{} plan must be reproducible",
                a.name
            );
        }
    }

    #[test]
    fn seed_changes_the_victim_stream_not_the_families() {
        let topo = TopologyConfig::paper_server().build();
        let a = ChaosSchedule::standard_suite(&topo, 1);
        let b = ChaosSchedule::standard_suite(&topo, 2);
        assert_eq!(
            a.iter().map(|s| s.name).collect::<Vec<_>>(),
            b.iter().map(|s| s.name).collect::<Vec<_>>(),
        );
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.plan(&topo).fingerprint() != y.plan(&topo).fingerprint()),
            "different seeds should eventually pick different victims"
        );
    }

    #[test]
    fn rolling_rack_covers_every_host_of_the_rack_staggered() {
        let topo = TopologyConfig::paper_server().build();
        let schedule = ChaosSchedule::rolling_rack_loss(&topo, DEFAULT_SEED);
        let ChaosScenario::RollingRackLoss { rack, stagger, .. } = schedule.scenario else {
            panic!("wrong scenario");
        };
        let plan = schedule.plan(&topo);
        // One event per device of the rack, in stagger-separated waves.
        assert_eq!(
            plan.events().len() as u32,
            topo.devices_per_rack(),
            "every device of the rack is hit exactly once"
        );
        let hosts_per_rack = topo.config().hosts_per_rack;
        for event in plan.events() {
            assert_eq!(topo.rack_of(event.device), rack);
            let wave = topo.host_of(event.device) - rack * hosts_per_rack;
            assert_eq!(event.at, schedule.start + stagger.scale(wave as f64));
            assert_eq!(event.kind, FaultKind::RackPowerLoss);
        }
    }

    #[test]
    fn partition_fires_at_the_diurnal_crest() {
        let topo = TopologyConfig::paper_server().build();
        let schedule = ChaosSchedule::partition_during_peak(&topo, DEFAULT_SEED);
        assert_eq!(schedule.start, schedule.horizon.scale(0.25));
        assert!(schedule
            .plan(&topo)
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::NicPartition));
    }

    #[test]
    fn chaos_smoke_loses_nothing_with_failover_on() {
        let report = run_chaos_smoke(DEFAULT_SEED);
        assert_eq!(report.lines.len(), 3);
        assert_eq!(report.global_lines.len(), 6);
        for line in &report.lines {
            assert_eq!(line.report.lost, 0, "{} lost requests", line.name);
            assert_eq!(
                line.report.unaccounted(),
                0,
                "{} leaked requests",
                line.name
            );
        }
        for line in &report.global_lines {
            assert_eq!(
                line.report.unaccounted(),
                0,
                "{} leaked requests",
                line.name
            );
        }
        assert!(report.passed(0.9));
        // Aimed victims guarantee the machinery is actually exercised:
        // the loss scenarios must promote, not merely survive by luck.
        assert!(
            report.lines.iter().any(|l| l.report.promotions > 0),
            "aimed suite never exercised promotion"
        );
        // And at least one region-scale storm must force cross-region
        // spillover through the router.
        assert!(
            report.global_lines.iter().any(|l| l.report.spillover > 0),
            "region suite never exercised spillover"
        );
        // The gray-failure line must actually exercise the fail-slow
        // stack: it runs the outlier-hedge arm and nothing goes down.
        let gray = report
            .global_lines
            .iter()
            .find(|l| l.name == "gray-failure")
            .expect("gray-failure line present");
        assert_eq!(gray.report.policy, "outlier-hedge");
        assert_eq!(gray.report.device_downs, 0, "fail-slow never kills");
        assert_eq!(gray.report.lost_killed, 0);
        // The overload-storm line must run the fully-defended arm and
        // actually exercise the new machinery: retries are issued, and
        // the autoscaler moves reserve capacity.
        let storm = report
            .global_lines
            .iter()
            .find(|l| l.name == "overload-storm")
            .expect("overload-storm line present");
        assert_eq!(storm.report.policy, "overload-resilient");
        assert!(storm.report.scale_events > 0, "autoscaler never moved");
    }

    #[test]
    fn gray_failure_preset_is_pure_and_fail_slow_only() {
        let global = mtia_fleet::topology::GlobalTopologyConfig::global_small().build();
        let a = GlobalChaosSchedule::gray_failure(&global, DEFAULT_SEED);
        let b = GlobalChaosSchedule::gray_failure(&global, DEFAULT_SEED);
        assert_eq!(a.plan(&global).fingerprint(), b.plan(&global).fingerprint());
        let plan = a.plan(&global);
        assert!(!plan.events().is_empty());
        assert!(
            plan.events().iter().all(|e| e.kind.is_fail_slow()),
            "gray preset must inject only fail-slow kinds"
        );
        // Low-margin silicon throttles deeper: every sampled floor is
        // inside the clamp band.
        for event in plan.events() {
            if let FaultKind::ThermalThrottle { floor, .. } = event.kind {
                assert!((0.15..=0.85).contains(&floor), "floor {floor}");
            }
        }
    }

    #[test]
    fn global_schedules_are_pure_functions_of_the_seed() {
        let global = mtia_fleet::topology::GlobalTopologyConfig::global_small().build();
        for (a, b) in GlobalChaosSchedule::region_suite(&global, DEFAULT_SEED)
            .into_iter()
            .zip(GlobalChaosSchedule::region_suite(&global, DEFAULT_SEED))
        {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.plan(&global).fingerprint(), b.plan(&global).fingerprint());
            assert_eq!(
                a.trace(&global).fingerprint(),
                b.trace(&global).fingerprint()
            );
        }
    }

    #[test]
    fn region_outage_fires_at_the_victims_crest() {
        let global = mtia_fleet::topology::GlobalTopologyConfig::global_small().build();
        let schedule = GlobalChaosSchedule::region_outage_at_peak(&global, DEFAULT_SEED);
        let GlobalChaosScenario::RegionOutageAtPeak { region, .. } = schedule.scenario else {
            panic!("wrong scenario");
        };
        // Crest instant: a quarter period in, minus the region's
        // timezone offset, wrapped into the period.
        let regions = global.region_count() as f64;
        let mut crest = 0.25 - region as f64 / regions;
        if crest < 0.0 {
            crest += 1.0;
        }
        assert_eq!(schedule.start, schedule.traffic.period.scale(crest));
        let plan = schedule.plan(&global);
        assert_eq!(
            plan.events().len() as u32,
            global.devices_per_region(),
            "the whole region is hit"
        );
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::RegionOutage));
    }

    #[test]
    fn region_suite_compares_router_favorably() {
        let global = mtia_fleet::topology::GlobalTopologyConfig::global_small().build();
        let schedule = GlobalChaosSchedule::region_outage_at_peak(&global, DEFAULT_SEED);
        let cmp = schedule.compare(&global);
        assert!(cmp.same_trace());
        assert!(
            cmp.goodput_gain_pp() > 0.0,
            "router {} vs naive {}",
            cmp.router.goodput(),
            cmp.naive.goodput()
        );
    }
}
