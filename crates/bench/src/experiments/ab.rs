//! E14: the §5.6 live A/B testing harness.

use mtia_serving::ab::{run_ab_test, PlatformArm};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{fx, pct, ExperimentReport, Table};

/// Runs the healthy A/B comparison and the regression-detection case.
pub fn e14_ab_testing() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(141);
    let healthy = run_ab_test(
        PlatformArm::gpu_control(),
        PlatformArm::mtia_treatment(),
        100_000,
        -2.0,
        &mut rng,
    );
    let broken = run_ab_test(
        PlatformArm::gpu_control(),
        PlatformArm::mtia_miscalibrated(),
        100_000,
        -2.0,
        &mut rng,
    );

    let mut t = Table::new(
        "E14: live A/B test — GPU control vs MTIA treatment (100k/arm)",
        "§5.6: split traffic, compare business metrics, normalized entropy, \
         and numerics; \"MTIA 2i meets SLOs, achieves comparable model \
         quality, and significantly reduces Perf/TCO\"",
        &[
            "arm",
            "NE",
            "NE regression",
            "revenue delta",
            "P99 latency",
            "passes",
        ],
    );
    for (label, report) in [("healthy MTIA", &healthy), ("miscalibrated MTIA", &broken)] {
        t.row(&[
            label.to_string(),
            fx(report.treatment.ne, 4),
            format!("{:+.2}%", report.ne_regression() * 100.0),
            format!("{:+.2}%", report.revenue_delta() * 100.0),
            format!("{}", report.treatment.latency.p99()),
            report.passes(0.005, 0.02).to_string(),
        ]);
    }
    let mut c = Table::new(
        "E14b: control arm reference",
        "the GPU control the treatment is judged against",
        &["arm", "NE", "P99 latency"],
    );
    c.row(&[
        "gpu control".into(),
        fx(healthy.control.ne, 4),
        format!("{}", healthy.control.latency.p99()),
    ]);
    let _ = pct(0.0);
    ExperimentReport {
        id: "E14",
        tables: vec![t, c],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_arm_passes_broken_arm_fails() {
        let r = e14_ab_testing();
        let rows = &r.tables[0].rows;
        assert_eq!(rows[0][5], "true", "healthy arm must pass");
        assert_eq!(rows[1][5], "false", "miscalibrated arm must be caught");
    }

    #[test]
    fn healthy_ne_regression_is_tiny() {
        let r = e14_ab_testing();
        let reg: f64 = r.tables[0].rows[0][2]
            .trim_start_matches('+')
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(reg.abs() < 0.5, "NE regression {reg}%");
    }
}
