//! E18: ablations of the design choices the paper (and our calibration)
//! lean on.
//!
//! * **SRAM capacity** — "The larger SRAM is chosen to meet the stringent
//!   latency requirements of our recommendation models" (§3.6): halve or
//!   double the 256 MB and watch the zoo's throughput move.
//! * **LPDDR vs HBM** — "It uses a large SRAM ... avoiding HBM to reduce
//!   cost and power" (§3.6): give the chip a 1 TB/s HBM stack and see how
//!   much performance it buys — and what module cost it could justify.
//! * **GPU comparator generation** — our Perf/TCO relatives are computed
//!   against an H100-class roofline; re-run Fig. 6 against an A100-class
//!   one to bound the calibration's sensitivity.
//! * **Embedding-popularity skew** — the 40–60 % TBE hit band rests on the
//!   Zipf skew choice; sweep it.

use mtia_core::spec::chips;
use mtia_core::tco::{PlatformMetrics, ServerCost};
use mtia_core::units::{Bandwidth, Bytes, Watts};
use mtia_model::models::zoo;
use mtia_sim::chip::ChipSim;
use mtia_sim::gpu::GpuSim;

use crate::{fx, pct, ExperimentReport, Table};

/// SRAM-capacity ablation over representative zoo models.
fn sram_ablation() -> Table {
    let mut t = Table::new(
        "E18a: SRAM-capacity ablation",
        "§3.6: the 256 MB SRAM is the headline design choice; smaller SRAM \
         pushes activations and weights to LPDDR, larger buys diminishing \
         returns once working sets fit",
        &["model", "128 MB", "256 MB (shipped)", "512 MB"],
    );
    let models = zoo::fig6_models();
    // 3 models × 3 capacities, each an independent simulation.
    let rows = mtia_core::pool::parallel_map(vec!["LC3", "HC1", "HC3"], |_, name| {
        let m = models.iter().find(|m| m.name == name).unwrap();
        let g = m.graph();
        let mut cells = vec![name.to_string()];
        let base = {
            let sim = ChipSim::new(chips::mtia2i_128gb());
            sim.run_optimized(&g).throughput_samples_per_s()
        };
        for mb in [128u64, 256, 512] {
            let chip = chips::mtia2i_128gb().with_sram_capacity(Bytes::from_mib(mb));
            let sim = ChipSim::new(chip);
            let tput = sim.run_optimized(&g).throughput_samples_per_s();
            cells.push(format!("{} ({:.0}/s)", pct(tput / base), tput));
        }
        cells
    });
    for cells in &rows {
        t.row(cells);
    }
    t
}

/// LPDDR-vs-HBM ablation.
fn hbm_ablation() -> Table {
    let mut t = Table::new(
        "E18b: LPDDR vs hypothetical HBM",
        "§3.6: HBM was avoided 'to reduce cost and power'; the large SRAM \
         already captures most locality, so HBM's 5x bandwidth buys only \
         1.3-2x on the launched models. Even LLM decode gains just ~2x \
         before the NoC becomes the next wall — the chip is balanced \
         around LPDDR",
        &["model", "LPDDR 204.8 GB/s", "HBM 1 TB/s", "HBM gain"],
    );
    let hbm_chip =
        chips::mtia2i_128gb().with_hbm(Bandwidth::from_tb_per_s(1.0), Bytes::from_gib(96));
    let lpddr = ChipSim::new(chips::mtia2i_128gb());
    let hbm = ChipSim::new(hbm_chip);
    let models = zoo::fig6_models();
    for name in ["LC1", "LC5", "HC1", "HC3", "HC4"] {
        let m = models.iter().find(|m| m.name == name).unwrap();
        let g = m.graph();
        let a = lpddr.run_optimized(&g).throughput_samples_per_s();
        let b = hbm.run_optimized(&g).throughput_samples_per_s();
        t.row(&[
            name.to_string(),
            fx(a, 0),
            fx(b, 0),
            format!("{}x", fx(b / a, 2)),
        ]);
    }
    // The LLM decode row: where HBM *would* change the verdict.
    let llm = mtia_model::models::llm::LlmConfig::llama2_7b();
    let decode = llm.decode_step_graph(512);
    let a = lpddr.run_optimized(&decode).total_time();
    let b = hbm.run_optimized(&decode).total_time();
    t.row(&[
        "llama2-7b decode/token".to_string(),
        format!("{a}"),
        format!("{b}"),
        format!("{}x", fx(a.as_secs_f64() / b.as_secs_f64(), 2)),
    ]);
    t
}

/// GPU-comparator-generation sensitivity on the Fig. 6 headline.
fn gpu_generation_sensitivity() -> Table {
    let mut t = Table::new(
        "E18c: GPU-comparator sensitivity (Fig. 6 headline)",
        "the 44 % TCO-reduction calibration is against an H100-class \
         roofline at market price; against an A100-class part (cheaper, \
         slower, lower power) the per-model wins grow — the headline is \
         robust to the comparator generation",
        &[
            "comparator",
            "mean perf vs GPU",
            "mean perf/TCO",
            "TCO reduction",
        ],
    );
    let mtia_sim = ChipSim::new(chips::mtia2i_128gb());
    let models = zoo::fig6_models();
    for (label, gpu_spec, module_cost, typical_power) in [
        (
            "H100-class (default)",
            chips::gpu_baseline(),
            mtia_core::calib::GPU_MODULE_COST,
            560.0,
        ),
        ("A100-class", chips::gpu_a100(), 55.0, 330.0),
    ] {
        let gpu_sim = GpuSim::new(gpu_spec);
        let gpu_cost = ServerCost::gpu_server_with(module_cost, Watts::new(typical_power));
        let mut perf_sum = 0.0;
        let mut tco_sum = 0.0;
        for m in &models {
            let g = m.graph();
            let mtia_tput = 24.0
                * mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all())
                    .run(&mtia_sim)
                    .throughput_samples_per_s()
                / (1.0 + m.host_overhead);
            let gpu_tput =
                8.0 * gpu_sim.run(&g).throughput_samples_per_s() / (1.0 + m.host_overhead);
            let rel = PlatformMetrics::new(ServerCost::mtia_server(), mtia_tput)
                .relative_to(&PlatformMetrics::new(gpu_cost, gpu_tput));
            perf_sum += rel.perf;
            tco_sum += rel.perf_per_tco;
        }
        let n = models.len() as f64;
        let mean_tco = tco_sum / n;
        t.row(&[
            label.to_string(),
            pct(perf_sum / n),
            pct(mean_tco),
            pct(1.0 - 1.0 / mean_tco),
        ]);
    }
    t
}

/// Zipf-skew sensitivity of the TBE hit-rate band.
fn zipf_sensitivity() -> Table {
    let mut t = Table::new(
        "E18d: embedding-popularity-skew sensitivity",
        "inverting §4.2's observation: SRAM hit rates of 40-60 % on \
         tens-of-GB tables are consistent with Zipf skew ~0.9-1.05, \
         bracketing published DLRM access traces; our calibration uses 0.95",
        &["zipf skew", "LC3 TBE hit rate", "HC3 TBE hit rate"],
    );
    let models = zoo::fig6_models();
    let lc3 = models.iter().find(|m| m.name == "LC3").unwrap().graph();
    let hc3 = models.iter().find(|m| m.name == "HC3").unwrap().graph();
    // One independent (skew, model) simulation pair per rung.
    let rows = mtia_core::pool::parallel_map(vec![0.80, 0.90, 0.95, 1.05, 1.15], |_, skew| {
        let sim = ChipSim::new(chips::mtia2i_128gb()).with_zipf_skew(skew);
        let a = sim.run_optimized(&lc3).tbe_hit_rate;
        let b = sim.run_optimized(&hc3).tbe_hit_rate;
        [fx(skew, 2), pct(a), pct(b)]
    });
    for row in &rows {
        t.row(row);
    }
    t
}

/// Runs all ablations. The four studies share no state, so they run
/// concurrently on the pool workers (each may fan out further).
pub fn run() -> ExperimentReport {
    let tables = mtia_core::pool::parallel_invoke(vec![
        Box::new(sram_ablation) as Box<dyn FnOnce() -> Table + Send>,
        Box::new(hbm_ablation),
        Box::new(gpu_generation_sensitivity),
        Box::new(zipf_sensitivity),
    ]);
    ExperimentReport { id: "E18", tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(s: &str) -> f64 {
        s.split('%').next().unwrap().parse().unwrap()
    }

    #[test]
    fn smaller_sram_always_hurts() {
        let t = sram_ablation();
        for row in &t.rows {
            let small = parse_pct(&row[1]);
            let shipped = parse_pct(&row[2]);
            let large = parse_pct(&row[3]);
            assert!(small <= shipped + 0.5, "{}: 128 MB beat shipped", row[0]);
            assert!(large >= shipped - 0.5, "{}: 512 MB lost to shipped", row[0]);
            assert!((shipped - 100.0).abs() < 0.5);
        }
    }

    #[test]
    fn hbm_gains_are_sublinear() {
        let t = hbm_ablation();
        let gain = |row: &Vec<String>| -> f64 { row[3].trim_end_matches('x').parse().unwrap() };
        // Recommendation models: far below the 4.9× bandwidth ratio — the
        // SRAM already absorbed the locality.
        for row in t.rows.iter().take(t.rows.len() - 1) {
            let g = gain(row);
            assert!((1.0..3.0).contains(&g), "{}: HBM gain {g}", row[0]);
        }
        // LLM decode: the biggest beneficiary, but the NoC becomes the
        // next wall well before the full 4.9× bandwidth ratio.
        let llm = gain(t.rows.last().unwrap());
        assert!(llm > 2.0, "llm decode HBM gain {llm}");
        assert!(llm < 4.9);
    }

    #[test]
    fn headline_is_robust_to_the_comparator() {
        let t = gpu_generation_sensitivity();
        let h100 = parse_pct(&t.rows[0][3]);
        let a100 = parse_pct(&t.rows[1][3]);
        // Against the older part the TCO win only grows.
        assert!(a100 > h100, "A100 {a100}% vs H100 {h100}%");
        assert!(h100 > 25.0, "H100-class reduction {h100}%");
    }

    #[test]
    fn paper_band_pins_the_skew_near_one() {
        let t = zipf_sensitivity();
        // Hit rate grows monotonically with skew...
        let hits: Vec<f64> = t.rows.iter().map(|r| parse_pct(&r[1])).collect();
        assert!(hits.windows(2).all(|w| w[1] >= w[0] - 0.5), "{hits:?}");
        // ...and only skews near 0.9–1.05 reproduce the paper's 40–60 %
        // band: the observation constrains the workload.
        let at_095 = t.rows.iter().find(|r| r[0] == "0.95").unwrap();
        let hit = parse_pct(&at_095[1]);
        assert!((40.0..=60.0).contains(&hit), "calibrated skew hit {hit}%");
        let at_080 = parse_pct(&t.rows[0][1]);
        assert!(
            at_080 < 40.0,
            "low skew must fall out of the band: {at_080}%"
        );
    }
}
