//! Chip-level experiments: eager-mode job launch (E1, §3.3), GEMM
//! instruction-issue efficiency (E2, §3.3), and the weight-broadcast
//! streaming GEMM (E7, §4.2).

use mtia_core::spec::{chips, EccMode};
use mtia_core::units::Bytes;
use mtia_core::DType;
use mtia_model::ops::OpKind;
use mtia_sim::chip::{ChipSim, LaunchMode};
use mtia_sim::control::JobLaunchModel;
use mtia_sim::kernels::{cost_op, FcVariant, KernelEnv};
use mtia_sim::mem::lpddr::LpddrController;
use mtia_sim::mem::sram::place_model;
use mtia_sim::noc::NocModel;

use crate::{fx, pct, ExperimentReport, Table};

/// E1: eager-mode job launch latency (§3.3).
pub fn e1_job_launch() -> ExperimentReport {
    let mut t = Table::new(
        "E1: eager-mode job launch path",
        "MTIA 2i launches jobs in < 1 µs and replaces them in < 0.5 µs — up \
         to 80 % faster than MTIA 1 (quad-core Control Core + WQ broadcast + \
         per-PE WQE)",
        &[
            "chip",
            "launch (64 PEs)",
            "replace (64 PEs)",
            "vs MTIA 1 launch",
        ],
    );
    let gen1 = JobLaunchModel::new(chips::mtia1().control);
    let gen2 = JobLaunchModel::new(chips::mtia2i().control);
    let base = gen1.launch_time(64);
    for (name, m) in [("MTIA 1", &gen1), ("MTIA 2i", &gen2)] {
        let launch = m.launch_time(64);
        let replace = m.replace_time(64);
        t.row(&[
            name.to_string(),
            format!("{launch}"),
            format!("{replace}"),
            pct(1.0 - launch.as_secs_f64() / base.as_secs_f64()),
        ]);
    }
    // Why sub-µs launches matter: eager mode stays affordable even on a
    // node-heavy model (the §3.3 rationale for supporting eager mode).
    let sim = ChipSim::new(chips::mtia2i());
    let graph = mtia_model::models::merge::MergeNetworkConfig::case_study().build();
    let compiled = mtia_compiler::compile(&graph, mtia_compiler::CompilerOptions::all());
    let mut eager_plan = compiled.plan.clone();
    eager_plan.launch_mode = LaunchMode::Eager;
    let mut graph_plan = compiled.plan.clone();
    graph_plan.launch_mode = LaunchMode::Graph;
    let eager = sim.run(&compiled.graph, &eager_plan);
    let graph_mode = sim.run(&compiled.graph, &graph_plan);

    let mut m = Table::new(
        "E1b: eager vs compiled-graph execution (case-study merge network)",
        "§3.3: eager mode \"executes operations immediately as they are \
         called\"; with < 0.5 µs job replacement its overhead stays small \
         even on node-heavy graphs, enabling training prototyping, \
         uncompilable models, and real-time weight updates",
        &["mode", "batch latency", "launch overhead", "overhead share"],
    );
    for (name, r) in [("eager", &eager), ("compiled graph", &graph_mode)] {
        m.row(&[
            name.to_string(),
            format!("{}", r.total_time()),
            format!("{}", r.launch_overhead()),
            pct(r.launch_overhead().as_secs_f64() / r.total_time().as_secs_f64()),
        ]);
    }
    ExperimentReport {
        id: "E1",
        tables: vec![t, m],
    }
}

fn env_with(chip: &mtia_core::ChipSpec, resident: f64) -> KernelEnv<'_> {
    KernelEnv {
        chip,
        noc: NocModel::new(chip.noc.clone()),
        dram: LpddrController::new(chip.dram.clone(), EccMode::ControllerEcc),
        placement: place_model(&chip.sram, Bytes::from_mib(40), Bytes::from_mib(100), 0.75),
        weight_resident_fraction: resident,
        tbe_hit_rate: 0.5,
        skip_writeback_hints: true,
    }
}

/// E2: GEMM efficiency with and without the §3.3 instruction-issue
/// enhancements, across square shapes.
pub fn e2_gemm_efficiency() -> ExperimentReport {
    let mut t = Table::new(
        "E2: GEMM efficiency vs custom-instruction issue rate",
        ">92 % of peak for 2K×2K with multi-context + auto-increment \
         instructions; the unenhanced issue path bottlenecks, worst at \
         small shapes",
        &[
            "shape",
            "enhanced (% of peak)",
            "baseline issue (% of peak)",
            "bottleneck (baseline)",
        ],
    );
    let full = chips::mtia2i();
    let bare = chips::mtia2i_without_issue_enhancements();
    for n in [256u64, 512, 1024, 2048, 4096] {
        let op = OpKind::Fc {
            batch: n,
            in_features: n,
            out_features: n,
        };
        let v = Some(FcVariant::optimized_for(n, n, n));
        let peak = full.gemm_peak(DType::Fp16, false).as_flops_per_s();
        let eff = |chip: &mtia_core::ChipSpec| {
            let env = env_with(chip, 1.0);
            let c = cost_op(&env, &op, DType::Fp16, v);
            (c.flops.as_f64() / c.time.as_secs_f64() / peak, c.bottleneck)
        };
        let (e_full, _) = eff(&full);
        let (e_bare, b_bare) = eff(&bare);
        t.row(&[
            format!("{n}x{n}x{n}"),
            pct(e_full),
            pct(e_bare),
            format!("{b_bare:?}"),
        ]);
    }

    // Cross-validation: the operational PE-pipeline simulator (§3.2's
    // CP/circular-buffer recurrence) against the analytic roofline.
    let mut v = Table::new(
        "E2b: analytic roofline vs operational PE-pipeline simulation",
        "the Command Processor overlaps DMA and compute through circular \
         buffers (§3.2); with the §3.3 instruction features the DPE stays \
         >90 % busy, and the two models agree on steady-state throughput",
        &[
            "chip",
            "shape",
            "pipeline DPE utilization",
            "pipeline/roofline time",
        ],
    );
    for (name, chip) in [("enhanced", &full), ("baseline issue", &bare)] {
        for n in [512u64, 2048] {
            let config = mtia_sim::pe_pipeline::gemm_pipeline_config(chip, n, n, n);
            let stats = mtia_sim::pe_pipeline::simulate_pipeline(config);
            let stage_max = config
                .issue_time
                .max(config.dma_time)
                .max(config.compute_time)
                .max(config.simd_time);
            let roofline = stage_max * config.tiles as u64;
            v.row(&[
                name.to_string(),
                format!("{n}x{n}x{n}"),
                pct(stats.dpe_utilization()),
                fx(stats.makespan.as_secs_f64() / roofline.as_secs_f64(), 3),
            ]);
        }
    }
    ExperimentReport {
        id: "E2",
        tables: vec![t, v],
    }
}

/// E7: the §4.2 streaming-GEMM optimization — decoupled loading, NoC
/// broadcast reads, and DMA prefetch on the 512×26592×2048 shape.
pub fn e7_broadcast_gemm() -> ExperimentReport {
    let chip = chips::mtia2i();
    let op = OpKind::Fc {
        batch: 512,
        in_features: 26592,
        out_features: 2048,
    };
    let weight_mb = op.weight_bytes(DType::Fp16).as_mib();
    let mut t = Table::new(
        "E7: weight-broadcast streaming GEMM (512 × 26592 × 2048)",
        "§4.2: \"improved latency by 45% and achieved over 95% DRAM \
         bandwidth\" for this 109 MB weight tensor",
        &[
            "kernel variant",
            "latency",
            "DRAM bandwidth achieved",
            "of ECC-adjusted peak",
        ],
    );
    let env = {
        let mut e = env_with(&chip, 0.0); // weights stream from DRAM
        e.placement = place_model(&chip.sram, Bytes::from_mib(64), Bytes::from_mib(800), 0.75);
        e.weight_resident_fraction = 0.0;
        e
    };
    let naive = FcVariant {
        broadcast_weights: false,
        prefetch: false,
        ..FcVariant::optimized_for(512, 26592, 2048)
    };
    let tuned = FcVariant::optimized_for(512, 26592, 2048);
    let ecc_bw = chip
        .effective_dram_bw(EccMode::ControllerEcc)
        .as_bytes_per_s();
    let mut latencies = Vec::new();
    for (name, v) in [
        ("naive (no broadcast/prefetch)", naive),
        ("broadcast + prefetch + decoupled", tuned),
    ] {
        let c = cost_op(&env, &op, DType::Fp16, Some(v));
        let achieved = c.dram_bytes.as_f64() / c.time.as_secs_f64();
        latencies.push(c.time);
        t.row(&[
            name.to_string(),
            format!("{}", c.time),
            format!("{:.1} GB/s", achieved / 1e9),
            pct(achieved / ecc_bw),
        ]);
    }
    let mut summary = Table::new(
        "E7 summary",
        "45 % latency improvement on the 109 MB-weight shape",
        &["metric", "value"],
    );
    summary.row(&["weight tensor".into(), format!("{weight_mb:.0} MiB")]);
    summary.row(&[
        "latency improvement".into(),
        pct(1.0 - latencies[1].as_secs_f64() / latencies[0].as_secs_f64()),
    ]);
    ExperimentReport {
        id: "E7",
        tables: vec![t, summary],
    }
}

/// Shared percentage parser for tests.
#[cfg(test)]
fn parse_pct(s: &str) -> f64 {
    s.trim_end_matches('%').parse().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reduction_near_80_percent() {
        let r = e1_job_launch();
        let reduction = parse_pct(&r.tables[0].rows[1][3]);
        assert!((75.0..=90.0).contains(&reduction), "reduction {reduction}%");
    }

    #[test]
    fn e1b_eager_overhead_is_modest_and_graph_mode_cheaper() {
        let r = e1_job_launch();
        let m = &r.tables[1];
        let eager_share = parse_pct(&m.rows[0][3]);
        let graph_share = parse_pct(&m.rows[1][3]);
        // Eager mode's overhead stays below 15 % even on ~150 nodes...
        assert!(eager_share < 15.0, "eager overhead {eager_share}%");
        // ...and compiled graph mode is cheaper still.
        assert!(graph_share < eager_share);
    }

    #[test]
    fn e2_2k_exceeds_92_percent() {
        let r = e2_gemm_efficiency();
        let row_2k = r.tables[0]
            .rows
            .iter()
            .find(|r| r[0].starts_with("2048"))
            .unwrap();
        assert!(parse_pct(&row_2k[1]) > 92.0, "2K efficiency {}", row_2k[1]);
        assert!(parse_pct(&row_2k[2]) < parse_pct(&row_2k[1]));
    }

    #[test]
    fn e2_baseline_issue_path_is_the_bottleneck() {
        let r = e2_gemm_efficiency();
        let rows = &r.tables[0].rows;
        // The unenhanced issue path is instruction-bound on most shapes and
        // never beats the enhanced path.
        let issue_bound = rows
            .iter()
            .filter(|row| row[3].contains("InstructionIssue"))
            .count();
        assert!(issue_bound >= 3, "only {issue_bound} shapes issue-bound");
        for row in rows {
            assert!(
                parse_pct(&row[2]) <= parse_pct(&row[1]) + 0.5,
                "{}: baseline beat enhanced",
                row[0]
            );
        }
    }

    #[test]
    fn e2b_pipeline_matches_roofline() {
        let r = e2_gemm_efficiency();
        let v = &r.tables[1];
        for row in v.rows.iter() {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(
                (0.95..=1.12).contains(&ratio),
                "{} {}: pipeline/roofline {ratio}",
                row[0],
                row[1]
            );
        }
        // Enhanced 2K runs the DPE > 90 % busy.
        let enhanced_2k = v
            .rows
            .iter()
            .find(|row| row[0] == "enhanced" && row[1].starts_with("2048"))
            .unwrap();
        let util = parse_pct(&enhanced_2k[2]);
        assert!(util > 90.0, "utilization {util}%");
    }

    #[test]
    fn e7_latency_gain_near_45_percent() {
        let r = e7_broadcast_gemm();
        let gain = parse_pct(&r.tables[1].rows[1][1]);
        assert!((30.0..=60.0).contains(&gain), "gain {gain}% (paper: 45%)");
        // Tuned variant reaches >85 % of ECC-adjusted DRAM bandwidth.
        let tuned_frac = parse_pct(&r.tables[0].rows[1][3]);
        assert!(tuned_frac > 85.0, "DRAM fraction {tuned_frac}%");
    }
}
