//! E25: search-driven co-design over the §3.6/E18 design axes.
//!
//! Fig. 4 shows the design point the paper's engineers reached by hand;
//! ROADMAP item 3 asks whether a *search* over the same levers lands in
//! the same place. This experiment wires the `autotune::explore` engine
//! to the E6/F6 platform objective — mean relative Perf/TCO and
//! Perf/Watt vs the fixed GPU baseline over the E18a model set — with
//! the candidate's module priced by the calibrated area/power model.
//! The acceptance bar (`reproduce --explore`, `tests/paper_claims.rs`)
//! is that a cold-start seeded search rediscovers or Pareto-dominates
//! the shipped point, byte-identically at any thread count.

use mtia_autotune::explore::{
    self, ChipSpecSpace, DesignPoint, ExploreConfig, ExploreOutcome, ObjectivePoint,
};
use mtia_core::tco::{PlatformMetrics, ServerCost};
use mtia_core::units::{CostUnits, Watts};
use mtia_core::{calib, spec::chips};
use mtia_model::models::zoo;
use mtia_serving::cluster::{host_bound_samples_per_s, HostPipeline};
use mtia_sim::chip::ChipSim;

use crate::platform::{self, ServingFactors};
use crate::{fx, pct, ExperimentReport, Table};

/// The representative model set the objective averages over: a spread
/// of launched low- and high-complexity ranking models *including* the
/// capacity-hungry ones (LC5 at ~100 GiB, HC4 at ~200 GiB). Capacity
/// is a first-class axis of the §3.6 memory-technology argument — a
/// candidate that trades DRAM capacity for bandwidth must shard these
/// models across more devices and pay for it in replicas.
const OBJECTIVE_MODELS: [&str; 5] = ["LC3", "LC5", "HC1", "HC3", "HC4"];

/// DRAM held back per device for activations, staging buffers, and the
/// runtime — not available for model weights and tables.
const DRAM_RESERVE_GIB: u64 = 8;

/// Throughput retained per additional shard in a replica: the
/// remote/merge split serializes a gather against the merge network, so
/// each extra device costs a fraction of the replica's throughput
/// (matches the §7 sharding penalty the E6 comparison pays).
const SHARD_EFFICIENCY: f64 = 0.85;

/// Everything about one model that does not depend on the candidate:
/// the compiled graph (compilation is chip-independent), the host-side
/// ceiling, and the GPU baseline metrics.
struct ModelCase {
    compiled: mtia_compiler::Compiled,
    model_bytes: mtia_core::units::Bytes,
    host_overhead: f64,
    host_limit_per_device: f64,
    gpu_metrics: PlatformMetrics,
}

fn model_cases() -> Vec<ModelCase> {
    let models = zoo::fig6_models();
    OBJECTIVE_MODELS
        .iter()
        .map(|name| {
            let m = models.iter().find(|m| &m.name == name).unwrap();
            let g = m.graph();
            let per_sample_in = platform::input_bytes_per_sample(&g);
            let host_limit_per_device = host_bound_samples_per_s(
                &chips::mtia_server(),
                &HostPipeline::optimized(per_sample_in),
            );
            // The GPU side of the comparison is candidate-independent.
            let cmp = platform::compare_model(m);
            ModelCase {
                model_bytes: g.model_bytes(),
                compiled: mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all()),
                host_overhead: m.host_overhead,
                host_limit_per_device,
                gpu_metrics: PlatformMetrics::new(ServerCost::gpu_server(), cmp.gpu_server_tput),
            }
        })
        .collect()
}

/// Server cost of a 24-module server built from the candidate, in the
/// same calibrated units as [`ServerCost::mtia_server`].
fn candidate_server_cost(d: &DesignPoint) -> ServerCost {
    ServerCost::new(
        CostUnits::new(calib::SERVER_BASE_COST + 24.0 * explore::module_cost(d)),
        Watts::new(calib::MTIA_SERVER_HOST_POWER_W) + explore::typical_power(d).scale(24.0),
    )
}

/// Devices one replica of the model occupies on the candidate: model
/// weights and tables over the per-device DRAM left after the runtime
/// reserve.
fn devices_per_replica(model_bytes: mtia_core::units::Bytes, dram_capacity: f64) -> f64 {
    let usable = dram_capacity - (DRAM_RESERVE_GIB * 1024 * 1024 * 1024) as f64;
    (model_bytes.as_f64() / usable).ceil().max(1.0)
}

/// Scores one candidate against the precomputed model cases: mean
/// relative Perf, Perf/TCO, and Perf/Watt over the model set, or `None`
/// if the candidate exceeds the thermal budget.
///
/// Capacity accounting: a model that does not fit one candidate device
/// shards, so a 24-module server holds `24 / devices` replicas, each
/// paying [`SHARD_EFFICIENCY`] per extra device for the remote/merge
/// serialization (the same shape as the E6 sharded path). The host
/// ceiling scales with the devices a replica spans, as in E6.
fn score(cases: &[ModelCase], d: &DesignPoint) -> Option<ObjectivePoint> {
    if !explore::is_thermally_feasible(d) {
        return None;
    }
    let spec = d.chip_spec();
    let dram_capacity = spec.dram.capacity.as_f64();
    let sim = ChipSim::new(spec);
    let serving = ServingFactors::tuned();
    let cost = candidate_server_cost(d);
    let mut sums = ObjectivePoint {
        perf: 0.0,
        perf_per_tco: 0.0,
        perf_per_watt: 0.0,
    };
    for case in cases {
        let devices = devices_per_replica(case.model_bytes, dram_capacity);
        let shard_penalty = SHARD_EFFICIENCY.powf(devices - 1.0);
        let tput = case.compiled.run(&sim).throughput_samples_per_s();
        let replica = (tput * shard_penalty * serving.batch_fill * serving.scheduling
            / (1.0 + case.host_overhead))
            .min(case.host_limit_per_device * devices);
        let server_tput = replica * 24.0 / devices;
        let rel = PlatformMetrics::new(cost, server_tput).relative_to(&case.gpu_metrics);
        sums.perf += rel.perf;
        sums.perf_per_tco += rel.perf_per_tco;
        sums.perf_per_watt += rel.perf_per_watt;
    }
    let n = cases.len() as f64;
    Some(ObjectivePoint {
        perf: sums.perf / n,
        perf_per_tco: sums.perf_per_tco / n,
        perf_per_watt: sums.perf_per_watt / n,
    })
}

/// How the search verdict relates the discovered best to the paper's
/// hand-picked point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The search landed exactly on the paper's design point.
    Rediscovered,
    /// The search found a point that Pareto-dominates the paper's.
    Dominates,
    /// The search fell short of the paper's point — a regression.
    FellShort,
}

/// A full explore run: the outcome, the paper point's own score, and
/// the verdict.
pub struct ExploreRun {
    /// The search outcome.
    pub outcome: ExploreOutcome,
    /// The paper point's score under the same objective.
    pub paper_score: ObjectivePoint,
    /// Best-vs-paper verdict.
    pub verdict: Verdict,
}

fn run_search(space: &ChipSpecSpace, config: &ExploreConfig) -> ExploreRun {
    let cases = model_cases();
    let outcome = explore::explore(space, config, |d| score(&cases, d))
        .expect("explore space is valid and contains feasible candidates");
    let paper_score = score(&cases, &DesignPoint::paper()).expect("the shipped point is feasible");
    let verdict = if outcome.best.design == DesignPoint::paper() {
        Verdict::Rediscovered
    } else if explore::dominates(&outcome.best.score, &paper_score) {
        Verdict::Dominates
    } else {
        Verdict::FellShort
    };
    ExploreRun {
        outcome,
        paper_score,
        verdict,
    }
}

/// Debug hook for calibration sweeps (hidden; used by the scratch
/// example only).
#[doc(hidden)]
pub fn debug_exhaustive(space: &ChipSpecSpace, config: &ExploreConfig) -> ExploreRun {
    run_search(space, config)
}

/// The full E25 run: the paper space under the seeded
/// successive-halving configuration.
pub fn e25_run() -> ExploreRun {
    run_search(&ChipSpecSpace::paper(), &ExploreConfig::paper())
}

/// The tiny pinned scenario behind the CI smoke and the golden
/// frontier fixture: exhaustive over [`ChipSpecSpace::tiny`], so the
/// optimum is the true optimum.
pub fn e25_tiny_run() -> ExploreRun {
    let space = ChipSpecSpace::tiny();
    run_search(&space, &ExploreConfig::exhaustive(space.len()))
}

fn verdict_label(v: Verdict) -> &'static str {
    match v {
        Verdict::Rediscovered => "rediscovered the shipped design point",
        Verdict::Dominates => "Pareto-dominates the shipped design point",
        Verdict::FellShort => "FELL SHORT of the shipped design point",
    }
}

/// Renders an explore run as the E25 report tables (frontier,
/// best-vs-paper with verdict, per-generation telemetry) — shared by
/// the registry entries and the `reproduce --explore` CLI mode.
pub fn report_tables(run: &ExploreRun, id: &'static str) -> ExperimentReport {
    let mut frontier = Table::new(
        "discovered Pareto frontier (Perf/TCO × Perf/Watt)",
        "§3.6/Fig. 4: the design levers the paper tuned by hand, searched; \
         every surviving point is a real trade-off, everything dominated \
         was pruned",
        &["design point", "perf", "perf/TCO", "perf/W"],
    );
    for p in &run.outcome.frontier {
        frontier.row(&[
            p.design.label(),
            pct(p.score.perf),
            pct(p.score.perf_per_tco),
            pct(p.score.perf_per_watt),
        ]);
    }

    let mut best = Table::new(
        "best discovered vs the paper's hand-picked spec",
        "the acceptance bar: a cold-start search must rediscover (or \
         dominate) the point the paper reached through co-design \
         iterations",
        &[
            "design point",
            "module cost",
            "typical W",
            "perf/TCO",
            "perf/W",
        ],
    );
    let paper = DesignPoint::paper();
    best.row(&[
        format!("paper: {}", paper.label()),
        fx(explore::module_cost(&paper), 2),
        fx(explore::typical_power(&paper).as_f64(), 1),
        pct(run.paper_score.perf_per_tco),
        pct(run.paper_score.perf_per_watt),
    ]);
    let b = &run.outcome.best;
    best.row(&[
        format!("search: {}", b.design.label()),
        fx(explore::module_cost(&b.design), 2),
        fx(explore::typical_power(&b.design).as_f64(), 1),
        pct(b.score.perf_per_tco),
        pct(b.score.perf_per_watt),
    ]);
    best.row(&[
        "verdict".to_string(),
        String::new(),
        String::new(),
        String::new(),
        verdict_label(run.verdict).to_string(),
    ]);

    let mut gens = Table::new(
        "per-generation search telemetry",
        "seeded successive halving: each generation evaluates survivor \
         neighborhoods plus immigrants; the memo hit rate is the \
         engine's own (deterministic) evaluation cache",
        &[
            "gen",
            "requested",
            "evaluated",
            "memo hits",
            "infeasible",
            "dominated",
            "frontier",
            "best perf/TCO",
        ],
    );
    for g in &run.outcome.generations {
        gens.row(&[
            format!("{}", g.generation),
            format!("{}", g.requested),
            format!("{}", g.evaluated),
            format!("{}", g.cache_hits),
            format!("{}", g.infeasible),
            format!("{}", g.dominated),
            format!("{}", g.frontier_size),
            pct(g.best_perf_per_tco),
        ]);
    }
    gens.row(&[
        "total".to_string(),
        format!(
            "{}",
            run.outcome
                .generations
                .iter()
                .map(|g| g.requested)
                .sum::<usize>()
        ),
        format!("{}", run.outcome.evaluated.len() + run.outcome.infeasible),
        format!("hit rate {}", pct(run.outcome.cache_hit_rate())),
        format!("{}", run.outcome.infeasible),
        String::new(),
        format!("{}", run.outcome.frontier.len()),
        pct(run.outcome.best.score.perf_per_tco),
    ]);

    ExperimentReport {
        id,
        tables: vec![frontier, best, gens],
    }
}

/// E25: the full paper-space search.
pub fn e25_explore() -> ExperimentReport {
    report_tables(&e25_run(), "E25")
}

/// The quick-subset rung: the tiny exhaustive scenario (8 candidates ×
/// 3 models), fast enough for the tier-1 determinism gate.
pub fn e25_rung() -> ExperimentReport {
    report_tables(&e25_tiny_run(), "E25 (tiny rung)")
}

/// Canonical line-oriented rendering of an outcome for golden-fixture
/// diffs: one `point` line per frontier member plus `best`/`telemetry`
/// trailers, every float printed with fixed precision.
pub fn canonical_frontier(run: &ExploreRun) -> String {
    let mut out = String::new();
    for p in &run.outcome.frontier {
        out.push_str(&format!(
            "point {} perf={:.6} perf_tco={:.6} perf_w={:.6}\n",
            p.design.label(),
            p.score.perf,
            p.score.perf_per_tco,
            p.score.perf_per_watt
        ));
    }
    out.push_str(&format!(
        "best {} perf_tco={:.6}\n",
        run.outcome.best.design.label(),
        run.outcome.best.score.perf_per_tco
    ));
    out.push_str(&format!(
        "paper perf_tco={:.6} verdict={}\n",
        run.paper_score.perf_per_tco,
        match run.verdict {
            Verdict::Rediscovered => "rediscovered",
            Verdict::Dominates => "dominates",
            Verdict::FellShort => "fell-short",
        }
    ));
    out.push_str(&format!(
        "telemetry evaluated={} infeasible={} hit_rate={:.4}\n",
        run.outcome.evaluated.len(),
        run.outcome.infeasible,
        run.outcome.cache_hit_rate()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_space_optimum_is_the_paper_point() {
        let run = e25_tiny_run();
        assert_eq!(run.verdict, Verdict::Rediscovered);
        assert_eq!(run.outcome.best.design, DesignPoint::paper());
        // Exhaustive: every candidate evaluated, none cached.
        assert_eq!(
            run.outcome.evaluated.len() + run.outcome.infeasible,
            ChipSpecSpace::tiny().len()
        );
    }

    #[test]
    fn paper_point_score_matches_the_calibrated_tco_band() {
        let cases = model_cases();
        let s = score(&cases, &DesignPoint::paper()).unwrap();
        // The E18a subset leans high-complexity, so its mean sits near
        // (not exactly on) the nine-model Fig. 6 headline band.
        assert!(
            s.perf_per_tco > 1.3 && s.perf_per_tco < 2.6,
            "perf/TCO {}",
            s.perf_per_tco
        );
        assert!(s.perf_per_watt > 0.7, "perf/W {}", s.perf_per_watt);
    }

    #[test]
    fn candidate_server_cost_matches_calibration_at_the_paper_point() {
        let c = candidate_server_cost(&DesignPoint::paper());
        let shipped = ServerCost::mtia_server();
        assert!((c.capex.as_f64() - shipped.capex.as_f64()).abs() < 1e-9);
        assert!((c.power.as_f64() - shipped.power.as_f64()).abs() < 1e-9);
    }
}
