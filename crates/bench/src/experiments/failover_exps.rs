//! E21: correlated fault domains and serving-cell failover (§3.4, §5.5).
//!
//! The paper's serving pod concentrates 24 accelerators behind one
//! host's PCIe fabric (§3.4), so a single host crash is a *correlated*
//! loss of 24 devices — and §5.5's production experience is that such
//! host-scoped events dominate fleet incidents. E21 measures what that
//! blast radius costs a sharded serving cell under two designs run on
//! byte-identical fault + arrival traces:
//!
//! - **naive**: topology-blind contiguous placement (which packs every
//!   replica of a shard onto the same host) with fixed primaries and
//!   cold epoch-replay restores;
//! - **domain-aware**: anti-affinity placement across hosts/racks/power
//!   domains plus the full failover machinery — standby promotion,
//!   periodic checkpoints with warm restore, and re-replication onto
//!   spare devices.
//!
//! E21b sweeps the seeded chaos-schedule suite (single host loss,
//! rolling rack loss, NIC partition at the diurnal peak) over the same
//! two arms.

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_core::SimTime;
use mtia_fleet::topology::{FleetTopology, TopologyConfig};
use mtia_serving::failover::{
    compare_failover, FailoverComparison, FailoverConfig, FailoverReport, PlacementPolicy,
};

use crate::chaos::ChaosSchedule;
use crate::{fx, ExperimentReport, Table};

/// The acceptance scenario: crash host 0 — the host that naive
/// contiguous packing concentrates the first shards on — for `repair`
/// seconds, `start` seconds into the run.
fn host0_crash(topo: &FleetTopology, seed: u64) -> ChaosSchedule {
    let mut schedule = ChaosSchedule::single_host_loss(topo, seed);
    schedule.scenario = crate::chaos::ChaosScenario::SingleHostLoss {
        host: 0,
        repair: SimTime::from_secs(20),
    };
    schedule
}

fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn secs(t: SimTime) -> String {
    format!("{:.2} s", t.as_secs_f64())
}

fn ms(t: SimTime) -> String {
    format!("{:.1} ms", t.as_secs_f64() * 1e3)
}

fn arm_row(r: &FailoverReport) -> Vec<String> {
    vec![
        format!(
            "{}{}",
            r.placement,
            if r.failover_enabled {
                " + failover"
            } else {
                ""
            }
        ),
        pct2(r.goodput()),
        format!("{}/{}", r.completed, r.offered),
        r.lost.to_string(),
        r.shed.to_string(),
        secs(r.unavailable),
        secs(r.recovery_time),
        ms(r.request_latency.p99()),
        ms(r.incident_latency.p99()),
        format!("{}p/{}r/{}x", r.promotions, r.restores, r.rereplications),
        format!("{:016x}", r.fault_fingerprint),
    ]
}

fn comparison_table(title: &str, anchor: &str, cmp: &FailoverComparison) -> Table {
    let mut t = Table::new(
        title,
        anchor,
        &[
            "arm",
            "goodput",
            "completed",
            "lost",
            "shed",
            "unavailable",
            "recovery",
            "P99",
            "incident P99",
            "promo/restore/rerepl",
            "fault trace",
        ],
    );
    t.row(&arm_row(&cmp.naive));
    t.row(&arm_row(&cmp.domain_aware));
    t
}

/// E21: the full comparison on the paper-shape 288-device pod.
pub fn e21_failover() -> ExperimentReport {
    let topo = TopologyConfig::paper_server().build();
    let seed = derive(DEFAULT_SEED, "e21");
    let config = FailoverConfig::production(8, 2, seed);

    // Acceptance scenario: both arms replay one byte-identical
    // host-0-crash trace (identical "fault trace" fingerprints).
    let schedule = host0_crash(&topo, seed);
    let cmp = compare_failover(
        &config,
        &topo,
        &schedule.plan(&topo),
        schedule.rate_per_s,
        schedule.horizon,
        schedule.warmup,
    );
    let headline = comparison_table(
        "E21: single host crash — naive vs domain-aware placement + failover",
        "§3.4: 24 accelerators share one host's PCIe fabric, so a host \
         crash is a correlated 24-device loss; §5.5: host-scoped events \
         dominate production incidents. Naive packing co-locates shard \
         replicas on the crashed host and the shard goes dark for the \
         full repair window",
        &cmp,
    );

    // Chaos suite: each seeded scenario against both arms, fanned out
    // on the pool workers — pure (schedule, arm) cells.
    let runs: Vec<(ChaosSchedule, FailoverReport, FailoverReport)> =
        mtia_core::pool::parallel_map(ChaosSchedule::aimed_suite(&topo, seed), |_, schedule| {
            let naive = schedule.run(
                &topo,
                &config.clone().without_failover(),
                PlacementPolicy::Naive,
            );
            let aware = schedule.run(&topo, &config, PlacementPolicy::DomainAware);
            (schedule, naive, aware)
        });
    let mut suite = Table::new(
        "E21b: seeded chaos-schedule suite (same trace per scenario, both arms)",
        "§5.5 blast-radius ladder: host crash, rack-wide rolling power \
         loss, NIC partition at the diurnal traffic peak — availability \
         scored as goodput, unavailable-seconds, incident-window P99, \
         and measured recovery time",
        &[
            "scenario",
            "arm",
            "goodput",
            "lost",
            "unavailable",
            "recovery",
            "incident P99",
            "device avail",
        ],
    );
    for (schedule, naive, aware) in &runs {
        for r in [naive, aware] {
            suite.row(&[
                schedule.name.to_string(),
                format!(
                    "{}{}",
                    r.placement,
                    if r.failover_enabled {
                        " + failover"
                    } else {
                        ""
                    }
                ),
                pct2(r.goodput()),
                r.lost.to_string(),
                secs(r.unavailable),
                secs(r.recovery_time),
                ms(r.incident_latency.p99()),
                pct2(r.device_availability),
            ]);
        }
    }

    ExperimentReport {
        id: "E21",
        tables: vec![headline, suite],
    }
}

/// One fast rung for `--filter quick` and the determinism gate: the
/// host-0 crash comparison on the 16-device toy tree.
pub fn e21_rung() -> ExperimentReport {
    let topo = TopologyConfig::small().build();
    let seed = derive(DEFAULT_SEED, "e21.rung");
    let config = FailoverConfig::production(4, 2, seed);
    let mut schedule = host0_crash(&topo, seed);
    schedule.rate_per_s = 80.0;
    schedule.horizon = SimTime::from_secs(30);
    let cmp = compare_failover(
        &config,
        &topo,
        &schedule.plan(&topo),
        schedule.rate_per_s,
        schedule.horizon,
        schedule.warmup,
    );
    let mut table = comparison_table(
        "E21 (quick rung): host-0 crash on the 16-device toy tree",
        "§5.5 correlated host loss, scaled down for the CI quick subset",
        &cmp,
    );
    table.row(&[
        "gain".to_string(),
        format!("+{} pp", fx(cmp.goodput_gain_pp(), 2)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if cmp.same_trace() {
            "identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    ExperimentReport {
        id: "E21q",
        tables: vec![table, crate::service_model::anchor_table()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_meets_the_acceptance_bar() {
        let topo = TopologyConfig::paper_server().build();
        let seed = derive(DEFAULT_SEED, "e21");
        let config = FailoverConfig::production(8, 2, seed);
        let schedule = host0_crash(&topo, seed);
        let cmp = compare_failover(
            &config,
            &topo,
            &schedule.plan(&topo),
            schedule.rate_per_s,
            schedule.horizon,
            schedule.warmup,
        );
        assert!(cmp.same_trace(), "both arms must replay one trace");
        assert!(
            cmp.domain_aware.goodput() >= 0.99,
            "domain-aware goodput {} under a single host crash",
            cmp.domain_aware.goodput()
        );
        assert!(
            cmp.naive.lost > 0 && cmp.naive.unavailable > SimTime::ZERO,
            "naive packing must lose shard availability"
        );
        assert!(cmp.goodput_gain_pp() > 0.0);
        assert!(
            cmp.domain_aware.recovery_time < cmp.naive.recovery_time,
            "promotion must beat waiting out the host reboot"
        );
        assert_eq!(cmp.naive.unaccounted(), 0);
        assert_eq!(cmp.domain_aware.unaccounted(), 0);
    }

    #[test]
    fn e21_rung_is_deterministic() {
        let a = format!("{}", e21_rung());
        let b = format!("{}", e21_rung());
        assert_eq!(a, b);
        assert!(a.contains("identical"), "arms must share the fault trace");
    }
}
