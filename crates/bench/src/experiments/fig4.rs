//! Figure 4 / §6: the case-study optimization trajectory — Perf/TCO from
//! an initial ~50 % of the GPU baseline to a final ~180 %, while the model
//! itself grew from 140 to 940 MFLOPS/sample.

use mtia_compiler::CompilerOptions;
use mtia_core::spec::chips;
use mtia_model::models::zoo;
use mtia_sim::chip::ChipSim;

use crate::platform::{compare_model_staged, ModelComparison, ServingFactors};
use crate::{pct, ExperimentReport, Table};

/// One stage of the eight-month journey.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage label.
    pub label: &'static str,
    /// Which §6 levers are active.
    pub options: CompilerOptions,
    /// Serving-level tuning state.
    pub serving: ServingFactors,
    /// Whether the model is the evolved 940 MFLOPS/sample version (with
    /// the SRAM-friendly DHEN-layer change) or the initial 140.
    pub evolved_model: bool,
    /// Chip frequency: the study began before the §5.2 overclock landed.
    pub overclocked: bool,
    /// Whether the kernels use the §3.3 multi-context/auto-increment
    /// custom instructions. The *initial* kernel implementations did not
    /// ("bottlenecked by the custom-instruction issue rate").
    pub issue_enhanced_kernels: bool,
    /// MTIA-side batch snapshot; `None` = the tuned shipped batch. The
    /// initial port ran the GPU-oriented small batch.
    pub batch: Option<u64>,
}

/// The staged trajectory. Each stage adds the §6 optimizations in the
/// order the paper describes.
pub fn stages() -> Vec<Stage> {
    let none = CompilerOptions::none();
    let fusions_only = CompilerOptions {
        vertical_fusion: true,
        sibling_transpose_fc: true,
        layernorm_batching: true,
        mha_rewrite: true,
        ..CompilerOptions::none()
    };
    let fusions_and_kernels = CompilerOptions {
        tuned_kernels: true,
        memory_aware_scheduling: true,
        ..fusions_only
    };
    vec![
        Stage {
            label: "initial port (out-of-the-box, issue-bound kernels, batch 128)",
            options: none,
            serving: ServingFactors::untuned(),
            evolved_model: false,
            overclocked: false,
            issue_enhanced_kernels: false,
            batch: Some(128),
        },
        Stage {
            label: "+ graph fusions (sibling-transpose FC, LN batching, MHA rewrite)",
            options: fusions_only,
            serving: ServingFactors::untuned(),
            evolved_model: false,
            overclocked: false,
            issue_enhanced_kernels: false,
            batch: Some(128),
        },
        Stage {
            label: "+ multi-context kernels, tuned variants, batch snapshots",
            options: fusions_and_kernels,
            serving: ServingFactors::untuned(),
            evolved_model: false,
            overclocked: false,
            issue_enhanced_kernels: true,
            batch: None,
        },
        Stage {
            label: "model evolved to 940 MF/sample (SRAM-friendly DHEN layers)",
            options: CompilerOptions::all(),
            serving: ServingFactors::untuned(),
            evolved_model: true,
            overclocked: false,
            issue_enhanced_kernels: true,
            batch: None,
        },
        Stage {
            label: "+ coalescing autotuned (>95% fill) & IBB deferral",
            options: CompilerOptions::all(),
            serving: ServingFactors {
                batch_fill: 0.97,
                scheduling: 0.85,
            },
            evolved_model: true,
            overclocked: false,
            issue_enhanced_kernels: true,
            batch: None,
        },
        Stage {
            label: "+ TBE consolidation & 1.35 GHz overclock (launch config)",
            options: CompilerOptions::all(),
            serving: ServingFactors::tuned(),
            evolved_model: true,
            overclocked: true,
            issue_enhanced_kernels: true,
            batch: None,
        },
    ]
}

/// Evaluates one stage.
pub fn evaluate_stage(stage: &Stage) -> ModelComparison {
    let model = if stage.evolved_model {
        zoo::fig6_models()
            .into_iter()
            .find(|m| m.name == "HC3")
            .expect("HC3")
    } else {
        zoo::case_study_initial()
    };
    let mut chip = if stage.issue_enhanced_kernels {
        chips::mtia2i_128gb()
    } else {
        // The hardware has the §3.3 instruction features; the initial
        // kernels simply did not use them.
        let mut c = chips::mtia2i_without_issue_enhancements();
        c.dram.capacity = mtia_core::units::Bytes::from_gib(128);
        c
    };
    if !stage.overclocked {
        let design = chip.design_frequency;
        chip = chip.at_frequency(design);
    }
    compare_model_staged(
        &model,
        &ChipSim::new(chip),
        stage.options,
        stage.serving,
        stage.batch,
    )
}

/// Runs the full trajectory.
pub fn run() -> ExperimentReport {
    let mut t = Table::new(
        "Figure 4: continuous optimization of the case-study ranking model",
        "Perf/TCO starts near 50 % of the GPU baseline and ends at ~180 %, \
         with ~102 % Perf/Watt at launch; complexity grows 140 → 940 \
         MFLOPS/sample during the same eight months",
        &[
            "stage",
            "model MF/sample",
            "perf/TCO vs GPU",
            "perf/W vs GPU",
        ],
    );
    // Each stage recompiles and re-simulates the model independently —
    // fan the trajectory out on the pool workers.
    let staged = mtia_core::pool::parallel_map(stages(), |_, stage| {
        let c = evaluate_stage(&stage);
        (stage, c)
    });
    for (stage, c) in staged {
        let mf = if stage.evolved_model { 940 } else { 140 };
        t.row(&[
            stage.label.to_string(),
            mf.to_string(),
            pct(c.rel.perf_per_tco),
            pct(c.rel.perf_per_watt),
        ]);
    }

    // The rejected model change (§6): tripling the remote embedding
    // inputs to the merge network pushes the activation buffer out of LLS;
    // every operator then round-trips activations through LPDDR.
    let model = zoo::fig6_models()
        .into_iter()
        .find(|m| m.name == "HC3")
        .expect("HC3");
    let graph = model.graph();
    let sim = ChipSim::new(chips::mtia2i_128gb());
    let tuned = mtia_compiler::compile(&graph, CompilerOptions::all());
    let pinned = tuned.run(&sim);
    let mtia_model::models::zoo::ZooArch::Dhen(cfg) = &model.arch else {
        unreachable!("HC3 is DHEN-based")
    };
    let mut wide = cfg.clone();
    wide.embedding_dim *= 3; // 3x remote embedding inputs
    let wide_graph = wide.build();
    let wide_compiled = mtia_compiler::compile(&wide_graph, CompilerOptions::all());
    let mut spill_plan = wide_compiled.plan.clone();
    spill_plan.activation_bytes =
        Some(wide_graph.peak_activation_bytes() * 3 + mtia_core::Bytes::from_mib(300));
    let spilled = sim.run(&wide_compiled.graph, &spill_plan);
    let drop = 1.0 - spilled.throughput_samples_per_s() / pinned.throughput_samples_per_s();
    let mut rejected = Table::new(
        "Figure 4 sidebar: the rejected SRAM-unfriendly model change",
        "§6: tripling the remote embedding inputs 'caused a 90% drop in \
         throughput because the increased activation buffer size could no \
         longer be pinned in SRAM'. We measure ~50%: the kernel roofline \
         absorbs part of the spill under weight streaming, and the paper's \
         figure compounds through the serving layer",
        &[
            "configuration",
            "activations",
            "samples/s",
            "throughput drop",
        ],
    );
    rejected.row(&[
        "accepted change (extra DHEN layers, pinned)".into(),
        format!("{}", pinned.placement.activations),
        crate::fx(pinned.throughput_samples_per_s(), 0),
        "-".into(),
    ]);
    rejected.row(&[
        "rejected change (3x remote inputs, spilled)".into(),
        format!("{}", spilled.placement.activations),
        crate::fx(spilled.throughput_samples_per_s(), 0),
        pct(drop),
    ]);
    ExperimentReport {
        id: "F4",
        tables: vec![t, rejected],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> Vec<f64> {
        stages()
            .iter()
            .map(|s| evaluate_stage(s).rel.perf_per_tco)
            .collect()
    }

    #[test]
    fn trajectory_improves_within_each_model_phase() {
        // The model-evolution step (stage 2 → 3) may dip — the evolved
        // 940 MF model starts less optimized, exactly like the fresh
        // variant lines in Fig. 4. Within a model phase the trend is up.
        let points = trajectory();
        for (i, w) in points.windows(2).enumerate() {
            if i == 2 {
                continue; // the 140 → 940 MF model change
            }
            assert!(w[1] >= w[0] * 0.98, "regression at stage {i}: {points:?}");
        }
        assert!(points.last().unwrap() > points.first().unwrap());
    }

    #[test]
    fn endpoints_match_figure4() {
        let points = trajectory();
        let start = points.first().unwrap();
        let end = points.last().unwrap();
        assert!(
            (0.30..=0.70).contains(start),
            "initial perf/TCO {start} (paper: ~0.5)"
        );
        assert!(
            (1.5..=2.2).contains(end),
            "final perf/TCO {end} (paper: ~1.8)"
        );
    }

    #[test]
    fn rejected_change_drops_throughput_heavily() {
        let r = run();
        let sidebar = &r.tables[1];
        assert!(sidebar.rows[1][1].contains("dram"), "{:?}", sidebar.rows[1]);
        let drop: f64 = sidebar.rows[1][3].trim_end_matches('%').parse().unwrap();
        assert!(drop > 40.0, "spill drop only {drop}% (paper: ~90%)");
    }

    #[test]
    fn final_perf_per_watt_near_parity() {
        // §6: "+2% higher Perf/Watt" at launch.
        let last = stages().pop().map(|s| evaluate_stage(&s)).unwrap();
        assert!(
            (0.85..=1.45).contains(&last.rel.perf_per_watt),
            "launch perf/W {}",
            last.rel.perf_per_watt
        );
    }
}
