//! Figure 5 / §6: consolidating TBE instances halves the remote jobs per
//! request and lifts throughput at the P99 ≤ 100 ms SLO; measured P99
//! dropped from 99 ms to 86 ms, entirely in the merge-job wait.

use mtia_core::SimTime;
use mtia_serving::scheduler::{max_rate_under_slo, simulate_remote_merge, RemoteMergeConfig};
use mtia_serving::traffic::PoissonArrivals;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{fx, pct, ExperimentReport, Table};

/// The case-study deployment: two devices sharing remote (sparse) and
/// merge (dense) jobs. Job times follow the §6 shape — the merge network
/// dominates.
fn deployment(remote_jobs: u32) -> RemoteMergeConfig {
    RemoteMergeConfig {
        devices: 2,
        remote_jobs_per_request: remote_jobs,
        remote_total_time: SimTime::from_millis(8),
        merge_time: SimTime::from_millis(10),
        dispatch_overhead: SimTime::from_millis(1),
    }
}

/// Runs the consolidation comparison.
pub fn run() -> ExperimentReport {
    let slo = SimTime::from_millis(100);
    let horizon = SimTime::from_secs(120);
    let warmup = SimTime::from_secs(10);

    let mut t = Table::new(
        "Figure 5: consolidating TBE instances (4 → 2 remote jobs/request)",
        "\"significant improvement in throughput\"; P99 99 ms → 86 ms, the \
         13 ms all in merge-request latency; PE-grid execution time unchanged",
        &[
            "configuration",
            "max rate @ P99≤100ms (req/s)",
            "P99 @ common rate",
            "merge-wait P99",
            "utilization",
        ],
    );

    // Common high-load operating point for the latency comparison: run the
    // baseline near its SLO limit. The two SLO bisections are independent
    // (each cell reseeds its own arrival stream), so they fan out on the
    // pool workers.
    let max_rates = mtia_core::pool::parallel_map(vec![4u32, 2], |_, jobs| {
        max_rate_under_slo(deployment(jobs), slo, horizon, 7).0
    });
    let rate4 = max_rates[0];
    let common_rate = rate4 * 0.98;
    let results: Vec<(f64, _)> = mtia_core::pool::parallel_map(vec![4u32, 2], |i, jobs| {
        let config = deployment(jobs);
        let mut arrivals = PoissonArrivals::new(common_rate, StdRng::seed_from_u64(21));
        let stats = simulate_remote_merge(config, &mut arrivals, horizon, warmup);
        (max_rates[i], stats)
    });
    for (jobs, (max_rate, stats)) in [4u32, 2].iter().zip(&results) {
        t.row(&[
            format!("{jobs} remote jobs/request"),
            fx(*max_rate, 1),
            format!("{}", stats.request_latency.p99()),
            format!("{}", stats.merge_wait.p99()),
            pct(stats.utilization),
        ]);
    }

    // The figure's series: P99 vs offered rate for both configurations.
    let mut series = Table::new(
        "Figure 5 series: P99 latency vs offered load",
        "the consolidated configuration holds the SLO to a higher rate; the \
         curves diverge as the merge queue saturates",
        &["rate (req/s)", "P99 (4 remote jobs)", "P99 (2 remote jobs)"],
    );
    // 5 rates × 2 configurations = 10 independent (config, seed) cells.
    let fracs = [0.5, 0.7, 0.85, 0.95, 1.05];
    let cells: Vec<(f64, u32)> = fracs
        .iter()
        .flat_map(|&frac| [(frac, 4u32), (frac, 2u32)])
        .collect();
    let p99s = mtia_core::pool::parallel_map(cells, |_, (frac, jobs)| {
        let mut arrivals = PoissonArrivals::new(rate4 * frac, StdRng::seed_from_u64(23));
        simulate_remote_merge(deployment(jobs), &mut arrivals, horizon, warmup)
            .request_latency
            .p99()
    });
    for (i, frac) in fracs.iter().enumerate() {
        series.row(&[
            format!("{:.0}", rate4 * frac),
            format!("{}", p99s[2 * i]),
            format!("{}", p99s[2 * i + 1]),
        ]);
    }

    let mut summary = Table::new(
        "Figure 5 summary",
        "consolidation raises throughput at the SLO and cuts P99",
        &["metric", "value"],
    );
    let tput_gain = results[1].0 / results[0].0 - 1.0;
    let p99_before = results[0].1.request_latency.p99();
    let p99_after = results[1].1.request_latency.p99();
    summary.row(&["throughput gain @ SLO".into(), pct(tput_gain)]);
    summary.row(&["P99 before".into(), format!("{p99_before}")]);
    summary.row(&["P99 after".into(), format!("{p99_after}")]);
    summary.row(&[
        "P99 reduction".into(),
        format!("{}", p99_before.saturating_sub(p99_after)),
    ]);

    ExperimentReport {
        id: "F5",
        // The anchor ties the DES's fixed job times back to the chip-level
        // roofline model — and routes fig5 (the quick subset's biggest
        // entry) through the kernel-cost cache.
        tables: vec![t, series, summary, crate::service_model::anchor_table()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_improves_both_metrics() {
        let r = run();
        let rows = &r.tables[0].rows;
        let rate4: f64 = rows[0][1].parse().unwrap();
        let rate2: f64 = rows[1][1].parse().unwrap();
        assert!(rate2 > rate4, "throughput must improve: {rate4} → {rate2}");
        // P99 at the common rate drops by double-digit milliseconds.
        let parse_ms = |s: &str| -> f64 { s.trim_end_matches(" ms").parse().unwrap() };
        let p99_4 = parse_ms(&rows[0][2]);
        let p99_2 = parse_ms(&rows[1][2]);
        assert!(
            p99_4 - p99_2 >= 5.0,
            "P99 reduction too small: {p99_4} → {p99_2}"
        );
    }

    #[test]
    fn consolidated_curve_dominates_everywhere() {
        let r = run();
        let series = &r.tables[1];
        let ms = |s: &str| -> f64 { s.trim_end_matches(" ms").parse().unwrap() };
        for row in &series.rows {
            assert!(
                ms(&row[2]) <= ms(&row[1]) * 1.05,
                "consolidated must not lose at {} req/s: {} vs {}",
                row[0],
                row[2],
                row[1]
            );
        }
    }

    #[test]
    fn baseline_operates_near_the_100ms_slo() {
        // The paper's baseline sat at P99 ≈ 99 ms against a 100 ms SLO.
        let r = run();
        let p99: f64 = r.tables[0].rows[0][2]
            .trim_end_matches(" ms")
            .parse()
            .unwrap();
        assert!((80.0..=105.0).contains(&p99), "baseline P99 {p99} ms");
    }
}
