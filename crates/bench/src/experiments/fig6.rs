//! Figure 6: Perf/Watt and Perf/TCO of nine production models vs GPUs.

use mtia_model::models::zoo;

use crate::platform::compare_model;
use crate::{fx, pct, ExperimentReport, Table};

/// Runs the nine-model sweep.
pub fn run() -> ExperimentReport {
    let mut t = Table::new(
        "Figure 6: complexity and efficiency of nine production models",
        "LC 15–105 MFLOPS/sample, HC 480–1000; Perf/TCO above GPU across the \
         board (avg ≈ 180 % ↔ 44 % TCO reduction); Perf/Watt modestly above; \
         lowest efficiency on HC2/HC4; each model runs on one or two \
         accelerators",
        &[
            "model",
            "MFLOPS/sample",
            "batch",
            "devices",
            "perf vs GPU",
            "perf/TCO vs GPU",
            "perf/W vs GPU",
        ],
    );

    // Nine independent compile+simulate cells — one pool task per model.
    let compared = mtia_core::pool::parallel_map(zoo::fig6_models(), |_, m| {
        let c = compare_model(&m);
        (m, c)
    });
    let mut tco_rels = Vec::new();
    let mut watt_rels = Vec::new();
    for (m, c) in compared {
        tco_rels.push(c.rel.perf_per_tco);
        watt_rels.push(c.rel.perf_per_watt);
        t.row(&[
            m.name.clone(),
            fx(m.mflops_per_sample(), 0),
            m.batch.to_string(),
            c.mtia_devices_per_replica.to_string(),
            pct(c.rel.perf),
            pct(c.rel.perf_per_tco),
            pct(c.rel.perf_per_watt),
        ]);
    }
    let avg_tco = tco_rels.iter().sum::<f64>() / tco_rels.len() as f64;
    let avg_watt = watt_rels.iter().sum::<f64>() / watt_rels.len() as f64;
    let mut summary = Table::new(
        "Figure 6 summary",
        "§1: \"MTIA 2i reduces the TCO by an average of 44% compared to GPUs\"",
        &["metric", "value"],
    );
    summary.row(&["mean perf/TCO vs GPU".into(), pct(avg_tco)]);
    summary.row(&["equivalent TCO reduction".into(), pct(1.0 - 1.0 / avg_tco)]);
    summary.row(&["mean perf/W vs GPU".into(), pct(avg_watt)]);

    ExperimentReport {
        id: "F6",
        tables: vec![t, summary],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_tco_reduction_near_44_percent() {
        let r = run();
        let summary = &r.tables[1];
        let reduction: f64 = summary.rows[1][1].trim_end_matches('%').parse().unwrap();
        assert!(
            (36.0..=52.0).contains(&reduction),
            "TCO reduction {reduction}% (paper: 44%)"
        );
    }

    #[test]
    fn perf_per_tco_beats_perf_per_watt() {
        // §7: "it is easier to outperform GPUs in Perf/TCO than in
        // Perf/Watt".
        let r = run();
        for row in &r.tables[0].rows {
            let tco: f64 = row[5].trim_end_matches('%').parse().unwrap();
            let watt: f64 = row[6].trim_end_matches('%').parse().unwrap();
            assert!(tco > watt, "{}: tco {tco} ≤ watt {watt}", row[0]);
        }
    }

    #[test]
    fn every_model_wins_on_tco() {
        let r = run();
        for row in &r.tables[0].rows {
            let tco: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(tco > 100.0, "{} loses on TCO: {tco}%", row[0]);
        }
    }
}
