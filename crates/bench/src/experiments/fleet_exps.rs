//! Fleet experiments: ECC (E9, §5.1), overclocking (E10, §5.2), power
//! provisioning (E11, §5.3), chip sizing (E12, §5.4), firmware (E13, §5.5).

use mtia_core::power::PowerModel;
use mtia_core::spec::chips;
use mtia_fleet::chipsize::{production_gain_over_replay, sample_portfolio};
use mtia_fleet::firmware::{cadence, simulate_rollout_replicas, FirmwareBundle, Rollout};
use mtia_fleet::memerr::{
    decision_bandwidth_cost, ecc_keeps_tco_advantage, evaluate_mitigations, production_decision,
    run_sensitivity, run_survey,
};
use mtia_fleet::overclock::{paper_frequencies, run_study, SiliconMargin};
use mtia_fleet::power::{capping_probability, initial_rack_budget, PowerStudy, RackConfig};
use mtia_model::models::zoo;
use mtia_sim::chip::ChipSim;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::platform::compare_model;
use crate::{fx, pct, ExperimentReport, Table};

/// E9: the memory-error study and the ECC decision.
pub fn e9_ecc_study() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(91);
    let survey = run_survey(1700, &mut rng);
    let mut t = Table::new(
        "E9: fleet memory-error survey (1,700 servers × 24 cards)",
        "§5.1: \"24% exhibited ECC errors, typically on a single MTIA card \
         per server\"",
        &["metric", "value"],
    );
    t.row(&["servers sampled".into(), survey.servers.to_string()]);
    t.row(&["servers with errors".into(), pct(survey.affected_rate)]);
    t.row(&[
        "of those, single-card".into(),
        pct(survey.single_card_fraction),
    ]);

    let sensitivity = run_sensitivity(400, &mut rng);
    let mut s = Table::new(
        "E9b: error-injection sensitivity by memory region",
        "§5.1: flips in TBE indices, TBE rows, or FP weight exponents \
         \"can cause NaNs or output corruptions, with some failures \
         occurring with high probability\"",
        &["region", "failure rate per flip"],
    );
    for (region, rate) in &sensitivity.regions {
        s.row(&[format!("{region:?}"), pct(*rate)]);
    }

    let outcomes = evaluate_mitigations(survey, &sensitivity);
    let mut m = Table::new(
        "E9c: mitigation trade-offs",
        "§5.1: region ECC \"a difficult trade-off\"; software hashing \
         \"overhead too high\"; product teams cannot absorb the volume → \
         enable controller ECC (10–15 % throughput)",
        &[
            "mitigation",
            "throughput factor",
            "residual errors/day/1k cards",
            "viable",
        ],
    );
    for o in &outcomes {
        m.row(&[
            format!("{:?}", o.mitigation),
            fx(o.throughput_factor, 2),
            fx(o.residual_errors_per_day, 2),
            if o.viable { "yes" } else { "no" }.to_string(),
        ]);
    }

    let decision = production_decision(&outcomes);
    let sim = ChipSim::new(chips::mtia2i());
    let hc3 = zoo::fig6_models()
        .into_iter()
        .find(|mm| mm.name == "HC3")
        .unwrap();
    let c = compare_model(&hc3);
    let mut d = Table::new(
        "E9d: the decision and its cost",
        "§5.1: \"even with this penalty, MTIA 2i still delivers significant \
         Perf/TCO gains over GPUs. All reported numbers ... already account \
         for this penalty\"",
        &["item", "value"],
    );
    d.row(&["decision".into(), format!("{decision:?}")]);
    d.row(&["bandwidth cost".into(), pct(decision_bandwidth_cost())]);
    d.row(&[
        "HC3 perf/TCO vs GPU with ECC on".into(),
        pct(c.rel.perf_per_tco),
    ]);
    d.row(&[
        "TCO advantage survives".into(),
        ecc_keeps_tco_advantage(c.rel.perf).to_string(),
    ]);
    let _ = sim;
    ExperimentReport {
        id: "E9",
        tables: vec![t, s, m, d],
    }
}

/// E10: the 3,000-chip overclocking study plus end-to-end gains.
pub fn e10_overclocking() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(92);
    let study = run_study(
        SiliconMargin::production(),
        3000,
        &paper_frequencies(),
        &mut rng,
    );
    let mut t = Table::new(
        "E10: overclocking qualification (3,000 chips × 10 tests)",
        "§5.2: \"negligible decreases in the test pass rate as the \
         frequency increased from 1.1GHz to 1.35GHz\"",
        &["frequency", "test pass rate", "chips passing all 10"],
    );
    for r in &study.results {
        t.row(&[
            format!("{}", r.frequency),
            format!("{:.2}%", r.pass_rate * 100.0),
            format!("{:.2}%", r.chips_fully_passing * 100.0),
        ]);
    }

    // End-to-end throughput deltas on production models.
    let deployed = ChipSim::new(chips::mtia2i());
    let design = ChipSim::new(chips::mtia2i_design_freq());
    let mut e = Table::new(
        "E10b: end-to-end throughput at 1.35 vs 1.1 GHz",
        "§5.2: \"throughput improvements ranging between 5% and 20% in \
         offline replayer tests\"",
        &["model", "gain"],
    );
    // Two full model simulations per row, all independent — one pool
    // task per model.
    let gains = mtia_core::pool::parallel_map(zoo::fig6_models(), |_, m| {
        let g = m.graph();
        let fast = deployed.run_optimized(&g).throughput_samples_per_s();
        let slow = design.run_optimized(&g).throughput_samples_per_s();
        (m.name, fast / slow - 1.0)
    });
    for (name, gain) in gains {
        e.row(&[name, pct(gain)]);
    }
    ExperimentReport {
        id: "E10",
        tables: vec![t, e],
    }
}

/// E11: the provisioned-power study.
pub fn e11_power_budget() -> ExperimentReport {
    let rack = RackConfig::production();
    let power = PowerModel::mtia2i();
    let peak_util = 0.45;
    let mut rng = StdRng::seed_from_u64(93);
    let study = PowerStudy::run(&rack, &power, peak_util, &mut rng);
    let initial = initial_rack_budget(&rack, &power);
    let new = study.new_rack_budget(&rack);
    let p_cap = capping_probability(&rack, &power, peak_util, new, 5000, &mut rng);

    let mut t = Table::new(
        "E11: rack power budget via the P90 methodology",
        "§5.3: \"we reduced the rack power budget by nearly 40% compared to \
         initial estimates\" and the reduced budget \"has proven robust in \
         production\"",
        &["quantity", "value"],
    );
    t.row(&["initial rack budget".into(), format!("{initial}")]);
    t.row(&[
        "experiment: all-24 @ P90 of top-2-model peak".into(),
        format!("{}", study.experiment_server_power),
    ]);
    t.row(&[
        "analysis: P90 of busy production servers".into(),
        format!("{}", study.analysis_server_power),
    ]);
    t.row(&[
        "new rack budget (max of the two × 4 servers)".into(),
        format!("{new}"),
    ]);
    t.row(&[
        "budget reduction".into(),
        pct(1.0 - new.as_f64() / initial.as_f64()),
    ]);
    t.row(&["capping probability at new budget".into(), pct(p_cap)]);
    ExperimentReport {
        id: "E11",
        tables: vec![t],
    }
}

/// E12: small-vs-big chips under production load.
pub fn e12_chip_size() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(94);
    let mut t = Table::new(
        "E12: production efficiency gain of small chips over big chips",
        "§5.4: \"an additional gain of 5% to 90% in Perf/TCO and Perf/Watt \
         in production compared to offline traffic replay\" — finer \
         allocation granularity + peak buffering favour 24 small chips",
        &[
            "portfolio",
            "small-chip utilization",
            "big-chip utilization",
            "production gain",
        ],
    );
    // Portfolio sampling draws from one sequential RNG stream, so it
    // stays serial; the per-portfolio provisioning below is pure and
    // fans out on the pool workers.
    let mut portfolios: Vec<(String, Vec<mtia_fleet::ModelDemand>)> = (0..4)
        .map(|i| {
            (
                format!("mixed portfolio {}", i + 1),
                sample_portfolio(40, &mut rng),
            )
        })
        .collect();
    // The band's edges: a fleet of sub-device models (big chips strand the
    // most capacity) and a fleet of very large models (both options
    // amortize).
    portfolios.push((
        "small-model-heavy fleet".into(),
        (0..30)
            .map(|i| mtia_fleet::ModelDemand {
                peak: 0.4 + 0.06 * i as f64,
                avg_to_peak: 0.6,
            })
            .collect(),
    ));
    portfolios.push((
        "large-model-heavy fleet".into(),
        (0..10)
            .map(|i| mtia_fleet::ModelDemand {
                peak: 60.0 + 12.0 * i as f64,
                avg_to_peak: 0.6,
            })
            .collect(),
    ));
    let rows = mtia_core::pool::parallel_map(portfolios, |_, (label, portfolio)| {
        let small = mtia_fleet::provision(mtia_fleet::DeviceOption::small_chip(), &portfolio);
        let big = mtia_fleet::provision(mtia_fleet::DeviceOption::big_chip(), &portfolio);
        let gain = production_gain_over_replay(&portfolio);
        (label, small.utilization, big.utilization, gain)
    });
    let mut gains = Vec::new();
    for (label, small_util, big_util, gain) in rows {
        gains.push(gain);
        t.row(&[
            label,
            pct(small_util),
            pct(big_util),
            format!("+{}", pct(gain)),
        ]);
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    t.row(&[
        "mean".into(),
        "-".into(),
        "-".into(),
        format!("+{}", pct(mean)),
    ]);
    ExperimentReport {
        id: "E12",
        tables: vec![t],
    }
}

/// E13: the NoC deadlock and the firmware rollout machinery.
pub fn e13_firmware() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(95);
    let original = FirmwareBundle::original();
    let mitigated = FirmwareBundle::mitigated();

    let stress_rate = |b: &FirmwareBundle, rng: &mut StdRng| {
        let n = 20_000;
        (0..n).filter(|_| b.stress_run_hangs(rng)).count() as f64 / n as f64
    };
    let mut t = Table::new(
        "E13: the Control-Core/NoC/PCIe deadlock and its firmware fix",
        "§5.5: ~1% of servers under stress lost PCIe connectivity; ~0.1% in \
         production; mitigation relocated Control-Core memory from host to \
         device SRAM, breaking the wait-for cycle",
        &["bundle", "deadlock cycle possible", "stress-test hang rate"],
    );
    for b in [&original, &mitigated] {
        t.row(&[
            b.version.clone(),
            mtia_sim::noc::deadlock::deadlock_possible(b.deadlock_config_under_load()).to_string(),
            pct(stress_rate(b, &mut rng)),
        ]);
    }

    let mut r = Table::new(
        "E13b: rollout machinery",
        "§5.5: standard rollouts take 18 days; emergencies 3 h (1 h with \
         overrides); 23 bundles shipped in 2024 vs 1–2 GPU firmware updates",
        &["rollout", "duration", "stages"],
    );
    for (name, rollout) in [
        ("standard", Rollout::standard()),
        ("emergency", Rollout::emergency()),
        ("extreme", Rollout::extreme()),
    ] {
        let days = rollout.duration().as_secs_f64() / 86_400.0;
        let dur = if days >= 1.0 {
            format!("{days:.0} days")
        } else {
            format!("{:.0} h", days * 24.0)
        };
        r.row(&[name.to_string(), dur, rollout.stages.len().to_string()]);
    }
    r.row(&[
        "bundles shipped 2024".into(),
        cadence::RELEASES_2024.to_string(),
        format!("vs {} for GPUs", cadence::GPU_RELEASES_PER_YEAR),
    ]);

    // Staged rollout catches the 0.1 % defect before full fleet. The 30
    // trials run as parallel replicas, each on its own derived RNG
    // stream, so the count is thread-count invariant.
    let caught_early = simulate_rollout_replicas(&Rollout::standard(), &original, 50_000, 95, 30)
        .iter()
        .filter(|o| o.detected_at_stage.map(|s| s < 3).unwrap_or(false))
        .count();
    let mut c = Table::new(
        "E13c: staged rollout containment (30 trials, 50k-server fleet)",
        "§5.5: \"This incremental approach helps identify subtle issues, \
         such as the 0.1% server impact noted earlier\"",
        &["metric", "value"],
    );
    c.row(&[
        "defect caught before full-fleet stage".into(),
        format!("{caught_early}/30"),
    ]);

    // A simulated year of the continuous-deployment pipeline.
    let year = mtia_fleet::cd::simulate_year(mtia_fleet::cd::CdConfig::production(), &mut rng);
    let mut y = Table::new(
        "E13d: one simulated year of the firmware CD pipeline",
        "§5.5: 3 builds/day, pre-production stress testing, 23 fleet-wide \
         releases in 2024 vs 1-2 firmware updates for third-party GPUs",
        &["metric", "value"],
    );
    y.row(&["builds produced".into(), year.builds.to_string()]);
    y.row(&[
        "rejected by stress testing".into(),
        year.rejected_by_stress.to_string(),
    ]);
    y.row(&["fleet-wide releases".into(), year.releases.to_string()]);
    y.row(&["escaped defects".into(), year.escaped_defects.to_string()]);
    y.row(&["containment rate".into(), pct(year.containment_rate())]);
    ExperimentReport {
        id: "E13",
        tables: vec![t, r, c, y],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(s: &str) -> f64 {
        s.trim_start_matches('+')
            .trim_end_matches('%')
            .parse()
            .unwrap()
    }

    #[test]
    fn e9_survey_and_decision() {
        let r = e9_ecc_study();
        let survey = &r.tables[0];
        let affected = parse_pct(&survey.rows[1][1]);
        assert!((20.0..=28.0).contains(&affected), "affected {affected}%");
        let decision = &r.tables[3];
        assert!(decision.rows[0][1].contains("ControllerEcc"));
        assert_eq!(decision.rows[3][1], "true");
    }

    #[test]
    fn e10_gains_in_5_to_20_percent_band() {
        // §5.2: 5–20 % e2e gains "for the models we evaluated". Fully
        // DRAM-bound models sit at the low edge; the mean lands in band.
        let r = e10_overclocking();
        let gains: Vec<f64> = r.tables[1]
            .rows
            .iter()
            .map(|row| parse_pct(&row[1]))
            .collect();
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!((5.0..=20.0).contains(&mean), "mean overclock gain {mean}%");
        for (row, g) in r.tables[1].rows.iter().zip(&gains) {
            assert!((0.0..=25.0).contains(g), "{}: gain {g}%", row[0]);
        }
    }

    #[test]
    fn e11_reduction_near_40_percent() {
        let r = e11_power_budget();
        let reduction = parse_pct(&r.tables[0].rows[4][1]);
        assert!((33.0..=47.0).contains(&reduction), "reduction {reduction}%");
        let capping = parse_pct(&r.tables[0].rows[5][1]);
        assert!(capping < 1.0, "capping {capping}%");
    }

    #[test]
    fn e12_mean_gain_in_band() {
        let r = e12_chip_size();
        let mean_row = r.tables[0].rows.last().unwrap();
        let mean = parse_pct(&mean_row[3]);
        assert!((5.0..=90.0).contains(&mean), "mean gain {mean}%");
    }

    #[test]
    fn e13d_year_ships_about_23_releases() {
        let r = e13_firmware();
        let y = &r.tables[3];
        let releases: u32 = y.rows[2][1].parse().unwrap();
        assert!(
            (18..=26).contains(&releases),
            "releases {releases} (paper: 23)"
        );
    }

    #[test]
    fn e13_hang_rates_and_containment() {
        let r = e13_firmware();
        let original = parse_pct(&r.tables[0].rows[0][2]);
        let mitigated = parse_pct(&r.tables[0].rows[1][2]);
        assert!(
            (0.6..=1.4).contains(&original),
            "stress hang rate {original}%"
        );
        assert_eq!(mitigated, 0.0);
        let caught: u32 = r.tables[2].rows[0][1]
            .split('/')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(caught >= 27, "caught {caught}/30");
    }
}
