//! E17: the model-complexity frontier (§3.6, §8).
//!
//! "With limited off-chip bandwidth, performance drops sharply as models
//! reach a complexity and size that exceed the SRAM capacity. We believe
//! that 2 GF/sample is unattainable" at production batch sizes: once the
//! dense weights stop fitting the LLC, every batch streams them from
//! LPDDR, so effective FLOPS saturate at the weight-streaming roofline
//! (`bandwidth × 2 × batch` FLOPs per weight byte) and per-sample latency
//! grows linearly with complexity. §8 adds the counterpoint: HSTU models
//! (>10 GF/request) stay efficient at low batch because their compute
//! intensity comes from long sequences, not from giant weight tensors.

use mtia_core::spec::{chips, EccMode};
use mtia_core::DType;
use mtia_model::models::{hstu::HstuConfig, wukong};
use mtia_sim::chip::ChipSim;

use crate::{fx, pct, ExperimentReport, Table};

/// Runs the frontier sweep.
pub fn run() -> ExperimentReport {
    let chip = chips::mtia2i_128gb();
    let sim = ChipSim::new(chip.clone());
    let peak = chip.gemm_peak(DType::Fp16, false).as_flops_per_s();
    let batch = 256u64;
    // The weight-streaming roofline: each FP16 weight byte read from LPDDR
    // yields 2 × batch/2 MACs across the batch → bandwidth × batch FLOPs/s.
    let stream_cap = chip
        .effective_dram_bw(EccMode::ControllerEcc)
        .as_bytes_per_s()
        * batch as f64;

    let mut t = Table::new(
        "E17: effective FLOPS across the complexity frontier (Wukong sweep, batch 256)",
        "§3.6: \"performance drops sharply as models reach a complexity and \
         size that exceed the SRAM capacity ... 2 GF/sample is \
         unattainable\"; beyond LLC residency, effective FLOPS pin to the \
         LPDDR weight-streaming roofline while latency grows with \
         complexity. §8: HSTU (>10 GF/request) stays efficient at low batch",
        &[
            "model",
            "GF/sample",
            "batch",
            "samples/s",
            "batch latency",
            "effective TFLOPS",
            "of FP16 peak",
            "of streaming roofline",
            "bottleneck",
        ],
    );

    // Each sweep point compiles and simulates its own graph — pure cells,
    // fanned out on the pool workers.
    let sweep = mtia_core::pool::parallel_map(wukong::scaling_sweep(batch), |_, cfg| {
        let g = cfg.build();
        let compiled = mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all());
        let r = compiled.run(&sim);
        (cfg, g, r)
    });
    for (cfg, g, r) in sweep {
        let achieved = r.achieved_flops_per_s();
        t.row(&[
            cfg.name.clone(),
            fx(g.flops_per_sample().as_gflops(), 3),
            batch.to_string(),
            fx(r.throughput_samples_per_s(), 0),
            format!("{}", r.total_time()),
            fx(achieved / 1e12, 1),
            pct(achieved / peak),
            pct(achieved / stream_cap),
            format!("{:?}", r.dominant_bottleneck().unwrap()),
        ]);
    }

    // The HSTU point: huge per-request complexity, small batch, efficient —
    // sequence length supplies the intensity instead of giant weights.
    let hstu = HstuConfig {
        name: "hstu-ranking".to_string(),
        batch: 4,
        num_tables: 8,
        rows_per_table: 100_000_000,
        embedding_dim: 512,
        mean_seq: 512,
        max_seq: 4096,
        heads: 8,
        layers: 8,
        dtype: DType::Fp16,
    };
    let g = hstu.build();
    let compiled = mtia_compiler::compile(&g, mtia_compiler::CompilerOptions::all());
    let r = compiled.run(&sim);
    let achieved = r.achieved_flops_per_s();
    t.row(&[
        "hstu (low batch)".to_string(),
        fx(g.flops_per_sample().as_gflops(), 3),
        "4".to_string(),
        fx(r.throughput_samples_per_s(), 0),
        format!("{}", r.total_time()),
        fx(achieved / 1e12, 1),
        pct(achieved / peak),
        "-".to_string(),
        format!("{:?}", r.dominant_bottleneck().unwrap()),
    ]);

    ExperimentReport {
        id: "E17",
        tables: vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        run().tables[0].rows.clone()
    }

    fn pct_of(row: &[String], col: usize) -> f64 {
        row[col].trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn big_models_pin_to_the_streaming_roofline() {
        let rows = rows();
        let biggest = &rows[rows.len() - 2]; // largest Wukong
        assert!(
            biggest[8].contains("Dram"),
            "expected DRAM-bound: {biggest:?}"
        );
        let roofline_frac = pct_of(biggest, 7);
        assert!(
            roofline_frac > 70.0,
            "largest model should approach the streaming roofline: {roofline_frac}%"
        );
        // ...which sits far below the compute peak.
        let peak_frac = pct_of(biggest, 6);
        assert!(peak_frac < 60.0, "of peak {peak_frac}%");
    }

    #[test]
    fn throughput_collapses_across_the_sweep() {
        // §3.6's "performance drops sharply": three orders of magnitude of
        // complexity cost well over two orders of magnitude of throughput.
        let rows = rows();
        let tput = |row: &Vec<String>| -> f64 { row[3].parse().unwrap() };
        let first = tput(&rows[0]);
        let last = tput(&rows[rows.len() - 2]);
        assert!(
            first / last > 50.0,
            "throughput drop only {:.1}x",
            first / last
        );
    }

    #[test]
    fn sweep_reaches_2_gflops_per_sample() {
        let rows = rows();
        let gf: f64 = rows[rows.len() - 2][1].parse().unwrap();
        assert!(gf > 1.5, "frontier must probe ~2 GF/sample, got {gf}");
    }

    #[test]
    fn hstu_outperforms_the_dense_frontier() {
        let rows = rows();
        let hstu = rows.last().unwrap();
        let hstu_gf: f64 = hstu[1].parse().unwrap();
        assert!(hstu_gf > 10.0);
        let hstu_eff = pct_of(hstu, 6);
        let dense_eff = pct_of(&rows[rows.len() - 2], 6);
        assert!(
            hstu_eff > dense_eff,
            "hstu {hstu_eff}% of peak should beat the dense giant {dense_eff}%"
        );
    }
}
