//! E22: region-scale disaster tolerance with the global router (§3.4,
//! §4.1, §6).
//!
//! The paper's serving story is a *fleet* of pods carrying production
//! recommendation traffic, so the disaster that matters above E21's
//! host crash is the loss of a whole pod or region. E22 builds the
//! planetary fleet (three regions × two `paper_server()` pods — 1728
//! devices), drives it with ≥10⁶ requests of per-region diurnal traffic
//! (timezone-staggered phases plus seeded flash crowds), and replays
//! the byte-identical trace through two arms while a full region goes
//! dark at its own diurnal crest:
//!
//! - **static-local**: each region round-robins over its own pods only
//!   — the victim region's traffic black-holes for the outage window;
//! - **global-router**: probe-driven pod health, latency/capacity
//!   scoring, cross-region spillover under admission control, and the
//!   three-tier degradation ladder — the outage browns out instead.
//!
//! E22b sweeps the four-scenario region chaos suite (single pod loss,
//! rolling pod loss, region outage at peak, WAN partition) over both
//! arms on the same fleet.

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_core::SimTime;
use mtia_fleet::topology::{GlobalTopology, GlobalTopologyConfig};
use mtia_serving::global::{
    build_regional_trace, compare_global, GlobalComparison, GlobalConfig, GlobalReport,
    RegionalTrace, RegionalTrafficConfig,
};
use mtia_sim::faults::FaultPlan;

use crate::chaos::GlobalChaosSchedule;
use crate::{fx, ExperimentReport, Table};

/// The E22 headline inputs, shared between the experiment table and the
/// paper-claims acceptance test: the planetary fleet, a ≥10⁶-request
/// regional trace, and a region-0 outage pinned to region 0's diurnal
/// crest.
pub struct E22Scenario {
    /// The three-region planetary fleet.
    pub global: GlobalTopology,
    /// Per-region traffic shape behind `trace`.
    pub traffic: RegionalTrafficConfig,
    /// The byte-identical multi-region arrival trace.
    pub trace: RegionalTrace,
    /// The region-outage fault plan.
    pub plan: FaultPlan,
    /// Router/ladder configuration.
    pub config: GlobalConfig,
    /// Victim region.
    pub victim: u32,
    /// Outage window start.
    pub outage_start: SimTime,
    /// Outage window end.
    pub outage_end: SimTime,
}

impl E22Scenario {
    /// Builds the acceptance scenario. Region 0's sinusoid crests a
    /// quarter period into the run (zero phase offset), so the outage
    /// lands exactly on the victim's peak traffic.
    pub fn production() -> Self {
        let global = GlobalTopologyConfig::planetary().build();
        let seed = derive(DEFAULT_SEED, "e22");
        let horizon = SimTime::from_secs(600);
        // 600 req/s × 3 regions × 600 s ≈ 1.1M requests around a 47%
        // mean utilization of the 1728 slots — headroom for one
        // region's crest to spill into the survivors.
        let traffic = RegionalTrafficConfig::production(600.0, horizon);
        let trace = build_regional_trace(&traffic, global.region_count(), horizon, seed);
        let victim = 0u32;
        let outage_start = horizon.scale(0.25);
        let repair = SimTime::from_secs(120);
        let plan = global.correlated_event(
            FaultPlan::empty(derive(seed, "e22.plan")),
            mtia_fleet::topology::GlobalLevel::Region,
            victim,
            outage_start,
            mtia_sim::faults::FaultKind::RegionOutage,
            repair,
        );
        E22Scenario {
            global,
            traffic,
            trace,
            plan,
            config: GlobalConfig::production(seed),
            victim,
            outage_start,
            outage_end: outage_start + repair,
        }
    }

    /// Replays the trace through both arms.
    pub fn compare(&self) -> GlobalComparison {
        compare_global(
            &self.global.fleet_spec(),
            &self.config,
            &self.trace,
            &self.plan,
        )
    }

    /// Fraction of the whole trace that arrives at the victim region
    /// during the outage window — the share a static arm stands to
    /// lose.
    pub fn victim_share(&self) -> f64 {
        let during = self
            .trace
            .arrivals()
            .iter()
            .filter(|a| {
                a.region == self.victim && a.at >= self.outage_start && a.at < self.outage_end
            })
            .count();
        during as f64 / self.trace.len() as f64
    }
}

fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn secs(t: SimTime) -> String {
    format!("{:.2} s", t.as_secs_f64())
}

fn ms(t: SimTime) -> String {
    format!("{:.1} ms", t.as_secs_f64() * 1e3)
}

fn arm_row(r: &GlobalReport) -> Vec<String> {
    vec![
        r.policy.to_string(),
        pct2(r.goodput()),
        format!("{}+{}d/{}", r.served_full, r.served_degraded, r.offered),
        r.shed.to_string(),
        format!(
            "{} ({}u/{}k/{}d)",
            r.lost, r.lost_unroutable, r.lost_killed, r.lost_deadline
        ),
        r.spillover.to_string(),
        ms(r.spillover_latency.p99()),
        ms(r.request_latency.p99()),
        secs(r.recovery_time),
        pct2(r.capacity_headroom),
        format!("{:016x}/{:016x}", r.trace_fingerprint, r.fault_fingerprint),
    ]
}

fn comparison_table(title: &str, anchor: &str, cmp: &GlobalComparison) -> Table {
    let mut t = Table::new(
        title,
        anchor,
        &[
            "arm",
            "goodput",
            "served full+degraded",
            "shed",
            "lost (unroutable/killed/deadline)",
            "spillover",
            "spill P99",
            "P99",
            "recovery",
            "headroom",
            "trace/fault",
        ],
    );
    t.row(&arm_row(&cmp.naive));
    t.row(&arm_row(&cmp.router));
    t
}

/// E22: the full comparison on the 1728-device planetary fleet.
pub fn e22_global() -> ExperimentReport {
    let scenario = E22Scenario::production();
    let cmp = scenario.compare();
    let mut headline = comparison_table(
        "E22: full region outage at the victim's diurnal crest — \
         static-local vs global router (3 regions × 2 pods × 288 devices, \
         ≥10⁶ requests)",
        "§4.1/§6: a fleet of pods survives region-scale disasters by \
         routing traffic somewhere else, not by promoting standbys. The \
         victim's traffic share during the outage bounds what the static \
         arm loses; the router converts it into spillover, shed \
         low-priority work, and degraded-mode responses",
        &cmp,
    );
    headline.row(&[
        "victim share".to_string(),
        pct2(scenario.victim_share()),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if cmp.same_trace() {
            "identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);

    // E22b: the region chaos suite over both arms, fanned out on the
    // pool workers — pure (schedule, arm) cells.
    let global = GlobalTopologyConfig::planetary().build();
    let seed = derive(DEFAULT_SEED, "e22.suite");
    let runs: Vec<(GlobalChaosSchedule, GlobalComparison)> = mtia_core::pool::parallel_map(
        GlobalChaosSchedule::region_suite(&global, seed)
            .into_iter()
            .map(|mut s| {
                // Scale the smoke traffic up to planetary size while
                // keeping the suite affordable next to the headline.
                s.traffic.base_rate_per_s = 300.0;
                s
            })
            .collect(),
        |_, schedule| (schedule, schedule.compare(&global)),
    );
    let mut suite = Table::new(
        "E22b: region chaos suite (same trace per scenario, both arms)",
        "the region-scale blast-radius ladder: one pod, a region's pods \
         rolling, the whole region at its crest, and a WAN partition \
         that isolates capacity without destroying it",
        &[
            "scenario",
            "arm",
            "goodput",
            "shed",
            "lost",
            "spillover",
            "recovery",
            "headroom",
        ],
    );
    for (schedule, cmp) in &runs {
        for r in [&cmp.naive, &cmp.router] {
            suite.row(&[
                schedule.name.to_string(),
                r.policy.to_string(),
                pct2(r.goodput()),
                r.shed.to_string(),
                r.lost.to_string(),
                r.spillover.to_string(),
                secs(r.recovery_time),
                pct2(r.capacity_headroom),
            ]);
        }
    }

    ExperimentReport {
        id: "E22",
        tables: vec![headline, suite],
    }
}

/// One fast rung for `--filter quick` and the determinism gate: the
/// region-outage comparison on the 64-device toy fleet.
pub fn e22_rung() -> ExperimentReport {
    let global = GlobalTopologyConfig::global_small().build();
    let seed = derive(DEFAULT_SEED, "e22.rung");
    let schedule = GlobalChaosSchedule::region_outage_at_peak(&global, seed);
    let cmp = schedule.compare(&global);
    let mut table = comparison_table(
        "E22 (quick rung): region outage at peak on the 64-device toy fleet",
        "§4.1 region-scale disaster, scaled down for the CI quick subset",
        &cmp,
    );
    table.row(&[
        "gain".to_string(),
        format!("+{} pp", fx(cmp.goodput_gain_pp(), 2)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if cmp.same_trace() {
            "identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    ExperimentReport {
        id: "E22q",
        tables: vec![table, crate::service_model::anchor_table()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_rung_is_deterministic() {
        let a = format!("{}", e22_rung());
        let b = format!("{}", e22_rung());
        assert_eq!(a, b);
        assert!(a.contains("identical"), "arms must share the trace");
    }

    #[test]
    fn e22_rung_router_beats_naive() {
        let global = GlobalTopologyConfig::global_small().build();
        let seed = derive(DEFAULT_SEED, "e22.rung");
        let cmp = GlobalChaosSchedule::region_outage_at_peak(&global, seed).compare(&global);
        assert!(cmp.same_trace());
        assert!(cmp.goodput_gain_pp() > 0.0);
        assert_eq!(cmp.naive.unaccounted(), 0);
        assert_eq!(cmp.router.unaccounted(), 0);
    }
}
