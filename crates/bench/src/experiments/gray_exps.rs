//! E23: gray-failure resilience — fail-slow devices under the global
//! router (§4.1, §5.2, §6).
//!
//! E22 showed the router surviving fail-*stop* disasters; E23 injects
//! the harder production failure mode: devices that keep answering
//! liveness probes while serving slowly. The planetary fleet replays a
//! ≥10⁶-request regional trace three times on byte-identical arrivals:
//!
//! - **fault-free**: the health-aware router with no faults — the P99
//!   yardstick the gates are measured against;
//! - **health-check-only**: the same router while a handful of devices
//!   per pod thermally throttle at the diurnal crest (floors seeded
//!   from the silicon frequency-margin distribution), one device per
//!   region drifts progressively slower, and one NIC flaps. Liveness
//!   probes see nothing, round-robin keeps feeding the stragglers, and
//!   P99 collapses;
//! - **outlier-hedge**: the gray-resilient arm — the peer-relative
//!   latency-outlier detector demotes sustained stragglers through the
//!   ordinary health machine, and requests outstanding past the pod's
//!   quantile deadline get one hedged duplicate, with exact
//!   duplicate-work accounting.
//!
//! The storm is the [`gray_failure`] chaos preset scaled to the
//! planetary fleet, so `--chaos-smoke`, the E23 rung, and the headline
//! all exercise the same fault shapes.
//!
//! [`gray_failure`]: GlobalChaosSchedule::gray_failure

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_core::SimTime;
use mtia_fleet::topology::{GlobalTopology, GlobalTopologyConfig};
use mtia_serving::global::{
    simulate_global, GlobalConfig, GlobalReport, RegionalTrace, RoutingPolicy,
};
use mtia_sim::faults::FaultPlan;

use crate::chaos::{GlobalChaosScenario, GlobalChaosSchedule};
use crate::{fx, ExperimentReport, Table};

/// The E23 headline inputs, shared between the experiment table and the
/// paper-claims acceptance test: the planetary fleet, a ≥10⁶-request
/// regional trace, and a fail-slow storm pinned to the diurnal crest.
pub struct E23Scenario {
    /// The three-region planetary fleet.
    pub global: GlobalTopology,
    /// The fail-slow storm, as a chaos schedule (plan + traffic shape).
    pub schedule: GlobalChaosSchedule,
    /// The byte-identical multi-region arrival trace.
    pub trace: RegionalTrace,
    /// The fail-slow fault plan (both faulted arms replay this).
    pub plan: FaultPlan,
    /// The empty plan behind the fault-free yardstick arm.
    pub clean_plan: FaultPlan,
    /// Router/ladder/gray-resilience configuration.
    pub config: GlobalConfig,
}

impl E23Scenario {
    /// Builds the acceptance scenario. The throttle window opens at the
    /// quarter-period diurnal crest and holds for 300 s — long enough
    /// that the health-check-only arm's per-device queues saturate to
    /// the deadline while the storm stays a small fraction of the
    /// fleet (the "gray" in gray failure: nothing trips a liveness
    /// probe).
    pub fn production() -> Self {
        let global = GlobalTopologyConfig::planetary().build();
        let seed = derive(DEFAULT_SEED, "e23");
        let horizon = SimTime::from_secs(600);
        // Same offered load as E22: 600 req/s × 3 regions × 600 s ≈
        // 1.1M requests at ≈ 47 % mean utilization of the 1728 slots.
        let traffic = mtia_serving::global::RegionalTrafficConfig::production(600.0, horizon);
        let schedule = GlobalChaosSchedule {
            name: "gray-failure",
            scenario: GlobalChaosScenario::GrayFailure {
                throttled_per_pod: 24,
                window: SimTime::from_secs(300),
            },
            start: traffic.period.scale(0.25),
            traffic,
            horizon,
            seed,
        };
        let trace = schedule.trace(&global);
        let plan = schedule.plan(&global);
        let clean_plan = FaultPlan::empty(derive(seed, "e23.clean"));
        E23Scenario {
            global,
            schedule,
            trace,
            plan,
            clean_plan,
            config: GlobalConfig::production(seed),
        }
    }

    /// The fault-free yardstick: health-aware routing, empty plan.
    pub fn fault_free(&self) -> GlobalReport {
        simulate_global(
            &self.global.fleet_spec(),
            &self.config,
            &self.trace,
            &self.clean_plan,
            RoutingPolicy::HealthAware,
        )
    }

    /// The health-check-only arm: liveness probes and the ladder, but
    /// no latency-outlier detection and no hedging, under the storm.
    pub fn health_check_only(&self) -> GlobalReport {
        simulate_global(
            &self.global.fleet_spec(),
            &self.config,
            &self.trace,
            &self.plan,
            RoutingPolicy::HealthAware,
        )
    }

    /// The gray-resilient arm: detector + hedging, same storm, same
    /// byte-identical trace.
    pub fn resilient(&self) -> GlobalReport {
        simulate_global(
            &self.global.fleet_spec(),
            &self.config,
            &self.trace,
            &self.plan,
            RoutingPolicy::GrayResilient,
        )
    }

    /// All three arms, fanned out on the pool workers.
    pub fn arms(&self) -> [GlobalReport; 3] {
        let mut reports = mtia_core::pool::parallel_map(vec![0u8, 1, 2], |_, arm| match arm {
            0 => self.fault_free(),
            1 => self.health_check_only(),
            _ => self.resilient(),
        });
        let resilient = reports.pop().expect("three arms");
        let naive = reports.pop().expect("three arms");
        let clean = reports.pop().expect("three arms");
        [clean, naive, resilient]
    }
}

fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn ms(t: SimTime) -> String {
    format!("{:.1} ms", t.as_secs_f64() * 1e3)
}

/// P99 inflation of `r` over the fault-free yardstick.
fn p99_ratio(r: &GlobalReport, clean: &GlobalReport) -> f64 {
    let base = clean.request_latency.p99().as_secs_f64();
    if base == 0.0 {
        return 1.0;
    }
    r.request_latency.p99().as_secs_f64() / base
}

fn gray_row(arm: &str, r: &GlobalReport, clean: &GlobalReport) -> Vec<String> {
    vec![
        arm.to_string(),
        r.policy.to_string(),
        pct2(r.goodput()),
        format!(
            "{} ({}u/{}k/{}d)",
            r.lost, r.lost_unroutable, r.lost_killed, r.lost_deadline
        ),
        ms(r.request_latency.p99()),
        format!("{}x", fx(p99_ratio(r, clean), 2)),
        format!("{}/{}", r.hedges_issued, r.hedge_wins),
        format!("{}+{}", r.duplicates_suppressed, r.hedges_cancelled),
        r.outlier_demotions.to_string(),
        r.device_downs.to_string(),
        format!("{:016x}/{:016x}", r.trace_fingerprint, r.fault_fingerprint),
    ]
}

fn gray_table(title: &str, anchor: &str, clean: &GlobalReport) -> Table {
    let mut t = Table::new(
        title,
        anchor,
        &[
            "arm",
            "policy",
            "goodput",
            "lost (unroutable/killed/deadline)",
            "P99",
            "P99 vs fault-free",
            "hedges issued/won",
            "dup suppressed+cancelled",
            "demotions",
            "device downs",
            "trace/fault",
        ],
    );
    t.row(&gray_row("fault-free", clean, clean));
    t
}

/// E23: the full three-arm comparison on the 1728-device planetary
/// fleet.
pub fn e23_gray() -> ExperimentReport {
    let scenario = E23Scenario::production();
    let [clean, naive, resilient] = scenario.arms();
    let mut headline = gray_table(
        "E23: fail-slow storm at the diurnal crest — fault-free vs \
         health-check-only vs outlier-hedge (3 regions × 2 pods × 288 \
         devices, ≥10⁶ requests)",
        "§4.1/§5.2/§6: gray failures pass every liveness probe, so the \
         health-check-only router keeps round-robining into thermally \
         throttled silicon and P99 collapses; the peer-relative outlier \
         detector plus device-level hedging holds the SLO on the \
         byte-identical trace, with duplicate work accounted exactly",
        &clean,
    );
    headline.row(&gray_row("health-check-only", &naive, &clean));
    headline.row(&gray_row("outlier-hedge", &resilient, &clean));
    headline.row(&[
        "gates".to_string(),
        String::new(),
        format!("resilient {}", pct2(resilient.goodput())),
        String::new(),
        String::new(),
        format!(
            "naive {}x / resilient {}x",
            fx(p99_ratio(&naive, &clean), 2),
            fx(p99_ratio(&resilient, &clean), 2)
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if naive.trace_fingerprint == resilient.trace_fingerprint
            && naive.fault_fingerprint == resilient.fault_fingerprint
        {
            "identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    ExperimentReport {
        id: "E23",
        tables: vec![headline],
    }
}

/// One fast rung for `--filter quick` and the determinism gate: the
/// `gray_failure` chaos preset on the 64-device toy fleet, both faulted
/// arms.
pub fn e23_rung() -> ExperimentReport {
    let global = GlobalTopologyConfig::global_small().build();
    let seed = derive(DEFAULT_SEED, "e23.rung");
    let schedule = GlobalChaosSchedule::gray_failure(&global, seed);
    let naive = schedule.run(&global, RoutingPolicy::HealthAware);
    let resilient = schedule.run(&global, RoutingPolicy::GrayResilient);
    let mut table = gray_table(
        "E23 (quick rung): gray_failure preset on the 64-device toy fleet",
        "§5.2 fail-slow storm, scaled down for the CI quick subset — \
         the fault-free column doubles as the health-check-only arm's \
         yardstick here",
        &naive,
    );
    // On the rung the "yardstick" row is the naive arm itself; what the
    // gate cares about is the resilient arm's ledger on the same trace.
    table.row(&gray_row("outlier-hedge", &resilient, &naive));
    table.row(&[
        "P99 delta".to_string(),
        String::new(),
        format!(
            "{} pp",
            fx((resilient.goodput() - naive.goodput()) * 100.0, 2)
        ),
        String::new(),
        String::new(),
        format!("{}x", fx(p99_ratio(&resilient, &naive), 2)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if naive.trace_fingerprint == resilient.trace_fingerprint
            && naive.fault_fingerprint == resilient.fault_fingerprint
        {
            "identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    ExperimentReport {
        id: "E23q",
        tables: vec![table, crate::service_model::anchor_table()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_rung_is_deterministic() {
        let a = format!("{}", e23_rung());
        let b = format!("{}", e23_rung());
        assert_eq!(a, b);
        assert!(a.contains("identical"), "arms must share the trace");
    }

    #[test]
    fn e23_rung_arms_conserve_and_detector_fires() {
        let global = GlobalTopologyConfig::global_small().build();
        let seed = derive(DEFAULT_SEED, "e23.rung");
        let schedule = GlobalChaosSchedule::gray_failure(&global, seed);
        let naive = schedule.run(&global, RoutingPolicy::HealthAware);
        let resilient = schedule.run(&global, RoutingPolicy::GrayResilient);
        assert_eq!(naive.unaccounted(), 0);
        assert_eq!(resilient.unaccounted(), 0);
        // Fail-slow only: nothing ever goes down, in either arm.
        assert_eq!(naive.device_downs, 0);
        assert_eq!(resilient.device_downs, 0);
        assert_eq!(naive.lost_killed, 0);
        assert_eq!(resilient.lost_killed, 0);
        // The naive arm has no detector and issues no hedges.
        assert_eq!(naive.outlier_demotions, 0);
        assert_eq!(naive.hedges_issued, 0);
        // The resilient arm demotes at least one sustained straggler.
        assert!(
            resilient.outlier_demotions > 0,
            "detector must flag the throttled devices"
        );
    }
}
