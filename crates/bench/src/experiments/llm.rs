//! E3: the LLM suitability study (§3.6, §8).
//!
//! Llama2-7B: prefill meets the 600 ms time-to-first-token requirement but
//! decode cannot generate a token every 60 ms — LPDDR bandwidth bounds the
//! per-token weight sweep. Llama3-8B behaves the same; Llama3-70B/405B are
//! out of reach outright (capacity).

use mtia_core::spec::chips;
use mtia_core::SimTime;
use mtia_model::models::llm::LlmConfig;
use mtia_sim::chip::ChipSim;

use crate::{ExperimentReport, Table};

/// The paper's serving requirements.
pub const TTFT_SLO: SimTime = SimTime::from_millis(600);
/// Per-token decode budget.
pub const TOKEN_SLO: SimTime = SimTime::from_millis(60);

/// Evaluates prefill TTFT and per-token decode latency for one model.
pub fn evaluate(config: &LlmConfig, prompt: u64) -> (SimTime, SimTime) {
    let sim = ChipSim::new(chips::mtia2i());
    let prefill = sim
        .run_optimized(&config.prefill_graph(prompt))
        .total_time();
    let decode = sim
        .run_optimized(&config.decode_step_graph(prompt))
        .total_time();
    (prefill, decode)
}

/// Runs the study.
pub fn run() -> ExperimentReport {
    let mut t = Table::new(
        "E3: LLM serving on MTIA 2i (prompt = 512 tokens)",
        "§3.6: Llama2-7B prefill meets the 600 ms TTFT requirement; decode \
         fails the 60 ms/token requirement. §8: same for Llama3-8B; both \
         MHA and FFN are LPDDR-bandwidth-bound in decode",
        &[
            "model",
            "weights",
            "prefill TTFT",
            "TTFT ≤ 600 ms",
            "decode/token",
            "token ≤ 60 ms",
        ],
    );
    for config in [LlmConfig::llama2_7b(), LlmConfig::llama3_8b()] {
        let (prefill, decode) = evaluate(&config, 512);
        t.row(&[
            config.name.clone(),
            format!("{:.1} GiB", config.weight_bytes().as_gib()),
            format!("{prefill}"),
            if prefill <= TTFT_SLO { "yes" } else { "NO" }.to_string(),
            format!("{decode}"),
            if decode <= TOKEN_SLO { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Capacity check for the large models (§8).
    let mut cap = Table::new(
        "E3b: capacity check for large Llama models",
        "§8: \"unsuitable for running large models such as Llama3 70B or \
         405B\" — weights exceed device DRAM and there is no scale-up fabric",
        &["model", "fp16 weights", "fits 128 GB LPDDR?"],
    );
    for (name, params) in [("llama3-70b", 70.6e9_f64), ("llama3-405b", 405.0e9)] {
        let bytes = params * 2.0;
        cap.row(&[
            name.to_string(),
            format!("{:.0} GiB", bytes / (1u64 << 30) as f64),
            if bytes <= 128.0 * (1u64 << 30) as f64 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    ExperimentReport {
        id: "E3",
        tables: vec![t, cap],
    }
}

/// Bench-friendly alias.
pub fn e3_llm_roofline() -> ExperimentReport {
    run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_prefill_passes_decode_fails() {
        let (prefill, decode) = evaluate(&LlmConfig::llama2_7b(), 512);
        assert!(
            prefill <= TTFT_SLO,
            "prefill {prefill} misses the 600 ms TTFT"
        );
        assert!(
            decode > TOKEN_SLO,
            "decode {decode} should miss 60 ms/token"
        );
        // The decode floor is the weight sweep over LPDDR: > 70 ms.
        assert!(decode > SimTime::from_millis(70), "decode {decode}");
    }

    #[test]
    fn llama3_8b_decode_also_fails() {
        let (_, decode) = evaluate(&LlmConfig::llama3_8b(), 512);
        assert!(decode > TOKEN_SLO, "decode {decode}");
    }

    #[test]
    fn decode_is_bandwidth_not_compute_bound() {
        let sim = ChipSim::new(chips::mtia2i());
        let report = sim.run_optimized(&LlmConfig::llama2_7b().decode_step_graph(512));
        assert_eq!(
            report.dominant_bottleneck(),
            Some(mtia_sim::Bottleneck::Dram),
            "decode must be LPDDR-bound"
        );
    }

    #[test]
    fn large_models_fail_capacity() {
        let r = run();
        for row in &r.tables[1].rows {
            assert_eq!(row[2], "NO", "{} should not fit", row[0]);
        }
    }
}
