//! Locality experiments: SRAM hit rates across the model zoo (E6, §4.2)
//! and the fusion/scheduling gains (E15, §4.2/§6).

use mtia_compiler::CompilerOptions;
use mtia_core::spec::chips;
use mtia_model::models::zoo;
use mtia_sim::chip::ChipSim;

use crate::{pct, ExperimentReport, Table};

/// E6: dense and sparse SRAM hit rates for the nine production models.
pub fn e6_sram_hit_rates() -> ExperimentReport {
    let sim = ChipSim::new(chips::mtia2i());
    let mut t = Table::new(
        "E6: SRAM locality across the model zoo",
        "§4.2: \"caching allows us to keep 40-60% of [sparse] accesses in \
         SRAM. For dense networks, we can achieve over a 95% SRAM hit \
         rate\" (the latter for models whose weights stay LLC-resident; \
         DRAM-streaming HC models shift to saturating LPDDR instead)",
        &[
            "model",
            "TBE (sparse) hit rate",
            "dense hit rate",
            "weights LLC-resident",
            "activations",
        ],
    );
    for m in zoo::fig6_models() {
        let report = sim.run_optimized(&m.graph());
        t.row(&[
            m.name.clone(),
            pct(report.tbe_hit_rate),
            pct(report.dense_sram_hit_rate()),
            pct(report.weight_resident_fraction),
            format!("{}", report.placement.activations),
        ]);
    }
    // Cross-validation: sample a Zipf access stream into the operational
    // set-associative cache simulator and compare against the Che
    // approximation used by the chip model.
    let mut v = Table::new(
        "E6b: Che approximation vs operational LRU cache simulation",
        "the TBE hit-rate predictions rest on Che's approximation; an actual \
         set-associative LRU cache replaying sampled Zipf(0.95) accesses \
         agrees within a few points",
        &[
            "catalog rows",
            "cached rows",
            "Che analytic",
            "simulated LRU",
            "delta",
        ],
    );
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(66);
    let skew = mtia_core::calib::EMBEDDING_ZIPF_SKEW;
    for (catalog, cached) in [
        (2_000_000u64, 4_000u64),
        (2_000_000, 16_000),
        (8_000_000, 16_000),
    ] {
        let analytic = mtia_sim::mem::zipf_hit_rate(catalog, cached, skew);
        // Row-granular cache: line = one 128-byte row.
        let mut cache = mtia_sim::mem::SetAssocCache::new(cached * 128, 16, 128);
        // Inverse-CDF Zipf sampling for s < 1 over the continuous measure
        // x^(−s): P(rank ≤ x) = (x^(1−s) − 1) / (N^(1−s) − 1), the same
        // normalization Che's integral uses.
        let one_minus_s = 1.0 - skew;
        let norm = (catalog as f64).powf(one_minus_s) - 1.0;
        let sample = move |rng: &mut rand::rngs::StdRng| -> u64 {
            let u: f64 = rng.gen_range(0.0..1.0);
            let x = (1.0 + u * norm).powf(1.0 / one_minus_s);
            (x as u64).clamp(1, catalog) - 1
        };
        // Warm, then measure.
        for _ in 0..cached * 4 {
            cache.access(sample(&mut rng) * 128, false);
        }
        cache.reset_stats();
        for _ in 0..400_000 {
            cache.access(sample(&mut rng) * 128, false);
        }
        let simulated = cache.stats().hit_rate();
        v.row(&[
            catalog.to_string(),
            cached.to_string(),
            pct(analytic),
            pct(simulated),
            format!("{:+.1} pp", (simulated - analytic) * 100.0),
        ]);
    }
    ExperimentReport {
        id: "E6",
        tables: vec![t, v],
    }
}

/// E15: the individual §4.2/§6 graph-optimization gains, measured on the
/// raw (pre-optimization) case-study merge network, which carries exactly
/// the patterns §6 describes.
pub fn e15_fusion_gains() -> ExperimentReport {
    let sim = ChipSim::new(chips::mtia2i());
    let mut t = Table::new(
        "E15: graph-optimization gains on the raw case-study merge network",
        "§6: sibling-transpose-FC fusion up to 15 % on some models; \
         hundreds of LayerNorms batched to amortize launches; delayed IBB \
         +17 % throughput; Slice/Reshape/Concat → Transpose in MHA blocks; \
         §4.2: fusion shrinks the activation working set",
        &[
            "configuration",
            "batch latency",
            "vs baseline",
            "activation buffer",
            "nodes",
        ],
    );

    let graph = mtia_model::models::merge::MergeNetworkConfig::case_study().build();

    let configs: Vec<(&str, CompilerOptions)> = vec![
        ("no optimization", CompilerOptions::none()),
        (
            "+ vertical fusion",
            CompilerOptions {
                vertical_fusion: true,
                ..CompilerOptions::none()
            },
        ),
        (
            "+ sibling-transpose FC + MHA rewrite",
            CompilerOptions {
                vertical_fusion: true,
                sibling_transpose_fc: true,
                mha_rewrite: true,
                ..CompilerOptions::none()
            },
        ),
        (
            "+ LayerNorm batching",
            CompilerOptions {
                vertical_fusion: true,
                sibling_transpose_fc: true,
                mha_rewrite: true,
                layernorm_batching: true,
                ..CompilerOptions::none()
            },
        ),
        (
            "+ delayed in-batch broadcast",
            CompilerOptions {
                vertical_fusion: true,
                sibling_transpose_fc: true,
                mha_rewrite: true,
                layernorm_batching: true,
                delayed_broadcast: true,
                ..CompilerOptions::none()
            },
        ),
        (
            "all passes + tuned kernels + scheduling",
            CompilerOptions::all(),
        ),
    ];

    let mut baseline = None;
    for (name, options) in configs {
        let compiled = mtia_compiler::compile(&graph, options);
        let report = compiled.run(&sim);
        let latency = report.total_time();
        let base = *baseline.get_or_insert(latency);
        let act = compiled
            .graph
            .peak_activation_bytes_for_order(&compiled.plan.order);
        t.row(&[
            name.to_string(),
            format!("{latency}"),
            format!("-{}", pct(1.0 - latency.as_secs_f64() / base.as_secs_f64())),
            format!("{act}"),
            compiled.graph.nodes().len().to_string(),
        ]);
    }
    ExperimentReport {
        id: "E15",
        tables: vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(s: &str) -> f64 {
        s.trim_start_matches('-')
            .trim_end_matches('%')
            .parse()
            .unwrap()
    }

    #[test]
    fn e6_sparse_hits_in_band() {
        let r = e6_sram_hit_rates();
        for row in &r.tables[0].rows {
            let sparse = parse_pct(&row[1]);
            assert!(
                (30.0..=70.0).contains(&sparse),
                "{}: sparse hit {sparse}% outside 40–60±10",
                row[0]
            );
        }
    }

    #[test]
    fn e6_resident_models_have_dense_hits_above_95() {
        let r = e6_sram_hit_rates();
        for row in &r.tables[0].rows {
            let dense = parse_pct(&row[2]);
            let resident = parse_pct(&row[3]);
            if resident > 99.0 {
                assert!(dense > 95.0, "{}: dense hit {dense}%", row[0]);
            }
        }
        // And at least the five LC models are fully resident.
        let resident_count = r.tables[0]
            .rows
            .iter()
            .filter(|row| parse_pct(&row[3]) > 99.0)
            .count();
        assert!(resident_count >= 5);
    }

    #[test]
    fn e6b_che_matches_operational_lru() {
        let r = e6_sram_hit_rates();
        let v = &r.tables[1];
        for row in &v.rows {
            let delta: f64 = row[4]
                .trim_start_matches('+')
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(delta.abs() < 8.0, "{}: Che vs LRU delta {delta} pp", row[0]);
        }
    }

    #[test]
    fn e15_each_stage_helps() {
        let r = e15_fusion_gains();
        let rows = &r.tables[0].rows;
        let gains: Vec<f64> = rows.iter().map(|row| parse_pct(&row[2])).collect();
        // Monotone improvement, final gain meaningful.
        for w in gains.windows(2) {
            assert!(w[1] >= w[0] - 0.5, "stage regressed: {gains:?}");
        }
        assert!(*gains.last().unwrap() > 10.0, "total gain {gains:?}");
        // Node count shrinks with fusion; LayerNorm batching alone removes
        // over a hundred nodes.
        let n_first: usize = rows[0][4].parse().unwrap();
        let n_ln: usize = rows[3][4].parse().unwrap();
        let n_last: usize = rows[rows.len() - 1][4].parse().unwrap();
        assert!(n_ln + 100 < n_first, "{n_first} → {n_ln}");
        // Pass interactions (broadcast sinking changes what vertical fusion
        // absorbs) may shift the count by a node or two, never more.
        assert!(n_last <= n_ln + 2);
    }

    #[test]
    fn e15_every_pass_fires_on_the_raw_network() {
        let graph = mtia_model::models::merge::MergeNetworkConfig::case_study().build();
        let compiled = mtia_compiler::compile(&graph, CompilerOptions::all());
        for pass in [
            "vertical-fusion",
            "sibling-transpose-fc",
            "layernorm-batching",
            "mha-layout-rewrite",
            "delayed-broadcast",
        ] {
            let fired = compiled
                .pass_log
                .iter()
                .any(|(name, n)| name == pass && *n > 0);
            assert!(fired, "pass {pass} did not fire: {:?}", compiled.pass_log);
        }
    }
}
