//! One module per paper table/figure/quantified claim. Each `run()`
//! returns an [`ExperimentReport`] — one table per reported row group,
//! mirroring what the paper reports.
//!
//! [`ExperimentReport`]: crate::ExperimentReport

pub mod ab;
pub mod ablations;
pub mod chip_exps;
pub mod explore_exps;
pub mod failover_exps;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet_exps;
pub mod frontier;
pub mod global_exps;
pub mod gray_exps;
pub mod llm;
pub mod locality;
pub mod overload_exps;
pub mod planet_exps;
pub mod quant;
pub mod sdc_exps;
pub mod tables;
pub mod tuning;

use mtia_core::pool;

use crate::ExperimentReport;

/// One named, independently runnable experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEntry {
    /// Stable name used by `reproduce --filter`.
    pub name: &'static str,
    /// The experiment function. Must be pure: every experiment seeds its
    /// own RNG streams, so entries can run concurrently in any order.
    pub run: fn() -> ExperimentReport,
}

/// Every experiment, in paper order, with its `--filter` name.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        ExperimentEntry {
            name: "table1",
            run: tables::table1,
        },
        ExperimentEntry {
            name: "table2",
            run: tables::table2,
        },
        ExperimentEntry {
            name: "fig4",
            run: fig4::run,
        },
        ExperimentEntry {
            name: "fig5",
            run: fig5::run,
        },
        ExperimentEntry {
            name: "fig6",
            run: fig6::run,
        },
        ExperimentEntry {
            name: "e1_job_launch",
            run: chip_exps::e1_job_launch,
        },
        ExperimentEntry {
            name: "e2_gemm_efficiency",
            run: chip_exps::e2_gemm_efficiency,
        },
        ExperimentEntry {
            name: "e3_llm_roofline",
            run: llm::e3_llm_roofline,
        },
        ExperimentEntry {
            name: "e4_kernel_tuning",
            run: tuning::e4_kernel_tuning,
        },
        ExperimentEntry {
            name: "e5_coalescing",
            run: tuning::e5_coalescing,
        },
        ExperimentEntry {
            name: "e6_sram_hit_rates",
            run: locality::e6_sram_hit_rates,
        },
        ExperimentEntry {
            name: "e7_broadcast_gemm",
            run: chip_exps::e7_broadcast_gemm,
        },
        ExperimentEntry {
            name: "e8_quantization",
            run: quant::e8_quantization,
        },
        ExperimentEntry {
            name: "e9_ecc_study",
            run: fleet_exps::e9_ecc_study,
        },
        ExperimentEntry {
            name: "e10_overclocking",
            run: fleet_exps::e10_overclocking,
        },
        ExperimentEntry {
            name: "e11_power_budget",
            run: fleet_exps::e11_power_budget,
        },
        ExperimentEntry {
            name: "e12_chip_size",
            run: fleet_exps::e12_chip_size,
        },
        ExperimentEntry {
            name: "e13_firmware",
            run: fleet_exps::e13_firmware,
        },
        ExperimentEntry {
            name: "e14_ab_testing",
            run: ab::e14_ab_testing,
        },
        ExperimentEntry {
            name: "e15_fusion_gains",
            run: locality::e15_fusion_gains,
        },
        ExperimentEntry {
            name: "e16_compression",
            run: quant::e16_compression,
        },
        ExperimentEntry {
            name: "e17_complexity_frontier",
            run: frontier::run,
        },
        ExperimentEntry {
            name: "e18_ablations",
            run: ablations::run,
        },
        ExperimentEntry {
            name: "e19_sdc_defense",
            run: sdc_exps::e19_sdc_defense,
        },
        ExperimentEntry {
            name: "e21_failover",
            run: failover_exps::e21_failover,
        },
        ExperimentEntry {
            name: "e22_global",
            run: global_exps::e22_global,
        },
        ExperimentEntry {
            name: "e23_gray",
            run: gray_exps::e23_gray,
        },
        ExperimentEntry {
            name: "e24_planet",
            run: planet_exps::e24_planet,
        },
        ExperimentEntry {
            name: "e25_explore",
            run: explore_exps::e25_explore,
        },
        ExperimentEntry {
            name: "e26_overload",
            run: overload_exps::e26_overload,
        },
    ]
}

/// The fast subset behind `--filter quick` and the determinism gate:
/// fig5 (serving Monte-Carlo sweeps), a single E19 SDC ladder rung, the
/// E21 toy-tree failover rung, the E22 toy-fleet global-router rung,
/// the E23 toy-fleet gray-failure rung, the E24 sharded-planet rung
/// (also the perf gate's stable events/sec row), the E25 tiny-space
/// explore rung, and the E26 toy-fleet metastable-storm rung.
pub fn quick_subset() -> Vec<ExperimentEntry> {
    vec![
        ExperimentEntry {
            name: "fig5",
            run: fig5::run,
        },
        ExperimentEntry {
            name: "e19_rung",
            run: sdc_exps::e19_single_rung,
        },
        ExperimentEntry {
            name: "e21_rung",
            run: failover_exps::e21_rung,
        },
        ExperimentEntry {
            name: "e22_rung",
            run: global_exps::e22_rung,
        },
        ExperimentEntry {
            name: "e23_rung",
            run: gray_exps::e23_rung,
        },
        ExperimentEntry {
            name: "e24_rung",
            run: planet_exps::e24_rung,
        },
        ExperimentEntry {
            name: "e25_rung",
            run: explore_exps::e25_rung,
        },
        ExperimentEntry {
            name: "e26_rung",
            run: overload_exps::e26_rung,
        },
    ]
}

/// Registry entries whose name contains any comma-separated term of
/// `filter` (case-insensitive). `"quick"` selects [`quick_subset`].
pub fn filtered(filter: &str) -> Vec<ExperimentEntry> {
    if filter.eq_ignore_ascii_case("quick") {
        return quick_subset();
    }
    let terms: Vec<String> = filter
        .split(',')
        .map(|t| t.trim().to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect();
    registry()
        .into_iter()
        .filter(|e| terms.iter().any(|t| e.name.contains(t.as_str())))
        .collect()
}

/// Levenshtein edit distance, for near-miss filter suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Experiment names close to the (zero-match) `filter` terms: within a
/// small edit distance, or sharing a ≥ 3-character prefix. Ordered by
/// distance, at most three. Backs the `reproduce --filter` error path,
/// so a typo like `fig55` fails with "did you mean: fig5?".
pub fn near_misses(filter: &str) -> Vec<&'static str> {
    let terms: Vec<String> = filter
        .split(',')
        .map(|t| t.trim().to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect();
    let mut scored: Vec<(usize, &'static str)> = registry()
        .iter()
        .filter_map(|e| {
            let best = terms
                .iter()
                .map(|t| {
                    let d = edit_distance(t, e.name);
                    let prefix =
                        t.len() >= 3 && (e.name.starts_with(t.as_str()) || t.starts_with(e.name));
                    if prefix {
                        d.min(1)
                    } else {
                        d
                    }
                })
                .min()?;
            (best <= 3).then_some((best, e.name))
        })
        .collect();
    scored.sort();
    scored.truncate(3);
    scored.into_iter().map(|(_, name)| name).collect()
}

/// Runs `entries` on the [`pool`] workers, reports in entry order.
///
/// Experiments are pure (self-seeded), so the result — and everything
/// rendered from it — is byte-identical at any thread count; only
/// wall-clock changes.
pub fn run_entries(entries: Vec<ExperimentEntry>) -> Vec<ExperimentReport> {
    pool::parallel_map(entries, |_, e| (e.run)())
}

/// Runs every experiment in paper order.
pub fn run_all() -> Vec<ExperimentReport> {
    run_entries(registry())
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_the_paper_order() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 30);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate experiment name");
    }

    #[test]
    fn filter_selects_by_substring() {
        let figs = filtered("fig");
        assert_eq!(
            figs.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["fig4", "fig5", "fig6"]
        );
        let multi = filtered("table1, e19");
        assert_eq!(
            multi.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["table1", "e19_sdc_defense"]
        );
        assert!(filtered("no_such_experiment").is_empty());
        assert_eq!(filtered("quick").len(), quick_subset().len());
    }

    #[test]
    fn near_misses_suggest_close_names() {
        assert_eq!(near_misses("fig55").first(), Some(&"fig5"));
        assert!(near_misses("tabel1").contains(&"table1"));
        let prefix = near_misses("e19_sdc");
        assert_eq!(prefix, vec!["e19_sdc_defense"]);
        assert!(near_misses("zzzzzzzzzzzz").is_empty());
        assert!(near_misses("").is_empty());
    }
}
