//! One module per paper table/figure/quantified claim. Each `run()`
//! returns an [`ExperimentReport`] — one table per reported row group,
//! mirroring what the paper reports.
//!
//! [`ExperimentReport`]: crate::ExperimentReport

pub mod ab;
pub mod ablations;
pub mod chip_exps;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet_exps;
pub mod frontier;
pub mod llm;
pub mod locality;
pub mod quant;
pub mod sdc_exps;
pub mod tables;
pub mod tuning;

use crate::ExperimentReport;

/// Runs every experiment in paper order.
pub fn run_all() -> Vec<ExperimentReport> {
    vec![
        tables::table1(),
        tables::table2(),
        fig4::run(),
        fig5::run(),
        fig6::run(),
        chip_exps::e1_job_launch(),
        chip_exps::e2_gemm_efficiency(),
        llm::e3_llm_roofline(),
        tuning::e4_kernel_tuning(),
        tuning::e5_coalescing(),
        locality::e6_sram_hit_rates(),
        chip_exps::e7_broadcast_gemm(),
        quant::e8_quantization(),
        fleet_exps::e9_ecc_study(),
        fleet_exps::e10_overclocking(),
        fleet_exps::e11_power_budget(),
        fleet_exps::e12_chip_size(),
        fleet_exps::e13_firmware(),
        ab::e14_ab_testing(),
        locality::e15_fusion_gains(),
        quant::e16_compression(),
        frontier::run(),
        ablations::run(),
        sdc_exps::e19_sdc_defense(),
    ]
}
