//! E26: metastable-failure defense — naive retries latch into
//! collapse, the defended stack recovers (§5 production experience at
//! planetary scale).
//!
//! Three arms replay one byte-identical ≥10⁶-request crested diurnal
//! trace against one byte-identical capacity dip:
//!
//! * **naive-retry** — unconditional client retries (no budget, no
//!   breaker, deadline-oblivious servers). The transient overload
//!   triggers retry amplification that *sustains itself after the
//!   trigger heals*: goodput stays ≥ 20 pp below its pre-trigger level
//!   for the rest of the run. That latch — degraded equilibrium after
//!   the cause is gone — is the metastable-failure signature.
//! * **budget+breaker** — retry budgets cap duplicate work at a
//!   fraction of fresh traffic, per-(ingress, pod) circuit breakers
//!   shed edges that are demonstrably failing, and deadline
//!   propagation cancels work that cannot finish. Same trigger, but
//!   goodput returns to baseline once the dip heals.
//! * **budget+breaker+autoscale** — the proactive arm on top: a
//!   forecast fitted to the diurnal curve energizes per-pod reserve
//!   devices ahead of each crest, so the reactive defenses barely
//!   fire and whole-run goodput stays near-perfect.
//!
//! Every arm shares the fleet shape, the reserve tail (physically
//! present everywhere; only the autoscaler recruits it), and a config
//! with `degraded_service_time == service_time`: the latch question
//! is about retry amplification, and the ladder's cheaper tier-2
//! fallback would otherwise triple capacity under pressure and mask
//! it. Each arm runs through [`simulate_planet`] as a single
//! uncoupled cell, so the experiment also exercises the sharded
//! driver and its timeline merge.
//!
//! [`simulate_planet`]: mtia_serving::global::simulate_planet

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_core::SimTime;
use mtia_fleet::topology::GlobalTopologyConfig;
use mtia_serving::global::{
    build_regional_trace_crested, diurnal_crest, simulate_planet, AutoscaleConfig, CellSpec,
    GlobalConfig, GlobalFleetSpec, GlobalReport, OverloadConfig, PlanetConfig, RegionalTrace,
    RegionalTrafficConfig, RoutingPolicy,
};
use mtia_sim::faults::{FaultEvent, FaultKind, FaultPlan};

use crate::{fx, ExperimentReport, Table};

/// The E26 inputs: one trace + one fault plan shared by all three
/// arms, plus the windows and thresholds the gates judge against.
pub struct E26Scenario {
    /// Fleet shape shared by every arm (reserve tail included).
    pub spec: GlobalFleetSpec,
    /// Shared base config: production defenses, autoscaler off,
    /// degraded tier priced at full cost (see module docs).
    base: GlobalConfig,
    /// The crested diurnal trace every arm replays byte-identically.
    trace: RegionalTrace,
    /// The capacity dip every arm suffers byte-identically.
    plan: FaultPlan,
    /// Diurnal period (= horizon; one full day per run).
    period: SimTime,
    /// When the dip lands: region 0's diurnal crest.
    pub trigger: SimTime,
    /// When the dip heals — everything after this is trigger-free.
    pub heal: SimTime,
    /// Last arrival instant.
    pub horizon: SimTime,
    /// Start of the pre-trigger baseline window (skips cold start).
    warmup: SimTime,
    /// Goodput assessment window for the recovery metric.
    window: SimTime,
    /// Naive arm must sit at least this many pp below its baseline
    /// over the whole post-heal tail.
    collapse_pp: f64,
    /// Autoscaled arm's whole-run goodput floor.
    autoscale_floor: f64,
}

/// One arm's label, report, and derived goodput levels.
struct ArmResult {
    label: &'static str,
    report: GlobalReport,
    /// Pre-trigger goodput over `[warmup, trigger)`.
    baseline: f64,
    /// Post-heal goodput over `[heal, horizon)`.
    post_heal: f64,
    /// Earliest sustained return to baseline at/after `heal`.
    recovered: Option<SimTime>,
}

impl E26Scenario {
    #[allow(clippy::too_many_arguments)]
    fn build(
        tag: &str,
        topo: GlobalTopologyConfig,
        rate_per_region: f64,
        period: SimTime,
        crowd_frac: f64,
        reserve_per_pod: u32,
        dip_fraction: f64,
        dip_window: SimTime,
        warmup: SimTime,
        window: SimTime,
        collapse_pp: f64,
        autoscale_floor: f64,
    ) -> Self {
        let spec = topo.build().fleet_spec();
        let seed = derive(DEFAULT_SEED, tag);
        let horizon = period;
        let mut traffic = RegionalTrafficConfig::production(rate_per_region, period);
        traffic.crowd_duration = period.scale(crowd_frac);
        // A moderate crowd: the crest-pinned spike is the *kick* that
        // builds the first seconds of queue; the dip sustains the
        // overload. A 1.6× crowd would also break the autoscaled arm's
        // 99 % gate at the two non-trigger crests.
        traffic.crowd_multiplier = 1.4;
        // Little sheddable traffic: the ladder's tier-1 relief valve
        // must not be able to shed the naive arm back under capacity
        // (the latch question), nor cost the autoscaled arm its
        // goodput floor while utilization rides above `shed_enter`.
        traffic.low_priority_share = 0.05;
        // Crest-pinned crowds: the worst demand spike lands exactly on
        // the worst instant of every region's curve.
        let trace =
            build_regional_trace_crested(&traffic, spec.regions, horizon, derive(seed, "trace"));
        let mut base = GlobalConfig::production(seed);
        base.reserve_per_pod = reserve_per_pod;
        // Full-cost degraded tier: the latch must stand or fall on
        // retry amplification alone (module docs).
        base.degraded_service_time = base.service_time;
        // The trigger: a fraction of every pod's *nominal* devices
        // (never the reserve tail the autoscaler owns) dips at region
        // 0's crest and heals after `dip_window`.
        let trigger = diurnal_crest(period, 0, spec.regions);
        let nominal = spec.devices_per_pod - reserve_per_pod.min(spec.devices_per_pod - 1);
        let dip = ((nominal as f64) * dip_fraction).ceil() as u32;
        let mut plan = FaultPlan::empty(derive(seed, "plan"));
        for pod in 0..spec.pods() {
            for k in 0..dip.min(nominal) {
                plan = plan.with_event(FaultEvent {
                    at: trigger,
                    device: pod * spec.devices_per_pod + k,
                    kind: FaultKind::PodLoss,
                    duration: dip_window,
                });
            }
        }
        E26Scenario {
            spec,
            base,
            trace,
            plan,
            period,
            trigger,
            heal: trigger + dip_window,
            horizon,
            warmup,
            window,
            collapse_pp,
            autoscale_floor,
        }
    }

    /// The headline scenario: the planetary fleet (3 regions × 2 pods
    /// × 288 devices, 36 of each pod's devices held in reserve) under
    /// 700 req/s/region for one 600 s diurnal day ≈ 1.26M requests.
    ///
    /// The trigger is sized just past the latch threshold: 40.2 % of
    /// nominal capacity (92 of 228 devices per pod; 60 held in
    /// reserve) dips for 60 s at region 0's crest, leaving 816 erlangs
    /// of nominal fleet capacity against ~898 erlangs of shed-adjusted
    /// demand (2 100 req/s × 450 ms, minus the 5 % sheddable share) —
    /// overloaded enough that queues cross the 2 s deadline and retry
    /// amplification takes over, while the autoscaled arm (which can
    /// energize the reserve tail up to its forecast target) rides out
    /// the same dip at ~88 % utilization.
    pub fn production() -> Self {
        Self::build(
            "e26",
            GlobalTopologyConfig::planetary(),
            700.0,
            SimTime::from_secs(600),
            0.01,
            60,
            0.402,
            SimTime::from_secs(60),
            SimTime::from_secs(30),
            SimTime::from_secs(10),
            20.0,
            0.99,
        )
    }

    /// The quick rung: the 64-device toy fleet, same storm shape, a
    /// few thousand requests — cheap enough for the debug-mode
    /// determinism gate while still showing the latch.
    pub fn rung() -> Self {
        Self::build(
            "e26.rung",
            GlobalTopologyConfig::global_small(),
            45.0,
            SimTime::from_secs(60),
            0.1,
            2,
            0.35,
            SimTime::from_secs(20),
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            10.0,
            0.90,
        )
    }

    /// Requests offered per arm (exact, from the shared trace).
    pub fn offered(&self) -> u64 {
        self.trace.len() as u64
    }

    /// The three arms over the shared trace/plan: naive retries, the
    /// reactive defenses, and the defenses plus the proactive
    /// autoscaler.
    fn arms(&self) -> Vec<(&'static str, CellSpec)> {
        let cell = |config: GlobalConfig, policy: RoutingPolicy| CellSpec {
            spec: self.spec.clone(),
            config,
            trace: self.trace.clone(),
            plan: self.plan.clone(),
            policy,
        };
        let naive = GlobalConfig {
            overload: OverloadConfig::naive(),
            ..self.base.clone()
        };
        // The planner carries 50 % headroom over the forecast instead
        // of the stock 25 %: the proactive arm's capacity margin is a
        // *policy choice*, and this scenario's dip is engineered to sit
        // past the latch threshold — a 1.25× target sags below demand
        // mid-dip, while 1.5× pins the target at the full device pool
        // through the crest and rides the dip out at ~88 % utilization.
        let autoscaled = GlobalConfig {
            autoscale: Some(AutoscaleConfig {
                headroom: 0.5,
                ..AutoscaleConfig::production(self.period)
            }),
            ..self.base.clone()
        };
        vec![
            ("naive-retry", cell(naive, RoutingPolicy::NaiveRetry)),
            (
                "budget+breaker",
                cell(self.base.clone(), RoutingPolicy::OverloadResilient),
            ),
            (
                "budget+breaker+autoscale",
                cell(autoscaled, RoutingPolicy::OverloadResilient),
            ),
        ]
    }

    /// Runs every arm to drain through the sharded planetary driver
    /// (one uncoupled cell each) and derives its goodput levels.
    fn run(&self) -> Vec<ArmResult> {
        self.arms()
            .into_iter()
            .map(|(label, cell)| {
                let report = simulate_planet(
                    std::slice::from_ref(&cell),
                    PlanetConfig::uncoupled(SimTime::from_secs(1)),
                )
                .merged;
                let baseline = report.windowed_goodput(self.warmup, self.trigger);
                let post_heal = report.windowed_goodput(self.heal, self.horizon);
                let recovered = report.recovered_at(self.heal, self.window, baseline, 5.0);
                ArmResult {
                    label,
                    report,
                    baseline,
                    post_heal,
                    recovered,
                }
            })
            .collect()
    }
}

fn arm_row(a: &ArmResult) -> Vec<String> {
    let r = &a.report;
    vec![
        a.label.to_string(),
        r.offered.to_string(),
        format!("{:.2}%", r.goodput() * 100.0),
        format!("{:.2}%", a.baseline * 100.0),
        format!("{:.2}%", a.post_heal * 100.0),
        a.recovered.map_or_else(
            || "never".to_string(),
            |t| format!("{}s", fx(t.as_secs_f64(), 0)),
        ),
        format!("{}/{}", r.retries_issued, r.retries_shed),
        r.breaker_opens.to_string(),
        r.cancelled_at_admission.to_string(),
        r.scale_events.to_string(),
        format!("{}/{}", r.shed, r.lost),
        format!("{:016x}/{:016x}", r.trace_fingerprint, r.fault_fingerprint),
    ]
}

fn e26_report(id: &'static str, title: &str, anchor: &str, floor: u64) -> ExperimentReport {
    let scenario = if id == "E26" {
        E26Scenario::production()
    } else {
        E26Scenario::rung()
    };
    let arms = scenario.run();
    let mut table = Table::new(
        title,
        anchor,
        &[
            "arm",
            "offered",
            "goodput",
            "pre-trigger",
            "post-heal",
            "recovered@",
            "retries iss/shed",
            "brk opens",
            "cancelled",
            "scale ev",
            "shed/lost",
            "trace/fault",
        ],
    );
    for a in &arms {
        table.row(&arm_row(a));
    }
    let naive = &arms[0];
    let defended = &arms[1];
    let scaled = &arms[2];
    // The three headline gates plus the invariants every experiment
    // carries: request conservation and one shared trace/fault pair.
    let latched = naive.post_heal <= naive.baseline - scenario.collapse_pp / 100.0
        && naive.recovered.is_none();
    let recovers = defended.recovered.is_some();
    let holds = scaled.report.goodput() >= scenario.autoscale_floor;
    let conserved = arms.iter().all(|a| a.report.unaccounted() == 0);
    let same_trace = arms.iter().all(|a| {
        a.report.trace_fingerprint == naive.report.trace_fingerprint
            && a.report.fault_fingerprint == naive.report.fault_fingerprint
    });
    table.row(&[
        "gates".to_string(),
        format!("{} (≥{})", naive.report.offered, floor),
        if naive.report.offered >= floor {
            "ok".to_string()
        } else {
            "FLOOR MISS".to_string()
        },
        format!(
            "naive {} {:.0} pp",
            if latched {
                "latched ≥"
            } else {
                "NOT LATCHED <"
            },
            scenario.collapse_pp
        ),
        if recovers {
            "defended recovered".to_string()
        } else {
            "DEFENDED STUCK".to_string()
        },
        format!(
            "autoscale {} {:.0}%",
            if holds { "holds ≥" } else { "BELOW" },
            scenario.autoscale_floor * 100.0
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if conserved {
            "conserved".to_string()
        } else {
            "UNACCOUNTED".to_string()
        },
        if same_trace {
            "shared".to_string()
        } else {
            "TRACE DRIFT".to_string()
        },
    ]);
    let mut tables = vec![table];
    if id != "E26" {
        // Like the other quick rungs, append the chip-model anchor so
        // the subset keeps exercising the kernel-cost cache.
        tables.push(crate::service_model::anchor_table());
    }
    ExperimentReport { id, tables }
}

/// E26: the full planetary metastable-failure storm, three arms on one
/// ≥10⁶-request byte-identical trace.
pub fn e26_overload() -> ExperimentReport {
    e26_report(
        "E26",
        "E26: metastable-failure defense — naive retries latch into \
         collapse after the trigger heals; retry budgets + breakers + \
         deadline propagation recover; forecast-driven autoscaling \
         holds goodput near-perfect throughout",
        "§5 productionization: overload resilience at planetary scale. \
         One 1.26M-request crested diurnal day; 40 % of nominal \
         capacity dips for 60 s at the crest. The naive arm's post-heal \
         goodput is the metastable signature — the trigger is gone, the \
         collapse is not",
        1_000_000,
    )
}

/// One fast rung for `--filter quick`: the toy fleet, same storm and
/// same three arms — the determinism gate's overload row.
pub fn e26_rung() -> ExperimentReport {
    e26_report(
        "E26q",
        "E26 (quick rung): toy-fleet metastable storm, three arms",
        "overload defense scaled down for the CI quick subset; the \
         latch, the recovery, and the autoscaler all visible at \
         64-device scale",
        4_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e26_rung_is_deterministic_and_clears_its_gates() {
        let a = format!("{}", e26_rung());
        let b = format!("{}", e26_rung());
        assert_eq!(a, b);
        assert!(a.contains("conserved"), "arms must conserve requests");
        assert!(a.contains("shared"), "arms must share one trace/plan");
        assert!(
            a.contains("naive latched"),
            "rung must show the latch:\n{a}"
        );
        assert!(a.contains("defended recovered"), "rung must recover:\n{a}");
        assert!(a.contains("autoscale holds"), "rung autoscale floor:\n{a}");
    }

    #[test]
    fn e26_arms_share_the_trace_but_diverge_in_behaviour() {
        let scenario = E26Scenario::rung();
        let arms = scenario.run();
        assert_eq!(arms.len(), 3);
        let fp = arms[0].report.trace_fingerprint;
        assert!(arms.iter().all(|a| a.report.trace_fingerprint == fp));
        // The defended arms actually exercise their machinery.
        assert!(arms[0].report.retries_issued > 0, "naive arm must retry");
        assert!(
            arms[2].report.scale_events > 0,
            "autoscaled arm must move capacity"
        );
    }

    #[test]
    fn e26_production_shape_clears_the_request_floor() {
        // Sizing only — the full storm runs in release via reproduce.
        let scenario = E26Scenario::production();
        assert!(
            scenario.offered() >= 1_000_000,
            "E26 must offer ≥10⁶ requests, got {}",
            scenario.offered()
        );
        assert!(scenario.heal < scenario.horizon);
    }
}
