//! E24: planetary replay throughput — the cell-sharded DES at
//! ≥10⁷ requests (§4.1 at fleet scale, plus the perf trajectory).
//!
//! E22/E23 established *what* the global router does under disasters;
//! E24 establishes *how fast* the simulator itself replays a planet so
//! perf regressions in the DES core are caught the same way behavioural
//! regressions are. Ten serving cells — each a full E23-scale planetary
//! fleet (3 regions × 2 pods × 288 devices) with its own ≥10⁶-request
//! diurnal trace — are advanced in parallel by
//! [`simulate_planet`] with fleet-wide ladder coupling at 1 s epoch
//! barriers, then merged deterministically.
//!
//! The table below is pure simulation output (counts and
//! fingerprints): byte-identical at any thread count, so the entry sits
//! in the determinism gate like every other experiment. The *rates* —
//! events/sec, wall time, peak RSS — are measured around the run by
//! `reproduce --bench-perf` via `mtia_core::perfcount`, and regressions
//! are gated by `--perf-baseline` in CI. Keeping time out of the report
//! is what lets one artifact serve both gates.
//!
//! [`simulate_planet`]: mtia_serving::global::simulate_planet

use mtia_core::seed::{derive, derive_indexed, DEFAULT_SEED};
use mtia_core::SimTime;
use mtia_fleet::topology::GlobalTopologyConfig;
use mtia_serving::global::{
    build_regional_trace, simulate_planet, CellSpec, GlobalConfig, PlanetConfig, PlanetReport,
    RegionalTrafficConfig, RoutingPolicy,
};
use mtia_sim::faults::FaultPlan;

use crate::{fx, ExperimentReport, Table};

/// The E24 inputs: a vector of self-contained serving cells plus the
/// epoch/coupling configuration, shared between the experiment table
/// and the acceptance tests.
pub struct E24Scenario {
    /// One complete global-DES input tuple per cell.
    pub cells: Vec<CellSpec>,
    /// Epoch cadence and ladder coupling.
    pub planet: PlanetConfig,
}

impl E24Scenario {
    /// Builds `cells` independent cells on the given fleet shape, each
    /// with its own trace seeded by cell index, fault-free under the
    /// health-aware router. Fault-free is deliberate: E24 is the
    /// throughput yardstick, so its event mix should be the steady
    /// state the fleet spends almost all wall-clock time in, not a
    /// disaster transient (E22/E23 own those).
    fn build(
        tag: &str,
        cells: u64,
        config: GlobalTopologyConfig,
        rate_per_region: f64,
        horizon: SimTime,
    ) -> Self {
        let spec = config.build().fleet_spec();
        let base = derive(DEFAULT_SEED, tag);
        let traffic = RegionalTrafficConfig::production(rate_per_region, horizon);
        let cells = (0..cells)
            .map(|i| {
                let seed = derive_indexed(base, "cell", i);
                CellSpec {
                    spec: spec.clone(),
                    config: GlobalConfig::production(seed),
                    trace: build_regional_trace(&traffic, spec.regions, horizon, seed),
                    plan: FaultPlan::empty(derive(seed, "plan")),
                    policy: RoutingPolicy::HealthAware,
                }
            })
            .collect();
        E24Scenario {
            cells,
            planet: PlanetConfig::production(),
        }
    }

    /// The headline scenario: 10 planetary cells × (600 req/s × 3
    /// regions × 600 s) ≈ 10.8M requests on 17 280 devices total.
    pub fn production() -> Self {
        Self::build(
            "e24",
            10,
            GlobalTopologyConfig::planetary(),
            600.0,
            SimTime::from_secs(600),
        )
    }

    /// The quick rung: 4 toy-fleet cells with enough traffic (~70k
    /// requests) that its events/sec row in `--bench-perf` is above
    /// timing noise, while staying cheap enough for the debug-mode
    /// determinism gate.
    pub fn rung() -> Self {
        Self::build(
            "e24.rung",
            4,
            GlobalTopologyConfig::global_small(),
            150.0,
            SimTime::from_secs(60),
        )
    }

    /// Requests offered across all cells (exact, from the traces).
    pub fn offered(&self) -> u64 {
        self.cells.iter().map(|c| c.trace.len() as u64).sum()
    }

    /// Replays every cell to drain and merges.
    pub fn run(&self) -> PlanetReport {
        simulate_planet(&self.cells, self.planet)
    }
}

fn planet_row(label: &str, r: &mtia_serving::global::GlobalReport) -> Vec<String> {
    vec![
        label.to_string(),
        r.offered.to_string(),
        format!("{:.2}%", r.goodput() * 100.0),
        r.shed.to_string(),
        r.lost.to_string(),
        r.events.to_string(),
        format!("{}", fx(r.events as f64 / r.offered.max(1) as f64, 2)),
        format!("{:016x}/{:016x}", r.trace_fingerprint, r.fault_fingerprint),
    ]
}

fn planet_table(title: &str, anchor: &str, report: &PlanetReport) -> Table {
    let mut t = Table::new(
        title,
        anchor,
        &[
            "cell",
            "offered",
            "goodput",
            "shed",
            "lost",
            "events",
            "events/request",
            "trace/fault",
        ],
    );
    for (i, cell) in report.cells.iter().enumerate() {
        t.row(&planet_row(&format!("cell {i}"), cell));
    }
    t.row(&planet_row("merged", &report.merged));
    t
}

fn e24_report(id: &'static str, title: &str, anchor: &str, floor: u64) -> ExperimentReport {
    let scenario = if id == "E24" {
        E24Scenario::production()
    } else {
        E24Scenario::rung()
    };
    let report = scenario.run();
    let mut table = planet_table(title, anchor, &report);
    table.row(&[
        "gates".to_string(),
        format!(
            "{} (≥{} {})",
            report.merged.offered,
            floor,
            if report.merged.offered >= floor {
                "ok"
            } else {
                "FAIL"
            }
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if report.merged.unaccounted() == 0 {
            "conserved".to_string()
        } else {
            "UNACCOUNTED".to_string()
        },
    ]);
    let mut tables = vec![table];
    if id != "E24" {
        // Like the other quick rungs, append the chip-model anchor so the
        // subset keeps exercising the kernel-cost cache. The headline E24
        // stays a pure DES replay — its wall-clock is the perf yardstick.
        tables.push(crate::service_model::anchor_table());
    }
    ExperimentReport { id, tables }
}

/// E24: the full ≥10⁷-request planetary replay, sharded by cell.
pub fn e24_planet() -> ExperimentReport {
    e24_report(
        "E24",
        "E24: planetary replay throughput — 10 serving cells × 1 728 \
         devices, ≥10⁷ requests, cell-sharded DES with ladder coupling \
         at 1 s epochs",
        "§4.1 fleet-of-pods at planetary scale: the replay whose \
         events/sec figure anchors the perf trajectory; wall-clock \
         rates are measured (and regression-gated) by --bench-perf, \
         never recorded here, so the table stays byte-identical at any \
         thread count",
        10_000_000,
    )
}

/// One fast rung for `--filter quick`: 4 toy-fleet cells, same driver,
/// same merge — the determinism gate and the perf gate's stable
/// events/sec row.
pub fn e24_rung() -> ExperimentReport {
    e24_report(
        "E24q",
        "E24 (quick rung): 4-cell toy-fleet planetary replay",
        "cell-sharded DES scaled down for the CI quick subset; doubles \
         as the regression-gated events/sec row in --bench-perf",
        50_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_rung_is_deterministic() {
        let a = format!("{}", e24_rung());
        let b = format!("{}", e24_rung());
        assert_eq!(a, b);
        assert!(a.contains("conserved"), "merge must conserve requests");
        assert!(a.contains("ok"), "rung must clear its offered floor");
    }

    #[test]
    fn e24_rung_cells_see_distinct_traffic() {
        let scenario = E24Scenario::rung();
        let fingerprints: std::collections::BTreeSet<u64> = scenario
            .cells
            .iter()
            .map(|c| c.trace.fingerprint())
            .collect();
        assert_eq!(fingerprints.len(), scenario.cells.len());
        assert!(scenario.offered() >= 50_000);
    }

    #[test]
    fn e24_production_shape_clears_the_request_floor() {
        // Sizing only — the full replay runs in release via reproduce.
        let scenario = E24Scenario::production();
        assert_eq!(scenario.cells.len(), 10);
        assert!(
            scenario.offered() >= 10_000_000,
            "E24 must offer ≥10⁷ requests, got {}",
            scenario.offered()
        );
    }
}
