//! Numerics experiments: dynamic INT8 quantization (E8, §4.4) and the
//! compression engines (E16, §3.3).

use mtia_compiler::CompilerOptions;
use mtia_core::spec::{chips, EccMode};
use mtia_core::units::Bytes;
use mtia_core::DType;
use mtia_model::compress::{ans, fp16_weight_bytes, lzss};
use mtia_model::ops::OpKind;
use mtia_model::quant::{fc_quality, quantize, Granularity};
use mtia_model::tensor::DenseTensor;
use mtia_sim::chip::ChipSim;
use mtia_sim::kernels::{cost_op, FcVariant, KernelEnv};
use mtia_sim::mem::lpddr::LpddrController;
use mtia_sim::mem::sram::place_model;
use mtia_sim::noc::NocModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{fx, pct, ExperimentReport, Table};

/// E8: dynamic INT8 quantization — DPE speedup, end-to-end speedup after
/// quant/dequant overhead, and model quality by granularity.
pub fn e8_quantization() -> ExperimentReport {
    let chip = chips::mtia2i();
    let env = KernelEnv {
        chip: &chip,
        noc: NocModel::new(chip.noc.clone()),
        dram: LpddrController::new(chip.dram.clone(), EccMode::ControllerEcc),
        placement: place_model(&chip.sram, Bytes::from_mib(40), Bytes::from_mib(100), 0.75),
        weight_resident_fraction: 1.0,
        tbe_hit_rate: 0.5,
        skip_writeback_hints: true,
    };

    // Performance: 2048³ FC (the paper's compute-bound example).
    let n = 2048u64;
    let v = Some(FcVariant::optimized_for(n, n, n));
    let fc = OpKind::Fc {
        batch: n,
        in_features: n,
        out_features: n,
    };
    let t_fp16 = cost_op(&env, &fc, DType::Fp16, v).time;
    let t_int8 = cost_op(&env, &fc, DType::Int8, v).time;
    // Quantization reads the FP16 activations out of LLS (a full sweep);
    // dequantization folds into the GEMM epilogue, touching only Local
    // Memory as results stream out of the Reduction Engine.
    let t_quant = cost_op(&env, &OpKind::Quantize { elems: n * n }, DType::Fp16, None).time;
    let mut epilogue_env = env.clone();
    epilogue_env.placement.activations = mtia_sim::mem::sram::MemLevel::LocalMemory;
    let t_dequant = cost_op(
        &epilogue_env,
        &OpKind::Dequantize { elems: n * n },
        DType::Fp16,
        None,
    )
    .time;
    let e2e_int8 = t_int8 + t_quant + t_dequant;

    let mut perf = Table::new(
        "E8: dynamic INT8 on a 2048×2048×2048 FC",
        "§4.4: \"the DPE performs 2x faster with INT8 ... the overhead of \
         quantization and dequantization ... reduces the speedup to around \
         1.6x for large, compute-bound shapes\"",
        &["configuration", "time", "speedup vs FP16"],
    );
    perf.row(&["FP16".into(), format!("{t_fp16}"), "1.00x".into()]);
    perf.row(&[
        "INT8 kernel only".into(),
        format!("{t_int8}"),
        format!("{}x", fx(t_fp16.as_secs_f64() / t_int8.as_secs_f64(), 2)),
    ]);
    perf.row(&[
        "INT8 + quantize/dequantize".into(),
        format!("{e2e_int8}"),
        format!("{}x", fx(t_fp16.as_secs_f64() / e2e_int8.as_secs_f64(), 2)),
    ]);

    // Quality by granularity on skewed activations.
    let mut rng = StdRng::seed_from_u64(88);
    let mut x = DenseTensor::gaussian(64, 256, 1.0, &mut rng);
    for r in 0..8 {
        for v in x.row_mut(r * 8) {
            *v *= 40.0;
        }
    }
    let w = DenseTensor::gaussian(256, 128, 0.05, &mut rng);
    let quality = fc_quality(&x, &w);
    let mut q = Table::new(
        "E8b: output quality by quantization granularity",
        "§4.4: row-wise activation quantization + static INT8 weights \
         achieves quality comparable to FP16; per-tensor does not",
        &["configuration", "output SNR (dB)"],
    );
    q.row(&["FP16".into(), fx(quality.fp16_snr_db, 1)]);
    q.row(&[
        "INT8 per-tensor".into(),
        fx(quality.int8_per_tensor_snr_db, 1),
    ]);
    q.row(&[
        "INT8 per-row (dynamic)".into(),
        fx(quality.int8_per_row_snr_db, 1),
    ]);

    // End-to-end: selective quantization of only the largest FC layers.
    let mut e2e = Table::new(
        "E8c: selective quantization, end-to-end on HC1",
        "§4.4: \"end-to-end improvements are often marginal (a few \
         percent)\"; \"quantizing only the largest FC layers to amortize \
         the overhead is most effective\"",
        &["configuration", "quantized FCs", "batch latency", "gain"],
    );
    let sim = ChipSim::new(chips::mtia2i_128gb());
    let models = mtia_model::models::zoo::fig6_models();
    let hc1 = models.iter().find(|m| m.name == "HC1").unwrap();
    let g = hc1.graph();
    let baseline = mtia_compiler::compile(&g, CompilerOptions::all()).run(&sim);
    // Each quantization threshold recompiles and re-simulates the model
    // from scratch — independent cells, fanned out on the pool workers.
    let thresholds = vec![
        ("FP16 everywhere", None),
        ("largest FCs only (≥8 MiB)", Some(Bytes::from_mib(8))),
        ("every FC (quality-risky)", Some(Bytes::ZERO)),
    ];
    let quant_runs = mtia_core::pool::parallel_map(thresholds, |_, (label, threshold)| {
        let (graph, rewrites) = match threshold {
            None => (g.clone(), 0),
            Some(min_weight_bytes) => {
                let pass =
                    mtia_compiler::passes::quantize::SelectiveQuantization { min_weight_bytes };
                use mtia_compiler::Pass;
                let r = pass.run(&g);
                (r.graph, r.rewrites)
            }
        };
        let report = mtia_compiler::compile(&graph, CompilerOptions::all()).run(&sim);
        (label, rewrites, report)
    });
    for (label, rewrites, report) in quant_runs {
        e2e.row(&[
            label.to_string(),
            rewrites.to_string(),
            format!("{}", report.total_time()),
            format!(
                "+{}",
                pct(baseline.total_time().as_secs_f64() / report.total_time().as_secs_f64() - 1.0)
            ),
        ]);
    }
    ExperimentReport {
        id: "E8",
        tables: vec![perf, q, e2e],
    }
}

/// E16: ANS weight compression and the GZIP-class PCIe path.
pub fn e16_compression() -> ExperimentReport {
    let mut rng = StdRng::seed_from_u64(89);
    // Heavy-tailed trained weights: outliers set the scale.
    let mut weights = DenseTensor::gaussian(256, 512, 0.02, &mut rng);
    for i in 0..weights.rows() {
        let c = (i * 31) % 512;
        let v = weights.get(i, c) * 30.0;
        weights.set(i, c, v);
    }
    let q = quantize(&weights, Granularity::PerTensor);
    let int8: Vec<u8> = (0..weights.rows())
        .flat_map(|r| q.row(r).iter().map(|&v| v as u8))
        .collect();
    let fp16 = fp16_weight_bytes(weights.data());

    let mut t = Table::new(
        "E16: lossless weight compression (rANS)",
        "§3.3: \"up to a 50% compression ratio\" on weights; \"FP16 data \
         does not compress efficiently\"",
        &["payload", "size", "rANS ratio", "round-trips"],
    );
    for (name, data) in [("INT8 weights", &int8), ("FP16 weights", &fp16)] {
        let c = ans::compress(data);
        let ok = ans::decompress(&c).map(|d| d == *data).unwrap_or(false);
        t.row(&[
            name.to_string(),
            format!("{} B", data.len()),
            fx(c.len() as f64 / data.len() as f64, 2),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // PCIe path: LZSS on feature blobs that mix repeated categorical
    // structure with high-entropy continuous features (realistic ~2:1).
    use rand::Rng;
    let row: Vec<u8> = (0..64).map(|i| (i * 7) as u8).collect();
    let mut blob = Vec::new();
    for _ in 0..4000 {
        blob.extend_from_slice(&row); // categorical/id structure
        let noise: Vec<u8> = (0..56).map(|_| rng.gen()).collect();
        blob.extend_from_slice(&noise); // continuous features
    }
    let lz = lzss::compress(&blob);
    let ratio = lz.len() as f64 / blob.len() as f64;
    let link = mtia_sim::host::HostLink::new(chips::mtia2i().host_if);
    let mut p = Table::new(
        "E16b: PCIe decompression engine (LZ77-family stand-in for GZIP)",
        "§3.3: GZIP at up to 25 GB/s \"alleviating PCIe and network \
         congestion\", significant for early-stage retrieval models",
        &["payload", "wire ratio", "effective host→device bandwidth"],
    );
    p.row(&[
        "raw (incompressible)".into(),
        "1.00".into(),
        format!("{}", link.effective_bandwidth(1.0)),
    ]);
    p.row(&[
        "structured features".into(),
        fx(ratio, 2),
        format!("{}", link.effective_bandwidth(ratio)),
    ]);
    ExperimentReport {
        id: "E16",
        tables: vec![t, p],
    }
}

/// Device-level sanity: INT8 end-to-end on a compiled model is bounded by
/// Amdahl over its FC share (used by the tests).
pub fn int8_model_speedup() -> f64 {
    let sim = ChipSim::new(chips::mtia2i());
    let models = mtia_model::models::zoo::fig6_models();
    let hc1 = models.iter().find(|m| m.name == "HC1").unwrap();
    let g = hc1.graph();
    let fp16 = mtia_compiler::compile(&g, CompilerOptions::all())
        .run(&sim)
        .total_time();
    // INT8 is modelled per-op; approximate a fully-quantized FC stack by
    // halving GEMM-class time (the DPE factor) — the Amdahl ceiling.
    let report = mtia_compiler::compile(&g, CompilerOptions::all());
    let r = report.run(&sim);
    let gemm_time: mtia_core::SimTime = r
        .nodes
        .iter()
        .filter(|n| n.category == mtia_model::ops::OpCategory::Gemm)
        .map(|n| n.cost.time)
        .sum();
    let rest = fp16.saturating_sub(gemm_time);
    fp16.as_secs_f64() / (rest + gemm_time.scale(0.5)).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_speedups_match_paper() {
        let r = e8_quantization();
        let rows = &r.tables[0].rows;
        let parse = |s: &str| -> f64 { s.trim_end_matches('x').parse().unwrap() };
        let kernel = parse(&rows[1][2]);
        let e2e = parse(&rows[2][2]);
        assert!((1.8..=2.2).contains(&kernel), "kernel speedup {kernel}");
        assert!(
            (1.4..=1.8).contains(&e2e),
            "e2e speedup {e2e} (paper: ~1.6)"
        );
        assert!(e2e < kernel);
    }

    #[test]
    fn e8_quality_ordering() {
        let r = e8_quantization();
        let rows = &r.tables[1].rows;
        let fp16: f64 = rows[0][1].parse().unwrap();
        let per_tensor: f64 = rows[1][1].parse().unwrap();
        let per_row: f64 = rows[2][1].parse().unwrap();
        assert!(fp16 > per_row && per_row > per_tensor);
        assert!(
            per_row > 30.0,
            "per-row must stay quality-neutral: {per_row} dB"
        );
    }

    #[test]
    fn e8c_selective_beats_blanket_quantization_risk() {
        let r = e8_quantization();
        let e2e = &r.tables[2];
        let gain = |row: &Vec<String>| -> f64 {
            row[3]
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        // Selective quantization yields a positive but modest gain (§4.4:
        // "a few percent" for typical models, more when big layers exist).
        let selective = gain(&e2e.rows[1]);
        assert!(selective > 0.0, "selective gain {selective}%");
        assert!(selective < 60.0, "gain must stay bounded: {selective}%");
        // Quantizing everything adds little over selective (the small
        // layers' overhead eats their own gains).
        let blanket = gain(&e2e.rows[2]);
        assert!(
            blanket <= selective + 10.0,
            "blanket {blanket}% vs {selective}%"
        );
    }

    #[test]
    fn e16_int8_compresses_fp16_does_not() {
        let r = e16_compression();
        let rows = &r.tables[0].rows;
        let int8: f64 = rows[0][2].parse().unwrap();
        let fp16: f64 = rows[1][2].parse().unwrap();
        assert!(int8 < 0.6, "int8 ratio {int8} (paper: up to 0.5)");
        assert!(fp16 > 0.75, "fp16 ratio {fp16}");
        assert!(
            rows.iter().all(|row| row[3] == "yes"),
            "round-trips must hold"
        );
    }

    #[test]
    fn e16_pcie_engine_raises_bandwidth() {
        let r = e16_compression();
        let rows = &r.tables[1].rows;
        // Structured payload row quotes > 32 GB/s effective.
        assert!(rows[1][2].contains("GB/s"));
        let eff: f64 = rows[1][2]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(eff > 32.0, "effective bw {eff} GB/s must beat raw PCIe");
    }

    #[test]
    fn model_level_int8_gain_is_marginal() {
        // §4.4: "end-to-end improvements are often marginal (a few
        // percent)" for complex models where GEMMs are not dominant.
        let speedup = int8_model_speedup();
        assert!(speedup < 2.0, "Amdahl must bound the gain: {speedup}");
        assert!(speedup > 1.0);
    }
}
