//! E19: the online SDC-defense sweep (§5.1, productionized).
//!
//! Sweeps the detection-policy ladder — naive serving, inline guards
//! only, guards plus canaries at varying frequency, and the full stack
//! with shadow re-execution voting — over one byte-identical seeded
//! LPDDR bit-flip trace (ECC off), reporting detection recall, false
//! positives, detection latency, and throughput overhead against the
//! §5.1 controller-ECC alternative (10–15 % bandwidth).

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_core::{DetectionMethod, SimTime};
use mtia_fleet::memerr::decision_bandwidth_cost;
use mtia_fleet::quarantine::{run_defended_fleet, DefendedFleetReport};
use mtia_model::error_inject::InjectionTarget;
use mtia_model::integrity::{
    output_fingerprint, IntegrityViolation, OutputGuard, DEFAULT_GUARD_MARGIN,
};
use mtia_serving::sdc::{run_sdc_sim, DetectionPolicy, ImageSpec, InlineRepair, SdcSimConfig};
use mtia_sim::faults::{FaultPlan, FaultPlanConfig};

use crate::{fx, pct, ExperimentReport, Table};

fn policies() -> Vec<DetectionPolicy> {
    vec![
        DetectionPolicy::naive(),
        DetectionPolicy::guards_only(),
        DetectionPolicy::guards_canary(32),
        DetectionPolicy::guards_canary(16),
        DetectionPolicy::guards_canary(8),
        DetectionPolicy::full(16),
        DetectionPolicy::full_tight_guard(16),
    ]
}

fn policy_label(p: &DetectionPolicy) -> String {
    match p.canary_every {
        Some(n) if p.name.starts_with("guards+canary") => format!("{} (1/{n})", p.name),
        _ => p.name.to_string(),
    }
}

/// E19: detection-policy sweep under injected ECC-off bit flips.
pub fn e19_sdc_defense() -> ExperimentReport {
    // Every rung of the ladder replays the same seeded fault trace under
    // a different policy — pure (config, seed) cells, fanned out on the
    // pool workers.
    let runs: Vec<(DetectionPolicy, DefendedFleetReport)> =
        mtia_core::pool::parallel_map(policies(), |_, p| {
            let report = run_defended_fleet(p, DEFAULT_SEED);
            (p, report)
        });

    let mut sweep = Table::new(
        "E19: SDC detection-policy sweep (one byte-identical bit-flip trace)",
        "§5.1: ECC-off LPDDR flips corrupt outputs \"with some failures \
         occurring with high probability\" — the online defense must catch \
         them before responses are served",
        &[
            "policy",
            "corrupting flips",
            "recall",
            "served corrupted",
            "FP rate",
            "mean detect latency",
            "overhead",
        ],
    );
    for (p, r) in &runs {
        let s = &r.sdc;
        sweep.row(&[
            policy_label(p),
            format!("{}/{} injected", s.flips_corrupting, s.flips_injected),
            pct(s.recall()),
            format!("{} of {}", s.served_corrupted, s.served),
            if s.clean_guarded_executions == 0 {
                "n/a".to_string()
            } else {
                format!("{:.4}%", s.false_positive_rate() * 100.0)
            },
            s.mean_detection_latency()
                .map(|t| format!("{:.1} ms", t.as_millis_f64()))
                .unwrap_or_else(|| "—".to_string()),
            pct(s.overhead()),
        ]);
    }

    let full = runs
        .iter()
        .find(|(p, _)| *p == DetectionPolicy::full(16))
        .map(|(_, r)| r)
        .expect("full policy is in the sweep");

    let mut methods = Table::new(
        "E19b: incidents by detection method (guards+canary+shadow)",
        "§5.1 failure modes: row CRC catches embedding flips, the index-\
         stream checksum catches TBE staging flips, the output guard \
         catches exponent blow-ups, canary fingerprints catch silent \
         weight corruption",
        &["method", "incidents", "inline?"],
    );
    for m in DetectionMethod::ALL {
        methods.row(&[
            m.to_string(),
            full.sdc.incidents_for(m).to_string(),
            if m.is_inline_guard() { "yes" } else { "no" }.to_string(),
        ]);
    }

    let mut coverage = Table::new(
        "E19c: single-flip coverage matrix (which mechanism fires first)",
        "§5.1 fault vocabulary: every region × severity maps to a \
         detector before a response is served",
        &["injected flip", "first detector"],
    );
    let cases: [(&str, InjectionTarget, u32, u32); 7] = [
        (
            "embedding row, exponent bit 30",
            InjectionTarget::EmbeddingRows,
            5,
            30,
        ),
        (
            "embedding row, mantissa bit 0",
            InjectionTarget::EmbeddingRows,
            100,
            0,
        ),
        (
            "TBE index staging, stuck bit 3",
            InjectionTarget::TbeIndices,
            2,
            3,
        ),
        (
            "dense weight, exponent bit 30",
            InjectionTarget::DenseWeights,
            9,
            30,
        ),
        (
            "dense weight, mantissa bit 16",
            InjectionTarget::DenseWeights,
            5,
            16,
        ),
        (
            "activation scratch, exponent bit 30",
            InjectionTarget::Activations,
            1,
            30,
        ),
        (
            "activation scratch, mantissa bit 1",
            InjectionTarget::Activations,
            1,
            1,
        ),
    ];
    let detectors = mtia_core::pool::parallel_map(cases.to_vec(), |_, (_, region, word, bit)| {
        first_detector(region, word, bit)
    });
    for ((label, ..), detector) in cases.iter().zip(detectors) {
        coverage.row(&[label.to_string(), detector]);
    }

    // Steady-state cost: the same full policy on a clean fleet — the
    // permanent tax to compare with the controller-ECC alternative.
    let cfg = SdcSimConfig::default_for(DetectionPolicy::full(16), DEFAULT_SEED);
    let clean_plan = FaultPlan::generate(
        &FaultPlanConfig {
            error_prone_card_rate: 0.0,
            ..FaultPlanConfig::sdc_study()
        },
        cfg.devices,
        SimTime::from_secs(2),
        derive(DEFAULT_SEED, "sdc/clean"),
    );
    let mut inline = InlineRepair::new(SimTime::from_millis(20), 64);
    let steady = run_sdc_sim(&cfg, &clean_plan, &mut inline);

    let mut cost = Table::new(
        "E19d: quarantine workflow and cost vs the §5.1 ECC alternative",
        "§5.1: controller ECC costs 10–15 % of throughput; the online \
         defense pays redundancy only where suspicion points",
        &["item", "value"],
    );
    cost.row(&["quarantines".into(), full.sdc.quarantines.to_string()]);
    cost.row(&[
        "repairs / retirements".into(),
        format!("{} / {}", full.sdc.repairs, full.sdc.retirements),
    ]);
    cost.row(&[
        "memtest faults found".into(),
        full.device_logs
            .values()
            .map(|l| l.lifetime_faults)
            .sum::<usize>()
            .to_string(),
    ]);
    cost.row(&[
        "memtest scan order (sensitivity-ranked)".into(),
        full.scan_order
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
            .join(" → "),
    ]);
    cost.row(&[
        "overhead under fault storm".into(),
        pct(full.sdc.overhead()),
    ]);
    cost.row(&[
        "steady-state overhead (clean fleet)".into(),
        pct(steady.overhead()),
    ]);
    cost.row(&[
        "controller-ECC alternative".into(),
        format!("{} (always-on)", pct(decision_bandwidth_cost())),
    ]);
    cost.row(&[
        "steady-state saving vs ECC".into(),
        fx(decision_bandwidth_cost() / steady.overhead().max(1e-9), 1) + "× cheaper",
    ]);

    ExperimentReport {
        id: "E19",
        tables: vec![sweep, methods, coverage, cost],
    }
}

/// A single rung of the E19 ladder — the full defense stack on the
/// byte-identical trace. This is the SDC half of the `--filter quick`
/// determinism subset: small enough to run on every CI invocation,
/// stochastic enough (fault plan + canary scheduling + quarantine
/// machine) to catch any nondeterminism the parallel runtime could
/// introduce.
pub fn e19_single_rung() -> ExperimentReport {
    let policy = DetectionPolicy::full(16);
    let r = run_defended_fleet(policy, DEFAULT_SEED);
    let s = &r.sdc;
    let mut t = Table::new(
        "E19 (single rung): guards+canary+shadow on the seeded flip trace",
        "§5.1: the full online defense catches corruption before responses \
         are served",
        &["metric", "value"],
    );
    t.row(&[
        "fault fingerprint".into(),
        format!("{:016x}", s.fault_fingerprint),
    ]);
    t.row(&[
        "corrupting flips".into(),
        format!("{}/{} injected", s.flips_corrupting, s.flips_injected),
    ]);
    t.row(&["recall".into(), pct(s.recall())]);
    t.row(&[
        "served corrupted".into(),
        format!("{} of {}", s.served_corrupted, s.served),
    ]);
    t.row(&["quarantines".into(), s.quarantines.to_string()]);
    t.row(&["overhead".into(), pct(s.overhead())]);
    ExperimentReport {
        id: "E19q",
        tables: vec![t, crate::service_model::anchor_table()],
    }
}

/// Applies one flip to a fresh device image and reports the first
/// defense mechanism that fires: inline guards over a request sweep,
/// then the canary fingerprint.
fn first_detector(region: InjectionTarget, word: u32, bit: u32) -> String {
    let spec = ImageSpec::small(DEFAULT_SEED);
    let mut image = spec.build();
    let golden_fp = image.golden_canary_fingerprint();
    let samples: Vec<_> = (0..64)
        .map(|i| image.execute_golden(&spec.request(i)))
        .chain(std::iter::once(image.execute_golden(&spec.canary())))
        .collect();
    let guard = OutputGuard::calibrate(&samples, DEFAULT_GUARD_MARGIN);
    image.apply_flip(region, word, bit);

    let method = |v: IntegrityViolation| match v {
        IntegrityViolation::RowChecksumMismatch { .. } => DetectionMethod::RowChecksum,
        IntegrityViolation::IndexOutOfBounds { .. } => DetectionMethod::IndexBounds,
        IntegrityViolation::IndexStreamMismatch => DetectionMethod::IndexStreamChecksum,
        IntegrityViolation::NonFiniteOutput { .. }
        | IntegrityViolation::OutputOutOfRange { .. } => DetectionMethod::OutputGuard,
    };
    for id in 0..256 {
        if let Err(v) = image.execute_guarded(&spec.request(id), &guard) {
            return method(v).to_string();
        }
    }
    match image.execute_guarded(&spec.canary(), &guard) {
        Err(v) => method(v).to_string(),
        Ok(out) if output_fingerprint(&out) != golden_fp => {
            DetectionMethod::CanaryFingerprint.to_string()
        }
        Ok(_) => "undetected".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_report_shape() {
        let r = e19_sdc_defense();
        assert_eq!(r.id, "E19");
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.tables[0].rows.len(), policies().len());
        assert_eq!(r.tables[1].rows.len(), DetectionMethod::ALL.len());
        // Every single-flip case in the coverage matrix is detected.
        for row in &r.tables[2].rows {
            assert_ne!(row[1], "undetected", "{} escaped every mechanism", row[0]);
        }
    }

    #[test]
    fn e19_meets_the_acceptance_bar() {
        let full = run_defended_fleet(DetectionPolicy::full(16), DEFAULT_SEED);
        let naive = run_defended_fleet(DetectionPolicy::naive(), DEFAULT_SEED);
        // Byte-identical trace across arms.
        assert_eq!(full.sdc.fault_fingerprint, naive.sdc.fault_fingerprint);
        // Full stack: ≥90% recall, zero corrupted served.
        assert!(full.sdc.recall() >= 0.9);
        assert_eq!(full.sdc.served_corrupted, 0);
        // Naive serves corruption on the same trace.
        assert!(naive.sdc.served_corrupted > 0);
    }
}
