//! Table 1 (production model classes) and Table 2 (chip specifications).

use mtia_core::spec::chips;
use mtia_core::DType;
use mtia_model::models::zoo;

use crate::{fx, ExperimentReport, Table};

/// Table 1: the production model zoo, regenerated from the synthetic
/// model generators.
pub fn table1() -> ExperimentReport {
    let mut t = Table::new(
        "Table 1: Examples of production models",
        "retrieval 50–100 GB @ 0.001–0.01 GF/sample; early 100–300 GB @ \
         0.01–0.1; late 100–300 GB @ 0.2–2; HSTU retrieval 1 TB @ 10 GF/req; \
         HSTU ranking 2 TB @ 80 GF/req; 90 % of model size is embeddings",
        &[
            "model type",
            "model size",
            "complexity (GF/sample)",
            "embedding share",
            "batch",
        ],
    );
    for m in zoo::table1_models() {
        let g = m.graph();
        let stats = g.stats();
        let total = stats.table_bytes + stats.weight_bytes;
        let emb_share = stats.table_bytes.as_f64() / total.as_f64();
        t.row(&[
            m.name.clone(),
            format!("{:.0} GB", total.as_gib()),
            fx(m.mflops_per_sample() / 1000.0, 3),
            format!("{:.1}%", emb_share * 100.0),
            m.batch.to_string(),
        ]);
    }
    ExperimentReport {
        id: "T1",
        tables: vec![t],
    }
}

/// Table 2: MTIA 2i vs MTIA 1, with every compute rate *derived* from the
/// microarchitecture rather than transcribed.
pub fn table2() -> ExperimentReport {
    let gen2 = chips::mtia2i();
    let gen1 = chips::mtia1();
    let mut t = Table::new(
        "Table 2: MTIA 2i vs MTIA 1 (derived from the modelled microarchitecture)",
        "354/177 TOPS INT8/FP16, 708/354 sparse; 256 MB SRAM @ 2.7 TB/s; \
         64–128 GB LPDDR5 @ 204.8 GB/s; 1.35 GHz vs 800 MHz",
        &["quantity", "MTIA 2i", "MTIA 1", "ratio"],
    );
    let mut push = |name: &str, a: f64, b: f64, unit: &str| {
        t.row(&[
            name.to_string(),
            format!("{a:.1} {unit}"),
            format!("{b:.1} {unit}"),
            fx(a / b, 2),
        ]);
    };
    push(
        "GEMM INT8",
        gen2.gemm_peak(DType::Int8, false).as_tflops(),
        gen1.gemm_peak(DType::Int8, false).as_tflops(),
        "TOPS",
    );
    push(
        "GEMM FP16",
        gen2.gemm_peak(DType::Fp16, false).as_tflops(),
        gen1.gemm_peak(DType::Fp16, false).as_tflops(),
        "TFLOPS",
    );
    push(
        "GEMM INT8 (2:4 sparse)",
        gen2.gemm_peak(DType::Int8, true).as_tflops(),
        gen1.gemm_peak(DType::Int8, true).as_tflops(),
        "TOPS",
    );
    push(
        "SIMD engine (all dtypes)",
        gen2.simd_engine_peak(DType::Fp32).as_tflops(),
        gen1.simd_engine_peak(DType::Fp32).as_tflops(),
        "TOPS",
    );
    push(
        "vector core INT8",
        gen2.vector_peak(DType::Int8).as_tflops(),
        gen1.vector_peak(DType::Int8).as_tflops(),
        "TOPS",
    );
    push(
        "frequency",
        gen2.frequency.as_ghz(),
        gen1.frequency.as_ghz(),
        "GHz",
    );
    push(
        "SRAM capacity",
        gen2.sram.capacity.as_mib(),
        gen1.sram.capacity.as_mib(),
        "MiB",
    );
    push(
        "SRAM bandwidth",
        gen2.sram.bandwidth.as_gb_per_s() / 1000.0,
        gen1.sram.bandwidth.as_gb_per_s() / 1000.0,
        "TB/s",
    );
    push(
        "LPDDR bandwidth",
        gen2.dram.bandwidth.as_gb_per_s(),
        gen1.dram.bandwidth.as_gb_per_s(),
        "GB/s",
    );
    push(
        "LPDDR capacity",
        gen2.dram.capacity.as_gib(),
        gen1.dram.capacity.as_gib(),
        "GiB",
    );
    push(
        "Local Memory / PE",
        gen2.pe.local_memory.as_mib() * 1024.0,
        gen1.pe.local_memory.as_mib() * 1024.0,
        "KiB",
    );
    push(
        "NoC bisection",
        gen2.noc.bisection_bw.as_gb_per_s() / 1000.0,
        gen1.noc.bisection_bw.as_gb_per_s() / 1000.0,
        "TB/s",
    );
    push("TDP", gen2.tdp.as_f64(), gen1.tdp.as_f64(), "W");
    ExperimentReport {
        id: "T2",
        tables: vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_model_classes() {
        let r = table1();
        assert_eq!(r.tables[0].rows.len(), 5);
        // HSTU rows quote multi-TB sizes.
        let hstu_row = &r.tables[0].rows[4];
        assert!(hstu_row[1].contains("GB"));
    }

    #[test]
    fn table2_ratios_match_headline_claims() {
        let r = table2();
        let t = &r.tables[0];
        let ratio_of = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|row| row[0] == name)
                .expect("row")
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(ratio_of("GEMM INT8") > 3.0); // >3× peak FLOPS
        assert!(ratio_of("SRAM bandwidth") > 3.0); // >3× SRAM BW
        assert!((ratio_of("LPDDR bandwidth") - 1.16).abs() < 0.02); // ~1.4×? 204.8/176
        assert_eq!(ratio_of("LPDDR capacity"), 2.0);
    }
}
