//! Autotuning experiments: the FC kernel performance database (E4, §4.1)
//! and request-coalescing tuning (E5, §4.1).

use mtia_compiler::perfdb::{exhaustive_tune_par, FcShape, MemoEval, PerfDb};
use mtia_core::spec::{chips, EccMode};
use mtia_core::units::{Bytes, SimTime};
use mtia_core::DType;
use mtia_model::ops::OpKind;
use mtia_sim::kernels::{cost_op, FcVariant, KernelEnv};
use mtia_sim::mem::lpddr::LpddrController;
use mtia_sim::mem::sram::place_model;
use mtia_sim::noc::NocModel;

use crate::{fx, pct, ExperimentReport, Table};

fn sim_eval() -> impl Fn(FcShape, FcVariant) -> SimTime + Sync {
    let chip = chips::mtia2i();
    move |shape, variant| {
        let env = KernelEnv {
            chip: &chip,
            noc: NocModel::new(chip.noc.clone()),
            dram: LpddrController::new(chip.dram.clone(), EccMode::ControllerEcc),
            placement: place_model(&chip.sram, Bytes::from_mib(40), Bytes::from_mib(200), 0.75),
            weight_resident_fraction: 0.5,
            tbe_hit_rate: 0.5,
            skip_writeback_hints: true,
        };
        let op = OpKind::Fc {
            batch: shape.m,
            in_features: shape.k,
            out_features: shape.n,
        };
        cost_op(&env, &op, DType::Fp16, Some(variant)).time
    }
}

/// E4: exhaustive FC tuning vs the perf-DB ANN lookup.
pub fn e4_kernel_tuning() -> ExperimentReport {
    // The kernel-cost evaluator is pure, so tuning memoizes it: repeated
    // (shape, variant) cells across grid seeding, exhaustive baselines,
    // and ANN queries hit the sharded cache, and the grid itself tunes
    // its shapes on the pool workers.
    let eval = sim_eval();
    let memo = MemoEval::new(&eval);
    let mut db = PerfDb::new();
    db.seed_grid_par(
        &[64, 256, 1024, 4096],
        &[128, 512, 2048, 8192],
        &[128, 512, 2048],
        &memo.as_fn(),
    );

    let mut t = Table::new(
        "E4: FC kernel tuning — exhaustive vs performance-DB ANN lookup",
        "§4.1: the perf DB + approximate-nearest-neighbour search \"reduced \
         FC tuning time by up to 1000x while achieving kernel performance \
         within 5% of exhaustive FC tuning\"",
        &[
            "query shape",
            "exhaustive evals",
            "ann evals",
            "speedup",
            "ann vs exhaustive time",
        ],
    );
    let queries = [
        FcShape::new(512, 1024, 768),
        FcShape::new(192, 4096, 1536),
        FcShape::new(2048, 320, 256),
        FcShape::new(96, 26592, 2048),
        FcShape::new(1536, 1536, 640),
    ];
    for q in queries {
        let ex = exhaustive_tune_par(q, &memo.as_fn());
        let ann = db.lookup_tune(q, &mut memo.as_fn());
        t.row(&[
            format!("{}x{}x{}", q.m, q.k, q.n),
            ex.evaluations.to_string(),
            ann.evaluations.to_string(),
            format!("{}x", ex.evaluations / ann.evaluations),
            format!(
                "+{}",
                pct(ann.time.as_secs_f64() / ex.time.as_secs_f64() - 1.0)
            ),
        ]);
    }
    ExperimentReport {
        id: "E4",
        tables: vec![t],
    }
}

/// E5: request-coalescing autotuning.
pub fn e5_coalescing() -> ExperimentReport {
    // Service model from a mid-size ranking model: 2 ms fixed +
    // 20 µs/sample (s(512) ≈ 12 ms against the 100 ms SLO).
    let service = |b: u64| SimTime::from_micros(2000) + SimTime::from_micros(20) * b;
    let slo = SimTime::from_millis(100);
    let target_batch = 512;

    let mut t = Table::new(
        "E5: request-coalescing window sweep (batch 512, P99 SLO 100 ms)",
        "§4.1: \"a model's throughput at its P99 latency SLO is highly \
         sensitive to these parameters. With effective autotuning, we \
         typically achieve >95% requests per batch\"",
        &[
            "window",
            "parallel windows",
            "max rate @ SLO (req/s)",
            "fill",
        ],
    );
    for window_ms in [1u64, 2, 5, 10, 20, 50] {
        for parallel in [1u32, 2] {
            let config = mtia_autotune::CoalescingConfig {
                window: SimTime::from_millis(window_ms),
                parallel_windows: parallel,
            };
            let rate = mtia_autotune::coalescing::max_rate(config, target_batch, slo, &service)
                .unwrap_or(0.0);
            let p =
                mtia_autotune::coalescing::predict(config, rate.max(1.0), target_batch, &service);
            t.row(&[
                format!("{window_ms} ms"),
                parallel.to_string(),
                fx(rate, 0),
                pct(p.fill),
            ]);
        }
    }

    let choice = mtia_autotune::tune_coalescing(target_batch, slo, &service);
    let mut summary = Table::new(
        "E5 summary: autotuned operating point",
        ">95 % requests per batch at the tuned window",
        &[
            "window",
            "parallel windows",
            "max rate (req/s)",
            "fill",
            "P99",
        ],
    );
    summary.row(&[
        format!("{}", choice.config.window),
        choice.config.parallel_windows.to_string(),
        fx(choice.max_rate_per_s, 0),
        pct(choice.prediction.fill),
        format!("{}", choice.prediction.p99),
    ]);
    ExperimentReport {
        id: "E5",
        tables: vec![t, summary],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_speedup_and_quality() {
        let r = e4_kernel_tuning();
        for row in &r.tables[0].rows {
            let speedup: u64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(speedup >= 1000, "{}: speedup {speedup}", row[0]);
            let gap: f64 = row[4]
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(gap <= 5.0, "{}: ann gap {gap}%", row[0]);
        }
    }

    #[test]
    fn e5_tuned_fill_exceeds_95_percent() {
        let r = e5_coalescing();
        let fill: f64 = r.tables[1].rows[0][3]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(fill > 95.0, "tuned fill {fill}%");
    }

    #[test]
    fn e5_shows_window_sensitivity() {
        let r = e5_coalescing();
        let rates: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .filter(|row| row[1] == "1")
            .map(|row| row[2].parse().unwrap())
            .collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "rate spread {max}/{min}");
    }
}
