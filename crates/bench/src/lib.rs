//! The table/figure reproduction harness.
//!
//! Every table and figure in the paper's evaluation has a corresponding
//! experiment in [`experiments`] that regenerates its rows from the
//! simulator stack, plus a `cargo bench` target that prints it. The
//! `reproduce` binary runs the complete set (the source of
//! `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod platform;
pub mod service_model;
pub mod traces;

use std::fmt;

/// A printable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `"Figure 6: Perf/TCO and Perf/Watt of nine models"`.
    pub title: String,
    /// What the paper reports, for side-by-side comparison.
    pub paper_anchor: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, paper_anchor: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            paper_anchor: paper_anchor.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row from display-able cells.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n## {}", self.title)?;
        writeln!(f, "_Paper_: {}\n", self.paper_anchor)?;
        // Column widths.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "| {} |", dashes.join(" | "))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// A named experiment producing one or more tables.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"F6"`.
    pub id: &'static str,
    /// The produced tables.
    pub tables: Vec<Table>,
}

impl ExperimentReport {
    /// Prints every table to stdout.
    pub fn print(&self) {
        for t in &self.tables {
            print!("{t}");
        }
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Renders reports exactly as the `reproduce` binary prints them — one
/// `# Experiment <id>` section per report. Byte-identity comparisons
/// across thread counts diff this string.
pub fn render_reports(reports: &[ExperimentReport]) -> String {
    use fmt::Write;
    let mut out = String::new();
    for report in reports {
        write!(out, "\n---\n\n# Experiment {}\n{report}", report.id).expect("string write");
    }
    out
}

/// Formats a ratio as a percentage string ("180%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a float with `d` decimals.
pub fn fx(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", "anchor", &["a", "bb"]);
        t.row(&["1".to_string(), "2".to_string()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", "", &["a"]);
        t.row(&["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(pct(1.795), "180%");
        assert_eq!(fx(1.2345, 2), "1.23");
    }
}
