//! Server-level platform comparison shared by the Fig. 4 / Fig. 6 / ECC
//! experiments: one production model, served on a 24-chip MTIA server and
//! an 8-GPU server, reduced to the paper's relative Perf / Perf/TCO /
//! Perf/Watt metrics.

use mtia_autotune::sharding::{sharded_throughput, tune_sharding};
use mtia_core::spec::chips;
use mtia_core::tco::{PlatformMetrics, RelativeEfficiency, ServerCost};
use mtia_core::units::Bytes;
use mtia_model::graph::{Graph, TensorKind};
use mtia_model::models::zoo::ZooModel;
use mtia_serving::cluster::{host_bound_samples_per_s, HostPipeline};
use mtia_sim::chip::ChipSim;
use mtia_sim::gpu::GpuSim;

/// Serving-level efficiency factors on the MTIA side (batch fill from
/// coalescing, job-scheduling occupancy). 1.0 = fully tuned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingFactors {
    /// Achieved requests-per-batch fraction (§4.1: > 0.95 when tuned).
    pub batch_fill: f64,
    /// Device-occupancy factor from remote/merge job ordering (§6).
    pub scheduling: f64,
}

impl ServingFactors {
    /// Fully tuned serving (the production configuration).
    pub fn tuned() -> Self {
        ServingFactors {
            batch_fill: 0.97,
            scheduling: 1.0,
        }
    }

    /// Untuned serving: default coalescing window, naive job ordering.
    pub fn untuned() -> Self {
        ServingFactors {
            batch_fill: 0.60,
            scheduling: 0.85,
        }
    }

    fn factor(&self) -> f64 {
        self.batch_fill * self.scheduling
    }
}

/// The comparison result for one model.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model name.
    pub name: String,
    /// Samples/s per MTIA server (24 chips).
    pub mtia_server_tput: f64,
    /// Samples/s per GPU server (8 GPUs).
    pub gpu_server_tput: f64,
    /// Devices per MTIA replica (shards + merge device when sharded).
    pub mtia_devices_per_replica: u32,
    /// Devices per GPU replica.
    pub gpu_devices_per_replica: u32,
    /// Relative Perf / Perf-per-TCO / Perf-per-Watt (MTIA vs GPU).
    pub rel: RelativeEfficiency,
}

/// Per-sample input bytes arriving from the host (model inputs only).
pub(crate) fn input_bytes_per_sample(graph: &Graph) -> Bytes {
    let total: Bytes = graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Input)
        .map(|t| t.bytes())
        .sum();
    total / graph.batch().max(1)
}

/// Compares one zoo model across the two platforms with explicit serving
/// factors, an explicit MTIA simulator, and an optional MTIA-side batch
/// override (the Fig. 4 stages vary all three; the GPU baseline always
/// serves the model at its GPU-tuned shipped batch).
pub fn compare_model_staged(
    model: &ZooModel,
    sim: &ChipSim,
    options: mtia_compiler::CompilerOptions,
    serving: ServingFactors,
    mtia_batch: Option<u64>,
) -> ModelComparison {
    let graph = match mtia_batch {
        Some(b) => model.graph_at(b),
        None => model.graph(),
    };
    let per_sample_in = input_bytes_per_sample(&graph);

    // MTIA side: shard if needed (128 GB SKU for the big-table models),
    // run the compiled graph. The merge network is colocated with shard 0,
    // so a replica occupies exactly `shards` devices.
    let plan = tune_sharding(sim, &graph, 12);
    let device_tput = if plan.shards == 1 {
        mtia_compiler::compile(&graph, options)
            .run(sim)
            .throughput_samples_per_s()
    } else {
        // `sharded_throughput` compiles with the full option set; for
        // staged (untuned) comparisons the single-device path above is the
        // one exercised.
        sharded_throughput(sim, &graph, plan)
    };
    let mtia_devices = plan.shards;
    let mtia_replicas = 24.0 / mtia_devices as f64;
    let mtia_server = chips::mtia_server();
    // Host ceiling per accelerator (feature staging shares host DRAM BW).
    let host_limit =
        host_bound_samples_per_s(&mtia_server, &HostPipeline::optimized(per_sample_in))
            * mtia_devices as f64;
    let replica_tput =
        (device_tput * serving.factor() / (1.0 + model.host_overhead)).min(host_limit);
    let mtia_server_tput = replica_tput * mtia_replicas;

    // GPU side: mature stack, always tuned, always at the shipped batch;
    // shard by HBM capacity, with the same colocated remote/merge layout
    // (table slices gather in parallel across the GPU shards).
    let gpu_graph = model.graph();
    let gpu_spec = chips::gpu_baseline();
    let gpu_devices = (gpu_graph.model_bytes().as_f64() / gpu_spec.hbm_capacity.as_f64())
        .ceil()
        .max(1.0) as u32;
    let gpu_sim = GpuSim::new(gpu_spec);
    let gpu_tput = if gpu_devices == 1 {
        gpu_sim.run(&gpu_graph).throughput_samples_per_s()
    } else {
        let (remote, merge) = mtia_autotune::split_for_shards(&gpu_graph, gpu_devices);
        let stage = gpu_sim.run(&remote).total_time() + gpu_sim.run(&merge).total_time();
        gpu_graph.batch() as f64 / stage.as_secs_f64()
    };
    let gpu_server_spec = chips::gpu_server();
    let gpu_host_limit =
        host_bound_samples_per_s(&gpu_server_spec, &HostPipeline::optimized(per_sample_in))
            * gpu_devices as f64;
    let gpu_replica_tput = (gpu_tput / (1.0 + model.host_overhead)).min(gpu_host_limit);
    let gpu_server_tput = gpu_replica_tput * (8.0 / gpu_devices as f64);

    let mtia_metrics = PlatformMetrics::new(ServerCost::mtia_server(), mtia_server_tput);
    let gpu_metrics = PlatformMetrics::new(ServerCost::gpu_server(), gpu_server_tput);
    ModelComparison {
        name: model.name.clone(),
        mtia_server_tput,
        gpu_server_tput,
        mtia_devices_per_replica: mtia_devices,
        gpu_devices_per_replica: gpu_devices,
        rel: mtia_metrics.relative_to(&gpu_metrics),
    }
}

/// Staged comparison without a batch override.
pub fn compare_model_with(
    model: &ZooModel,
    sim: &ChipSim,
    options: mtia_compiler::CompilerOptions,
    serving: ServingFactors,
) -> ModelComparison {
    compare_model_staged(model, sim, options, serving, None)
}

/// Compares one model in the fully tuned production configuration (the
/// 128 GB LPDDR SKU, so the big-table ranking models shard to "one or two
/// accelerators" as in §7).
pub fn compare_model(model: &ZooModel) -> ModelComparison {
    compare_model_with(
        model,
        &ChipSim::new(chips::mtia2i_128gb()),
        mtia_compiler::CompilerOptions::all(),
        ServingFactors::tuned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_model::models::zoo;

    #[test]
    fn tuned_lc_model_beats_gpu_on_tco() {
        let models = zoo::fig6_models();
        let c = compare_model(&models[1]); // LC2
        assert!(c.rel.perf_per_tco > 1.2, "{}: {}", c.name, c.rel);
        assert_eq!(c.mtia_devices_per_replica, 1);
    }

    #[test]
    fn untuned_serving_is_visibly_worse() {
        let models = zoo::fig6_models();
        let sim = ChipSim::new(chips::mtia2i_128gb());
        let tuned = compare_model(&models[2]);
        let untuned = compare_model_with(
            &models[2],
            &sim,
            mtia_compiler::CompilerOptions::none(),
            ServingFactors::untuned(),
        );
        assert!(untuned.rel.perf_per_tco < tuned.rel.perf_per_tco * 0.75);
    }

    #[test]
    fn sharded_model_uses_extra_devices() {
        let models = zoo::fig6_models();
        let hc4 = models.iter().find(|m| m.name == "HC4").unwrap();
        let c = compare_model(hc4);
        assert!(c.mtia_devices_per_replica > 1);
        assert!(
            c.mtia_devices_per_replica <= 3,
            "§7: big models run on a couple of accelerators, got {}",
            c.mtia_devices_per_replica
        );
        assert!(c.gpu_devices_per_replica > 1, "200 GiB exceeds one HBM too");
    }

    #[test]
    fn input_bytes_accounting() {
        let g = zoo::fig6_models()[0].graph();
        let b = input_bytes_per_sample(&g);
        assert!(b.as_u64() > 0);
        assert!(b < Bytes::from_kib(64));
    }
}
