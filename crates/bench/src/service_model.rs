//! The modeled accelerator cost behind the serving rungs' service
//! times.
//!
//! The serving-layer experiments (E19/E21/E22/E23 and their quick
//! rungs) drive discrete-event simulations with *fixed* per-request
//! service times; the chip-level roofline model is what those constants
//! stand in for. This module runs one small recommendation model (LC1,
//! the §7 efficiency leader) through [`ChipSim`] — every node cost goes
//! through [`mtia_sim::costcache`] — and reports the per-batch chip
//! time as the anchor row each rung appends to its tables.
//!
//! Running the anchor inside each rung means the `--filter quick`
//! subset exercises the process-wide kernel-cost cache (the ROADMAP
//! noted its hit rate was 0 % across the whole subset): the compiled
//! graph executes twice per call — cold, then warm — so the second
//! pass hits on every node even when `--bench-perf` resets the cache
//! between experiments, and repeated rungs hit on the first pass too.
//!
//! The rendered numbers are pure model outputs (cached values equal
//! freshly computed values), so appending the anchor row never
//! perturbs byte-identity across thread counts; only the cache's
//! hit/miss *counters* — reported separately in `BENCH_PERF.json` —
//! depend on scheduling.

use mtia_compiler::plan::{compile, CompilerOptions};
use mtia_core::spec::chips;
use mtia_core::SimTime;
use mtia_sim::chip::ChipSim;

use crate::Table;

/// One modeled per-request cost, produced through the kernel-cost
/// cache.
#[derive(Debug, Clone)]
pub struct ModeledRequestCost {
    /// Zoo model name.
    pub model: String,
    /// Batch size the graph was built at.
    pub batch: u64,
    /// Graph node count.
    pub nodes: usize,
    /// End-to-end chip time for one batch (cold run == warm run).
    pub chip_time: SimTime,
}

/// Runs LC1 through the compiler and [`ChipSim`] twice — cold, then
/// warm — and returns the per-batch cost. The warm pass re-evaluates
/// every node through [`mtia_sim::costcache::cost_op_cached`], so each
/// call leaves the cache with at least one hit per node; the result is
/// asserted identical, which is the memoization-correctness contract.
pub fn modeled_request_cost() -> ModeledRequestCost {
    let model = mtia_model::models::zoo::fig6_models().remove(0);
    debug_assert_eq!(model.name, "LC1");
    let graph = model.graph();
    let compiled = compile(&graph, CompilerOptions::all());
    let sim = ChipSim::new(chips::mtia2i());
    let cold = compiled.run(&sim);
    let warm = compiled.run(&sim);
    assert_eq!(
        cold.total_time(),
        warm.total_time(),
        "cached node costs must equal freshly computed costs"
    );
    ModeledRequestCost {
        model: model.name,
        batch: model.batch,
        nodes: cold.nodes.len(),
        chip_time: cold.total_time(),
    }
}

/// The one-row anchor table the serving rungs append: the chip-level
/// cost model behind their fixed DES service times.
pub fn anchor_table() -> Table {
    let cost = modeled_request_cost();
    let mut t = Table::new(
        "Service-time anchor: one modeled batch through the kernel-cost cache",
        "the rung's fixed per-request service time stands in for this \
         chip-level roofline cost; evaluating it here routes the quick \
         subset through `sim::costcache`",
        &["model", "batch", "nodes", "chip time / batch"],
    );
    t.row(&[
        cost.model,
        cost.batch.to_string(),
        cost.nodes.to_string(),
        format!("{:.3} ms", cost.chip_time.as_secs_f64() * 1e3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_cost_is_deterministic_and_warms_the_cache() {
        let a = modeled_request_cost();
        let before = mtia_sim::costcache::stats();
        let b = modeled_request_cost();
        let after = mtia_sim::costcache::stats();
        assert_eq!(a.chip_time, b.chip_time);
        assert_eq!(a.nodes, b.nodes);
        assert!(a.chip_time > SimTime::ZERO);
        assert!(
            after.hits > before.hits,
            "a repeated modeled run must hit the kernel-cost cache"
        );
    }
}
