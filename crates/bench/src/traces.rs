//! Pinned-seed trace scenarios behind the golden-trace harness and the
//! `reproduce --trace-out` / `--telemetry-smoke` modes.
//!
//! Each scenario runs one instrumented simulation — a chip-level model
//! execution, a Fig. 5 serving cell, a staged firmware rollout — with a
//! hard-coded `(config, seed)` pair, recording spans/metrics into the
//! supplied [`Telemetry`] when it is enabled. The returned *fingerprint*
//! string summarizes the simulation result and must be byte-identical
//! whether tracing is on or off: tracing observes the run, it never
//! perturbs it. The golden tests in `tests/golden_traces.rs` pin the
//! canonical export of each scenario; [`run_telemetry_smoke`] checks the
//! observer-effect and overhead budgets in CI.

use std::time::Instant;

use mtia_compiler::plan::{compile, CompilerOptions};
use mtia_core::spec::chips;
use mtia_core::telemetry::Telemetry;
use mtia_core::SimTime;
use mtia_fleet::firmware::{simulate_rollout_traced, FirmwareBundle, Rollout};
use mtia_fleet::quarantine::{QuarantineConfig, QuarantineManager};
use mtia_model::models::zoo;
use mtia_serving::scheduler::{simulate_remote_merge_traced, RemoteMergeConfig};
use mtia_serving::sdc::{ImageSpec, QuarantineHandler, QuarantineRequest};
use mtia_serving::traffic::PoissonArrivals;
use mtia_sim::chip::ChipSim;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One named, pinned-seed trace scenario.
#[derive(Clone, Copy)]
pub struct TraceScenario {
    /// Stable name; golden fixtures live at `tests/goldens/<name>.trace.json`.
    pub name: &'static str,
    /// Runs the simulation, recording into `tel` when enabled, and
    /// returns a result fingerprint that must not depend on `tel`.
    pub run: fn(&mut Telemetry) -> String,
}

/// Every golden-trace scenario.
pub fn scenarios() -> Vec<TraceScenario> {
    vec![
        TraceScenario {
            name: "quickstart",
            run: quickstart_trace,
        },
        TraceScenario {
            name: "fig5_cell",
            run: fig5_cell_trace,
        },
        TraceScenario {
            name: "rollout",
            run: rollout_trace,
        },
        TraceScenario {
            name: "failover",
            run: failover_trace,
        },
        TraceScenario {
            name: "global_router",
            run: global_router_trace,
        },
        TraceScenario {
            name: "gray_failure",
            run: gray_failure_trace,
        },
        TraceScenario {
            name: "breaker_lifecycle",
            run: breaker_lifecycle_trace,
        },
    ]
}

/// The README quickstart: LC3 compiled with every optimization, executed
/// once on the production MTIA 2i chip. Exercises the `chip.run` span
/// tree, per-engine occupancy counters, and the LLC/LPDDR byte totals.
pub fn quickstart_trace(tel: &mut Telemetry) -> String {
    let model = zoo::fig6_models().remove(2);
    debug_assert_eq!(model.name, "LC3");
    let graph = model.graph();
    let compiled = compile(&graph, CompilerOptions::all());
    let sim = ChipSim::new(chips::mtia2i());
    let report = compiled.run_traced(&sim, tel);
    format!(
        "model=LC3 nodes={} total_ps={} kernel_ps={}",
        report.nodes.len(),
        report.total_time().as_picos(),
        report.kernel_time().as_picos(),
    )
}

/// One Fig. 5 SLO-sweep cell: the 2-device remote/merge deployment at a
/// fixed Poisson arrival rate. Exercises per-request lifecycle spans,
/// the latency/merge-wait histograms, and the completion counters.
pub fn fig5_cell_trace(tel: &mut Telemetry) -> String {
    let config = RemoteMergeConfig {
        devices: 2,
        remote_jobs_per_request: 4,
        remote_total_time: SimTime::from_millis(8),
        merge_time: SimTime::from_millis(10),
        dispatch_overhead: SimTime::from_millis(1),
    };
    let mut arrivals = PoissonArrivals::new(30.0, StdRng::seed_from_u64(42));
    let stats = simulate_remote_merge_traced(
        config,
        &mut arrivals,
        SimTime::from_secs(2),
        SimTime::from_millis(200),
        tel,
    );
    format!(
        "completed={} p99_ps={} throughput={:.4}",
        stats.completed,
        stats.request_latency.p99().as_picos(),
        stats.throughput_per_s,
    )
}

/// A staged firmware rollout of the deadlock-prone bundle across 50 000
/// servers (halts on detection), followed by a small quarantine/repair
/// episode. Exercises per-stage spans, the `rollout.halted` instant, and
/// the `repair.transition` event stream.
pub fn rollout_trace(tel: &mut Telemetry) -> String {
    let mut rng = StdRng::seed_from_u64(75);
    let outcome = simulate_rollout_traced(
        &Rollout::standard(),
        &FirmwareBundle::original(),
        50_000,
        &mut rng,
        tel,
    );
    let mut manager = QuarantineManager::new(QuarantineConfig::default(), 75);
    let mut image = ImageSpec::small(75).build();
    image.apply_flip(
        mtia_model::error_inject::InjectionTarget::EmbeddingRows,
        42,
        19,
    );
    let _ = manager.handle(
        &QuarantineRequest {
            device: 3,
            at: SimTime::from_millis(50),
            suspicion: 1.0,
        },
        &mut image,
    );
    manager.export_telemetry(tel);
    format!(
        "detected_at_stage={:?} impacted={} detection_ps={:?} repairs={}",
        outcome.detected_at_stage,
        outcome.servers_impacted,
        outcome.time_to_detection.map(|t| t.as_picos()),
        manager.logs().len(),
    )
}

/// The E21 quick rung's domain-aware arm: a host-0 crash against a
/// 4-shard cell on the 16-device toy tree, failover on. Exercises the
/// `serving.failover` span, the fault/promotion/restore instants, the
/// incident-latency histogram, and the failover counters.
pub fn failover_trace(tel: &mut Telemetry) -> String {
    use crate::chaos::{ChaosScenario, ChaosSchedule};
    use mtia_fleet::topology::TopologyConfig;
    use mtia_serving::failover::{FailoverConfig, PlacementPolicy};

    let topo = TopologyConfig::small().build();
    let seed = mtia_core::seed::derive(mtia_core::seed::DEFAULT_SEED, "trace.failover");
    let config = FailoverConfig::production(4, 2, seed);
    let mut schedule = ChaosSchedule::single_host_loss(&topo, seed);
    schedule.scenario = ChaosScenario::SingleHostLoss {
        host: 0,
        repair: SimTime::from_secs(20),
    };
    schedule.rate_per_s = 80.0;
    schedule.horizon = SimTime::from_secs(30);
    let report = schedule.run_traced(&topo, &config, PlacementPolicy::DomainAware, tel);
    format!(
        "completed={}/{} lost={} promotions={} restores={} recovery_ps={} ckpt_fp={:016x}",
        report.completed,
        report.offered,
        report.lost,
        report.promotions,
        report.restores,
        report.recovery_time.as_picos(),
        report.checkpoint_fingerprint,
    )
}

/// The global router riding out a region outage on the 64-device toy
/// fleet, arrival rate throttled so the golden stays small. Exercises
/// the per-request global-routing lifecycle chain — region ingress →
/// route decision (pod/tier/spillover attributes) → pod serve → cell —
/// plus the `serving.global` root span and the goodput counters.
pub fn global_router_trace(tel: &mut Telemetry) -> String {
    use crate::chaos::GlobalChaosSchedule;
    use mtia_fleet::topology::GlobalTopologyConfig;
    use mtia_serving::global::RoutingPolicy;

    let global = GlobalTopologyConfig::global_small().build();
    let seed = mtia_core::seed::derive(mtia_core::seed::DEFAULT_SEED, "trace.global");
    let mut schedule = GlobalChaosSchedule::region_outage_at_peak(&global, seed);
    // ~1 req/s per region over the 60 s horizon keeps the span count
    // (five spans per request) golden-sized while still spilling
    // cross-region traffic during the outage window.
    schedule.traffic.base_rate_per_s = 1.0;
    let report = schedule.run_traced(&global, RoutingPolicy::HealthAware, tel);
    format!(
        "offered={} full={} degraded={} shed={} lost={} spillover={} p99_ps={} trace_fp={:016x}",
        report.offered,
        report.served_full,
        report.served_degraded,
        report.shed,
        report.lost,
        report.spillover,
        report.request_latency.p99().as_picos(),
        report.trace_fingerprint,
    )
}

/// The gray-resilient arm riding out the fail-slow storm on the
/// 64-device toy fleet, arrival rate throttled so the golden stays
/// small. Exercises the hedge attribute on route spans, the per-copy
/// `device` attribute on cell spans, and the hedging/demotion counters
/// next to the goodput ledger.
pub fn gray_failure_trace(tel: &mut Telemetry) -> String {
    use crate::chaos::GlobalChaosSchedule;
    use mtia_fleet::topology::GlobalTopologyConfig;
    use mtia_serving::global::RoutingPolicy;

    let global = GlobalTopologyConfig::global_small().build();
    let seed = mtia_core::seed::derive(mtia_core::seed::DEFAULT_SEED, "trace.gray");
    let mut schedule = GlobalChaosSchedule::gray_failure(&global, seed);
    // ~1 req/s per region keeps the golden small; the storm still
    // throttles two devices per pod at the crest.
    schedule.traffic.base_rate_per_s = 1.0;
    let report = schedule.run_traced(&global, RoutingPolicy::GrayResilient, tel);
    format!(
        "offered={} full={} degraded={} lost={} hedges={}/{} dup={}+{} demotions={} trace_fp={:016x}",
        report.offered,
        report.served_full,
        report.served_degraded,
        report.lost,
        report.hedges_issued,
        report.hedge_wins,
        report.duplicates_suppressed,
        report.hedges_cancelled,
        report.outlier_demotions,
        report.trace_fingerprint,
    )
}

/// The adaptive circuit breaker's full lifecycle at production
/// thresholds, driven by a scripted outcome sequence: three pure-failure
/// windows walk the success EWMA through the 0.5 floor (`Closed → Open`),
/// the 2 s hold elapses (`Open → HalfOpen`), and three clean probes close
/// the edge again. Every state transition is pinned as an instant event,
/// so any change to the EWMA fold, the judgement thresholds, or the
/// probation protocol shifts this golden before it can shift E26.
pub fn breaker_lifecycle_trace(tel: &mut Telemetry) -> String {
    use mtia_core::telemetry::Json;
    use mtia_serving::resilience::{BreakerConfig, BreakerState, CircuitBreaker};

    let config = BreakerConfig::production();
    let mut breaker = CircuitBreaker::new(config);
    let tick = |n: u64| SimTime::from_millis(500 * n);
    tel.begin_span("resilience.breaker", "resilience", SimTime::ZERO);
    tel.span_attr("success_floor", Json::Num(config.success_floor));
    tel.span_attr("consecutive_bad", Json::UInt(config.consecutive_bad as u64));
    tel.span_attr("close_after", Json::UInt(config.close_after as u64));
    let mut transitions = Vec::new();
    let mut observe =
        |b: &CircuitBreaker, tel: &mut Telemetry, at: SimTime, last: &mut BreakerState| {
            if b.state() != *last {
                transitions.push(format!(
                    "{:?}@{}ms",
                    b.state(),
                    at.as_picos() / 1_000_000_000
                ));
                tel.instant(
                    "breaker.transition",
                    "resilience",
                    at,
                    vec![
                        ("state".into(), Json::Str(format!("{:?}", b.state()))),
                        ("opens".into(), Json::UInt(b.opens())),
                    ],
                );
                *last = b.state();
            }
        };
    let mut last = breaker.state();
    // Three pure-failure windows: EWMA 1.0 → 0.7 → 0.49 → 0.343.
    for w in 0..3u64 {
        for _ in 0..10 {
            breaker.record_failure(tick(w));
        }
        breaker.on_window(tick(w + 1));
        observe(&breaker, tel, tick(w + 1), &mut last);
    }
    // The 2 s hold: windows at the probe cadence until probation opens.
    for w in 3..8u64 {
        breaker.on_window(tick(w + 1));
        observe(&breaker, tel, tick(w + 1), &mut last);
    }
    // Probation: one probe at a time, three successes close the edge.
    for p in 0..config.close_after as u64 {
        breaker.note_probe();
        breaker.record_success(SimTime::from_millis(10));
        observe(&breaker, tel, tick(8 + p), &mut last);
    }
    tel.counter_add("breaker.opens", breaker.opens());
    tel.end_span(tick(8 + config.close_after as u64));
    format!(
        "final={:?} opens={} path={}",
        breaker.state(),
        breaker.opens(),
        transitions.join(">")
    )
}

/// The observer-effect + overhead budget checked by `scripts/ci.sh`.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// Per-scenario `(name, untraced fingerprint == traced fingerprint)`.
    pub identical: Vec<(&'static str, bool)>,
    /// Per-scenario canonical-export stability across two traced runs.
    pub stable: Vec<(&'static str, bool)>,
    /// Best-of-N wall clock for all scenarios untraced, seconds.
    pub untraced_s: f64,
    /// Best-of-N wall clock for all scenarios traced, seconds.
    pub traced_s: f64,
}

impl SmokeReport {
    /// Fractional overhead of tracing over the untraced baseline.
    pub fn overhead(&self) -> f64 {
        if self.untraced_s <= 0.0 {
            return 0.0;
        }
        (self.traced_s - self.untraced_s) / self.untraced_s
    }

    /// Whether the smoke passes: every fingerprint identical, every
    /// canonical export stable, and overhead under `max_overhead` (a
    /// small absolute grace absorbs timer noise on sub-millisecond
    /// scenarios).
    pub fn passed(&self, max_overhead: f64) -> bool {
        self.identical.iter().all(|&(_, ok)| ok)
            && self.stable.iter().all(|&(_, ok)| ok)
            && (self.overhead() <= max_overhead || self.traced_s - self.untraced_s < 0.05)
    }
}

/// Runs every scenario traced and untraced, best-of-`rounds` timing, and
/// reports fingerprint identity, canonical-export stability, and the
/// wall-clock overhead of tracing.
pub fn run_telemetry_smoke(rounds: usize) -> SmokeReport {
    let rounds = rounds.max(1);
    let list = scenarios();
    let mut identical = Vec::new();
    let mut stable = Vec::new();
    for scenario in &list {
        let untraced = (scenario.run)(&mut Telemetry::disabled());
        let mut tel_a = Telemetry::new_enabled();
        let traced = (scenario.run)(&mut tel_a);
        identical.push((scenario.name, untraced == traced));
        let mut tel_b = Telemetry::new_enabled();
        (scenario.run)(&mut tel_b);
        stable.push((
            scenario.name,
            tel_a.to_canonical_json() == tel_b.to_canonical_json(),
        ));
    }
    let best = |traced: bool| -> f64 {
        (0..rounds)
            .map(|_| {
                let start = Instant::now();
                for scenario in &list {
                    let mut tel = if traced {
                        Telemetry::new_enabled()
                    } else {
                        Telemetry::disabled()
                    };
                    (scenario.run)(&mut tel);
                    if traced {
                        // Exporting is part of the traced cost.
                        std::hint::black_box(tel.to_canonical_json());
                    }
                }
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let untraced_s = best(false);
    let traced_s = best(true);
    SmokeReport {
        identical,
        stable,
        untraced_s,
        traced_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_fingerprints_trace_free() {
        let list = scenarios();
        let mut names: Vec<_> = list.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), list.len());
        for scenario in &list {
            let untraced = (scenario.run)(&mut Telemetry::disabled());
            let mut tel = Telemetry::new_enabled();
            let traced = (scenario.run)(&mut tel);
            assert_eq!(untraced, traced, "{} fingerprint drifted", scenario.name);
            assert!(
                !tel.tracer.is_empty(),
                "{} recorded no spans",
                scenario.name
            );
            assert_eq!(tel.tracer.validate_nesting(), Ok(()));
        }
    }

    #[test]
    fn canonical_exports_are_reproducible() {
        for scenario in scenarios() {
            let mut a = Telemetry::new_enabled();
            let mut b = Telemetry::new_enabled();
            (scenario.run)(&mut a);
            (scenario.run)(&mut b);
            assert_eq!(
                a.to_canonical_json(),
                b.to_canonical_json(),
                "{} canonical export is unstable",
                scenario.name
            );
        }
    }

    #[test]
    fn smoke_passes_on_identity_checks() {
        let report = run_telemetry_smoke(1);
        assert!(report.identical.iter().all(|&(_, ok)| ok));
        assert!(report.stable.iter().all(|&(_, ok)| ok));
    }
}
