//! CLI contract tests for the `reproduce` binary, driven through the
//! real executable (`CARGO_BIN_EXE_reproduce`).

use std::process::Command;

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

#[test]
fn zero_match_filter_exits_nonzero_with_near_miss_suggestions() {
    let out = reproduce()
        .args(["--filter", "fig55", "--list"])
        .output()
        .expect("spawn reproduce");
    assert!(
        !out.status.success(),
        "zero-match filter must exit nonzero, got {:?}",
        out.status
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no experiments match the filter"),
        "stderr missing diagnostic: {stderr}"
    );
    assert!(
        stderr.contains("did you mean") && stderr.contains("fig5"),
        "stderr missing near-miss suggestion: {stderr}"
    );
}

#[test]
fn zero_match_filter_with_no_near_miss_still_fails() {
    let out = reproduce()
        .args(["--filter", "zzzzzzzzzzzz", "--list"])
        .output()
        .expect("spawn reproduce");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no experiments match the filter"));
    assert!(!stderr.contains("did you mean"));
    assert!(stderr.contains("--list"));
}

#[test]
fn list_prints_filtered_names() {
    let out = reproduce()
        .args(["--filter", "fig5", "--list"])
        .output()
        .expect("spawn reproduce");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim(), "fig5");
}

#[test]
fn trace_out_writes_scenario_traces() {
    let dir = std::env::temp_dir().join(format!("mtia-traces-{}", std::process::id()));
    let out = reproduce()
        .args(["--filter", "quick", "--trace-out"])
        .arg(&dir)
        .output()
        .expect("spawn reproduce");
    assert!(
        out.status.success(),
        "trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for name in ["quickstart", "fig5_cell", "rollout", "failover"] {
        let canonical = dir.join(format!("{name}.trace.json"));
        let chrome = dir.join(format!("{name}.chrome.json"));
        for path in [&canonical, &chrome] {
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
            mtia_core::telemetry::json::parse(&body)
                .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        }
    }
    let metrics = dir.join("experiments.metrics.json");
    let body = std::fs::read_to_string(&metrics).expect("experiments.metrics.json");
    assert!(body.contains("\"fig5\"") && body.contains("\"e19_rung\""));
    assert!(body.contains("\"e21_rung\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_smoke_passes_and_reports_every_scenario() {
    let out = reproduce()
        .args(["--filter", "quick", "--chaos-smoke"])
        .output()
        .expect("spawn reproduce");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "chaos smoke failed: {stderr}");
    assert!(stderr.contains("chaos smoke passed"), "stderr: {stderr}");
    for scenario in ["single-host-loss", "rolling-rack-loss", "partition-at-peak"] {
        assert!(stderr.contains(scenario), "missing {scenario}: {stderr}");
    }
}
