//! The MTIA graph compiler: the optimization layer between the PyTorch-level
//! model graphs (`mtia-model`) and the chip simulator (`mtia-sim`).
//!
//! Implements the §4.2/§6 optimizations the paper credits for most of the
//! case-study gains — vertical fusion, sibling-transpose-FC fusion,
//! horizontal LayerNorm batching, the MHA layout rewrite, delayed in-batch
//! broadcast, liveness-minimizing operator scheduling — plus the §4.1
//! FC kernel-variant generator with its exhaustive tuner and
//! approximate-nearest-neighbour performance database.
//!
//! # Quick tour
//!
//! ```
//! use mtia_compiler::{compile, CompilerOptions};
//! use mtia_model::models::dlrm::DlrmConfig;
//! use mtia_sim::chip::ChipSim;
//! use mtia_core::spec::chips;
//!
//! let graph = DlrmConfig::small(256).build();
//! let compiled = compile(&graph, CompilerOptions::all());
//! let report = compiled.run(&ChipSim::new(chips::mtia2i()));
//! assert!(report.throughput_samples_per_s() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pass;
pub mod passes;
pub mod perfdb;
pub mod plan;
pub mod scheduling;

pub use pass::{Pass, PassManager, PassResult};
pub use perfdb::{exhaustive_tune, FcShape, PerfDb, TuneOutcome};
pub use plan::{compile, Compiled, CompilerOptions};
pub use scheduling::min_liveness_order;
