//! The pass framework: graph-to-graph rewrites with a shared analysis.

use std::collections::HashMap;

use mtia_model::graph::{Graph, TensorId};

/// Result of running one pass.
#[derive(Debug, Clone)]
pub struct PassResult {
    /// The rewritten graph (unchanged if `rewrites == 0`).
    pub graph: Graph,
    /// Number of pattern rewrites applied.
    pub rewrites: usize,
}

/// A graph-rewriting pass.
pub trait Pass {
    /// Short pass name for logs.
    fn name(&self) -> &'static str;

    /// Runs the pass.
    fn run(&self, graph: &Graph) -> PassResult;
}

/// Producer/consumer indices over a graph, shared by the pattern matchers.
#[derive(Debug, Clone)]
pub struct GraphAnalysis {
    /// Producing node index per tensor.
    pub producer: HashMap<TensorId, usize>,
    /// Consuming node indices per tensor, in node order.
    pub consumers: HashMap<TensorId, Vec<usize>>,
}

impl GraphAnalysis {
    /// Builds the analysis.
    pub fn of(graph: &Graph) -> Self {
        let mut producer = HashMap::new();
        let mut consumers: HashMap<TensorId, Vec<usize>> = HashMap::new();
        for (i, node) in graph.nodes().iter().enumerate() {
            for &t in &node.outputs {
                producer.insert(t, i);
            }
            for &t in &node.inputs {
                consumers.entry(t).or_default().push(i);
            }
        }
        GraphAnalysis {
            producer,
            consumers,
        }
    }

    /// The single consumer of `t`, if exactly one node consumes it.
    pub fn sole_consumer(&self, t: TensorId) -> Option<usize> {
        match self.consumers.get(&t).map(|v| v.as_slice()) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// All consumers of `t`.
    pub fn consumers_of(&self, t: TensorId) -> &[usize] {
        self.consumers.get(&t).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Runs passes in order until each has been applied once, collecting a log
/// of `(pass name, rewrites)`.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Adds a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs all passes, each repeatedly until it reaches a fixpoint (bounded
    /// to avoid pathological loops). Returns the final graph and the log.
    pub fn run(&self, graph: &Graph) -> (Graph, Vec<(String, usize)>) {
        let mut g = graph.clone();
        let mut log = Vec::new();
        for pass in &self.passes {
            let mut total = 0;
            for _ in 0..32 {
                let result = pass.run(&g);
                total += result.rewrites;
                g = result.graph;
                if result.rewrites == 0 {
                    break;
                }
            }
            debug_assert_eq!(g.validate(), Ok(()), "pass {} broke the graph", pass.name());
            log.push((pass.name().to_string(), total));
        }
        (g, log)
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::DType;
    use mtia_model::graph::TensorKind;
    use mtia_model::ops::OpKind;
    use mtia_model::tensor::Shape;

    struct NullPass;
    impl Pass for NullPass {
        fn name(&self) -> &'static str {
            "null"
        }
        fn run(&self, graph: &Graph) -> PassResult {
            PassResult {
                graph: graph.clone(),
                rewrites: 0,
            }
        }
    }

    fn tiny() -> Graph {
        let mut g = Graph::new("t", 4);
        let a = g.add_tensor("a", Shape::vector(4), DType::Fp16, TensorKind::Input);
        let b = g.add_tensor("b", Shape::vector(4), DType::Fp16, TensorKind::Activation);
        let c = g.add_tensor("c", Shape::vector(4), DType::Fp16, TensorKind::Output);
        g.add_node("n0", OpKind::Cast { elems: 4 }, [a], [b]);
        g.add_node("n1", OpKind::Cast { elems: 4 }, [b], [c]);
        g
    }

    #[test]
    fn analysis_indexes_producers_and_consumers() {
        let g = tiny();
        let a = GraphAnalysis::of(&g);
        let b = g.nodes()[0].outputs[0];
        assert_eq!(a.producer[&b], 0);
        assert_eq!(a.sole_consumer(b), Some(1));
        let input = g.nodes()[0].inputs[0];
        assert_eq!(a.consumers_of(input), &[0]);
        assert!(!a.producer.contains_key(&input));
    }

    #[test]
    fn manager_runs_and_logs() {
        let g = tiny();
        let mut pm = PassManager::new();
        pm.add(NullPass);
        let (out, log) = pm.run(&g);
        assert_eq!(out, g);
        assert_eq!(log, vec![("null".to_string(), 0)]);
    }
}
