//! Delayed In-Batch Broadcast (§4.2, §6).
//!
//! IBB expands user-side rows to align user–ad pairs. When the ops that
//! follow are row-wise, broadcasting first makes them do `rows_out/rows_in`
//! times the work and duplicates activation data. This pass sinks the
//! broadcast past row-wise consumers, "reducing the memory footprint of
//! some models by up to 2×" and cutting redundant compute.

use mtia_model::graph::{Graph, Node, TensorKind};
use mtia_model::ops::OpKind;
use mtia_model::tensor::Shape;

use crate::pass::{GraphAnalysis, Pass, PassResult};

/// Rewrites a row-wise op from `rows_out` rows down to `rows_in` rows.
/// Returns `None` when the op is not row-wise (the broadcast cannot sink
/// past it). The second element is the op's output column width.
fn shrink_rows(op: &OpKind, rows_out: u64, rows_in: u64) -> Option<(OpKind, u64)> {
    match *op {
        OpKind::Fc {
            batch,
            in_features,
            out_features,
        } if batch == rows_out => Some((
            OpKind::Fc {
                batch: rows_in,
                in_features,
                out_features,
            },
            out_features,
        )),
        OpKind::Elementwise {
            elems,
            kind,
            arity: 1,
        } if elems % rows_out == 0 => {
            let cols = elems / rows_out;
            Some((
                OpKind::Elementwise {
                    elems: rows_in * cols,
                    kind,
                    arity: 1,
                },
                cols,
            ))
        }
        OpKind::LayerNorm { rows, cols } if rows == rows_out => Some((
            OpKind::LayerNorm {
                rows: rows_in,
                cols,
            },
            cols,
        )),
        OpKind::Cast { elems } if elems % rows_out == 0 => {
            let cols = elems / rows_out;
            Some((
                OpKind::Cast {
                    elems: rows_in * cols,
                },
                cols,
            ))
        }
        _ => None,
    }
}

/// The delayed-broadcast pass. Each run sinks every eligible broadcast one
/// step; the pass manager iterates it to a fixpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayedBroadcast;

impl Pass for DelayedBroadcast {
    fn name(&self) -> &'static str {
        "delayed-broadcast"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let analysis = GraphAnalysis::of(graph);
        let nodes = graph.nodes().to_vec();

        // Find the first sinkable broadcast.
        for (i, node) in nodes.iter().enumerate() {
            let OpKind::Broadcast {
                rows_in, rows_out, ..
            } = node.op
            else {
                continue;
            };
            if node.outputs.len() != 1 || rows_in >= rows_out {
                continue;
            }
            let t = node.outputs[0];
            let Some(j) = analysis.sole_consumer(t) else {
                continue;
            };
            let consumer = &nodes[j];
            // The broadcast output must be the consumer's row input.
            if consumer.inputs.first() != Some(&t) {
                continue;
            }
            let Some((shrunk_op, out_cols)) = shrink_rows(&consumer.op, rows_out, rows_in) else {
                continue;
            };

            // Rewrite: consumer first (at rows_in), broadcast after.
            let mut out = graph.clone();
            let dtype = out.tensor(consumer.outputs[0]).dtype;
            let small = out.add_tensor(
                format!("{}_pre_broadcast", consumer.name),
                Shape::matrix(rows_in, out_cols),
                dtype,
                TensorKind::Activation,
            );
            let mut new_nodes = nodes.clone();
            // The shrunk consumer takes the broadcast's input.
            let mut shrunk_inputs = consumer.inputs.clone();
            shrunk_inputs[0] = node.inputs[0];
            new_nodes[i] = Node {
                name: format!("{}_early", consumer.name),
                op: shrunk_op,
                inputs: shrunk_inputs,
                outputs: vec![small],
            };
            // The broadcast moves to the consumer's slot and widens.
            new_nodes[j] = Node {
                name: format!("{}_delayed", node.name),
                op: OpKind::Broadcast {
                    rows_in,
                    rows_out,
                    cols: out_cols,
                },
                inputs: vec![small],
                outputs: consumer.outputs.clone(),
            };
            out.set_nodes(new_nodes);
            debug_assert_eq!(out.validate(), Ok(()));
            return PassResult {
                graph: out,
                rewrites: 1,
            };
        }
        PassResult {
            graph: graph.clone(),
            rewrites: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use mtia_core::DType;
    use mtia_model::ops::EwKind;

    /// user (2 rows) --broadcast→ 64 rows → cast → elementwise → output.
    fn early_broadcast_graph() -> Graph {
        let mut g = Graph::new("ibb", 64);
        let user = g.add_tensor(
            "user",
            Shape::matrix(2, 256),
            DType::Fp16,
            TensorKind::Input,
        );
        let wide = g.add_tensor(
            "wide",
            Shape::matrix(64, 256),
            DType::Fp16,
            TensorKind::Activation,
        );
        g.add_node(
            "ibb",
            OpKind::Broadcast {
                rows_in: 2,
                rows_out: 64,
                cols: 256,
            },
            [user],
            [wide],
        );
        let casted = g.add_tensor(
            "casted",
            Shape::matrix(64, 256),
            DType::Fp16,
            TensorKind::Activation,
        );
        g.add_node("cast", OpKind::Cast { elems: 64 * 256 }, [wide], [casted]);
        let act = g.add_tensor(
            "act",
            Shape::matrix(64, 256),
            DType::Fp16,
            TensorKind::Output,
        );
        g.add_node(
            "gelu",
            OpKind::Elementwise {
                elems: 64 * 256,
                kind: EwKind::Nonlinear,
                arity: 1,
            },
            [casted],
            [act],
        );
        g
    }

    #[test]
    fn broadcast_sinks_past_rowwise_ops() {
        let g = early_broadcast_graph();
        let mut pm = PassManager::new();
        pm.add(DelayedBroadcast);
        let (out, log) = pm.run(&g);
        assert_eq!(log[0].1, 2, "broadcast sinks past cast and gelu");
        // The broadcast is now last.
        assert!(matches!(
            out.nodes().last().unwrap().op,
            OpKind::Broadcast { .. }
        ));
        assert_eq!(out.validate(), Ok(()));
    }

    #[test]
    fn delayed_broadcast_shrinks_flops_and_memory() {
        let g = early_broadcast_graph();
        let mut pm = PassManager::new();
        pm.add(DelayedBroadcast);
        let (out, _) = pm.run(&g);
        // Row-wise work now happens at 2 rows instead of 64.
        assert!(out.stats().flops.as_f64() < g.stats().flops.as_f64() / 10.0);
        // §6: "reducing the memory footprint of some models by up to 2x".
        // Here the only remaining wide tensor is the final output: 33 KB
        // live vs 64 KB before, a 1.94× reduction.
        assert!(out.peak_activation_bytes().as_f64() <= g.peak_activation_bytes().as_f64() * 0.55);
    }

    #[test]
    fn broadcast_does_not_sink_past_binary_ops() {
        let mut g = Graph::new("stop", 8);
        let user = g.add_tensor("user", Shape::matrix(1, 8), DType::Fp16, TensorKind::Input);
        let ads = g.add_tensor("ads", Shape::matrix(8, 8), DType::Fp16, TensorKind::Input);
        let wide = g.add_tensor(
            "wide",
            Shape::matrix(8, 8),
            DType::Fp16,
            TensorKind::Activation,
        );
        g.add_node(
            "ibb",
            OpKind::Broadcast {
                rows_in: 1,
                rows_out: 8,
                cols: 8,
            },
            [user],
            [wide],
        );
        let out = g.add_tensor("out", Shape::matrix(8, 8), DType::Fp16, TensorKind::Output);
        g.add_node(
            "pair_add",
            OpKind::Elementwise {
                elems: 64,
                kind: EwKind::Arithmetic,
                arity: 2,
            },
            [wide, ads],
            [out],
        );
        assert_eq!(DelayedBroadcast.run(&g).rewrites, 0);
    }

    #[test]
    fn shrink_rows_variants() {
        let fc = OpKind::Fc {
            batch: 64,
            in_features: 8,
            out_features: 16,
        };
        let (s, cols) = shrink_rows(&fc, 64, 2).unwrap();
        assert!(matches!(s, OpKind::Fc { batch: 2, .. }));
        assert_eq!(cols, 16);
        assert!(shrink_rows(&fc, 32, 2).is_none()); // batch mismatch
        let tbe_like = OpKind::Reshape { elems: 10 };
        assert!(shrink_rows(&tbe_like, 64, 2).is_none());
    }
}
