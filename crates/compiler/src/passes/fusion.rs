//! Fusion passes (§4.2, §6).
//!
//! * [`VerticalFusion`] — back-to-back producer→consumer fusion (FC +
//!   activation function, quantize/dequantize tails). Intermediates move
//!   into per-PE Local Memory and the pair launches as one kernel.
//! * [`SiblingTransposeFc`] — the §6 pattern: several parallel FC layers
//!   sharing one transposed input fuse with the transpose into a single
//!   operator ("shrunk the activation size and improved the cache hit
//!   rate ... up to a 15 % performance gain").
//! * [`LayerNormBatching`] — the §6 horizontal fusion: "hundreds of
//!   LayerNorm layers ... batched together horizontally to amortize the
//!   kernel launch overhead".

use std::collections::HashSet;

use mtia_model::graph::{Graph, Node};
use mtia_model::ops::OpKind;

use crate::pass::{GraphAnalysis, Pass, PassResult};

/// Whether `op` may be absorbed into its producer as a fused tail.
fn is_fusable_tail(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Elementwise { arity: 1, .. }
            | OpKind::Cast { .. }
            | OpKind::Quantize { .. }
            | OpKind::Dequantize { .. }
    )
}

/// Appends `tail` to `head`'s member list, wrapping in `Fused` as needed.
fn fuse_ops(head: OpKind, tail: OpKind) -> OpKind {
    match head {
        OpKind::Fused(mut members) => {
            members.push(tail);
            OpKind::Fused(members)
        }
        other => OpKind::Fused(vec![other, tail]),
    }
}

/// Back-to-back (vertical) fusion.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerticalFusion;

impl Pass for VerticalFusion {
    fn name(&self) -> &'static str {
        "vertical-fusion"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let analysis = GraphAnalysis::of(graph);
        let nodes = graph.nodes();
        let mut absorbed: HashSet<usize> = HashSet::new();
        let mut new_nodes: Vec<Node> = Vec::with_capacity(nodes.len());
        let mut rewrites = 0;

        for (i, original) in nodes.iter().enumerate() {
            if absorbed.contains(&i) {
                continue;
            }
            let mut node = original.clone();
            // Greedily absorb a chain of single-consumer fusable tails.
            loop {
                if node.outputs.len() != 1 {
                    break;
                }
                let t = node.outputs[0];
                let Some(j) = analysis.sole_consumer(t) else {
                    break;
                };
                if absorbed.contains(&j) || j <= i {
                    break;
                }
                let tail = &nodes[j];
                // The tail must depend on nothing but the fused output.
                if tail.inputs != [t] || !is_fusable_tail(&tail.op) {
                    break;
                }
                node.op = fuse_ops(node.op, tail.op.clone());
                node.name = format!("{}+{}", node.name, tail.name);
                node.outputs = tail.outputs.clone();
                absorbed.insert(j);
                rewrites += 1;
            }
            new_nodes.push(node);
        }

        let mut out = graph.clone();
        out.set_nodes(new_nodes);
        PassResult {
            graph: out,
            rewrites,
        }
    }
}

/// Sibling-transpose-FC fusion (§6).
#[derive(Debug, Clone, Copy, Default)]
pub struct SiblingTransposeFc;

impl Pass for SiblingTransposeFc {
    fn name(&self) -> &'static str {
        "sibling-transpose-fc"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let analysis = GraphAnalysis::of(graph);
        let nodes = graph.nodes();
        let mut absorbed: HashSet<usize> = HashSet::new();
        let mut new_nodes: Vec<Node> = Vec::with_capacity(nodes.len());
        let mut rewrites = 0;

        for (i, original) in nodes.iter().enumerate() {
            if absorbed.contains(&i) {
                continue;
            }
            let OpKind::Transpose { .. } = original.op else {
                new_nodes.push(original.clone());
                continue;
            };
            if original.outputs.len() != 1 {
                new_nodes.push(original.clone());
                continue;
            }
            let t = original.outputs[0];
            let consumer_ids = analysis.consumers_of(t).to_vec();
            // All consumers must be sibling FCs over the transposed tensor.
            let mut siblings = Vec::new();
            for &j in &consumer_ids {
                if let OpKind::Fc {
                    batch,
                    in_features,
                    out_features,
                } = nodes[j].op
                {
                    if nodes[j].inputs.first() == Some(&t) && !absorbed.contains(&j) {
                        siblings.push((j, batch, in_features, out_features));
                        continue;
                    }
                }
                siblings.clear();
                break;
            }
            if siblings.len() < 2
                || !siblings
                    .windows(2)
                    .all(|w| w[0].1 == w[1].1 && w[0].2 == w[1].2)
            {
                new_nodes.push(original.clone());
                continue;
            }

            // Build the combined operator.
            let (_, batch, in_features, _) = siblings[0];
            let total_out: u64 = siblings.iter().map(|s| s.3).sum();
            let combined = OpKind::Fused(vec![
                original.op.clone(),
                OpKind::Fc {
                    batch,
                    in_features,
                    out_features: total_out,
                },
            ]);
            let mut inputs = original.inputs.clone();
            let mut outputs = Vec::new();
            let mut name = format!("{}+fc_x{}", original.name, siblings.len());
            for &(j, ..) in &siblings {
                absorbed.insert(j);
                // Carry the weight inputs and all outputs forward.
                inputs.extend(nodes[j].inputs.iter().skip(1).copied());
                outputs.extend(nodes[j].outputs.iter().copied());
                name.push('_');
            }
            new_nodes.push(Node {
                name,
                op: combined,
                inputs,
                outputs,
            });
            rewrites += 1;
        }

        let mut out = graph.clone();
        out.set_nodes(new_nodes);
        PassResult {
            graph: out,
            rewrites,
        }
    }
}

/// Horizontal LayerNorm batching (§6).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerNormBatching;

impl Pass for LayerNormBatching {
    fn name(&self) -> &'static str {
        "layernorm-batching"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let analysis = GraphAnalysis::of(graph);
        let nodes = graph.nodes();

        // Group LayerNorms by normalized width; a group merges when every
        // member's inputs are produced before the group's first member and
        // no member's output is consumed before the group's last member.
        let ln_cols = |op: &OpKind| match op {
            OpKind::LayerNorm { cols, .. } => Some(*cols),
            _ => None,
        };

        let mut merged_into: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut used: HashSet<usize> = HashSet::new();
        for i in 0..nodes.len() {
            if used.contains(&i) {
                continue;
            }
            let Some(cols) = ln_cols(&nodes[i].op) else {
                continue;
            };
            let mut group = vec![i];
            for (j, node_j) in nodes.iter().enumerate().skip(i + 1) {
                if used.contains(&j) || ln_cols(&node_j.op) != Some(cols) {
                    continue;
                }
                // j's inputs must be produced before i.
                let inputs_ready = node_j
                    .inputs
                    .iter()
                    .all(|t| analysis.producer.get(t).map(|&p| p < i).unwrap_or(true));
                if inputs_ready {
                    group.push(j);
                }
            }
            if group.len() >= 2 {
                // Members' outputs must not be consumed before the anchor.
                let anchor = i;
                let safe = group.iter().all(|&m| {
                    nodes[m].outputs.iter().all(|t| {
                        analysis
                            .consumers_of(*t)
                            .iter()
                            .all(|&c| c > anchor || c >= m)
                    })
                });
                if safe {
                    for &m in &group {
                        used.insert(m);
                        merged_into[m] = Some(i);
                    }
                    groups.push(group);
                }
            }
        }

        if groups.is_empty() {
            return PassResult {
                graph: graph.clone(),
                rewrites: 0,
            };
        }

        let mut new_nodes = Vec::with_capacity(nodes.len());
        let mut rewrites = 0;
        for (i, node) in nodes.iter().enumerate() {
            match merged_into[i] {
                Some(anchor) if anchor == i => {
                    let group = groups.iter().find(|g| g[0] == i).expect("anchor has group");
                    let mut rows = 0;
                    let mut cols = 0;
                    let mut inputs = Vec::new();
                    let mut outputs = Vec::new();
                    for &m in group {
                        if let OpKind::LayerNorm { rows: r, cols: c } = nodes[m].op {
                            rows += r;
                            cols = c;
                        }
                        inputs.extend(nodes[m].inputs.iter().copied());
                        outputs.extend(nodes[m].outputs.iter().copied());
                    }
                    new_nodes.push(Node {
                        name: format!("batched_ln_x{}", group.len()),
                        op: OpKind::LayerNorm { rows, cols },
                        inputs,
                        outputs,
                    });
                    rewrites += group.len() - 1;
                }
                Some(_) => {} // merged into an earlier anchor
                None => new_nodes.push(node.clone()),
            }
        }

        let mut out = graph.clone();
        out.set_nodes(new_nodes);
        PassResult {
            graph: out,
            rewrites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::DType;
    use mtia_model::graph::TensorKind;
    use mtia_model::models::dlrm::DlrmConfig;
    use mtia_model::tensor::Shape;

    #[test]
    fn vertical_fusion_absorbs_relu_chains() {
        let g = DlrmConfig::small(64).build();
        let before = g.nodes().len();
        let result = VerticalFusion.run(&g);
        assert!(result.rewrites >= 5, "rewrites {}", result.rewrites);
        assert_eq!(result.graph.nodes().len(), before - result.rewrites);
        assert_eq!(result.graph.validate(), Ok(()));
        // FLOPS are preserved by fusion.
        assert_eq!(
            result.graph.stats().flops.as_f64(),
            g.stats().flops.as_f64()
        );
    }

    #[test]
    fn vertical_fusion_reduces_liveness() {
        let g = DlrmConfig::small(256).build();
        let fused = VerticalFusion.run(&g).graph;
        assert!(fused.peak_activation_bytes() <= g.peak_activation_bytes());
    }

    #[test]
    fn vertical_fusion_skips_multi_consumer_tensors() {
        // a → cast → b; b consumed by two nodes → no fusion of the cast.
        let mut g = Graph::new("t", 1);
        let a = g.add_tensor("a", Shape::vector(8), DType::Fp16, TensorKind::Input);
        let b = g.add_tensor("b", Shape::vector(8), DType::Fp16, TensorKind::Activation);
        let c = g.add_tensor("c", Shape::vector(8), DType::Fp16, TensorKind::Output);
        let d = g.add_tensor("d", Shape::vector(8), DType::Fp16, TensorKind::Output);
        g.add_node("p", OpKind::Cast { elems: 8 }, [a], [b]);
        g.add_node("c1", OpKind::Cast { elems: 8 }, [b], [c]);
        g.add_node("c2", OpKind::Cast { elems: 8 }, [b], [d]);
        let result = VerticalFusion.run(&g);
        assert_eq!(result.rewrites, 0);
    }

    fn sibling_graph() -> Graph {
        let mut g = Graph::new("sib", 32);
        let x = g.add_tensor("x", Shape::matrix(64, 32), DType::Fp16, TensorKind::Input);
        let xt = g.add_tensor(
            "xt",
            Shape::matrix(32, 64),
            DType::Fp16,
            TensorKind::Activation,
        );
        g.add_node(
            "transpose",
            OpKind::Transpose { rows: 64, cols: 32 },
            [x],
            [xt],
        );
        for k in 0..3u64 {
            let w = g.add_tensor(
                format!("w{k}"),
                Shape::matrix(64, 128),
                DType::Fp16,
                TensorKind::Weight,
            );
            let o = g.add_tensor(
                format!("o{k}"),
                Shape::matrix(32, 128),
                DType::Fp16,
                TensorKind::Output,
            );
            g.add_node(
                format!("fc{k}"),
                OpKind::Fc {
                    batch: 32,
                    in_features: 64,
                    out_features: 128,
                },
                [xt, w],
                [o],
            );
        }
        g
    }

    #[test]
    fn sibling_transpose_fc_merges() {
        let g = sibling_graph();
        let result = SiblingTransposeFc.run(&g);
        assert_eq!(result.rewrites, 1);
        assert_eq!(result.graph.nodes().len(), 1);
        assert_eq!(result.graph.validate(), Ok(()));
        let node = &result.graph.nodes()[0];
        match &node.op {
            OpKind::Fused(members) => {
                assert!(matches!(members[0], OpKind::Transpose { .. }));
                assert!(matches!(
                    members[1],
                    OpKind::Fc {
                        out_features: 384,
                        ..
                    }
                ));
            }
            other => panic!("expected fused, got {other}"),
        }
        assert_eq!(node.outputs.len(), 3);
    }

    #[test]
    fn sibling_fusion_requires_at_least_two_fcs() {
        let mut g = Graph::new("one", 8);
        let x = g.add_tensor("x", Shape::matrix(8, 8), DType::Fp16, TensorKind::Input);
        let xt = g.add_tensor(
            "xt",
            Shape::matrix(8, 8),
            DType::Fp16,
            TensorKind::Activation,
        );
        let w = g.add_tensor("w", Shape::matrix(8, 8), DType::Fp16, TensorKind::Weight);
        let o = g.add_tensor("o", Shape::matrix(8, 8), DType::Fp16, TensorKind::Output);
        g.add_node("t", OpKind::Transpose { rows: 8, cols: 8 }, [x], [xt]);
        g.add_node(
            "fc",
            OpKind::Fc {
                batch: 8,
                in_features: 8,
                out_features: 8,
            },
            [xt, w],
            [o],
        );
        assert_eq!(SiblingTransposeFc.run(&g).rewrites, 0);
    }

    #[test]
    fn layernorm_batching_merges_independent_lns() {
        let mut g = Graph::new("lns", 16);
        let mut outs = Vec::new();
        let mut lns = Vec::new();
        for k in 0..4u64 {
            let i = g.add_tensor(
                format!("in{k}"),
                Shape::matrix(16, 64),
                DType::Fp16,
                TensorKind::Input,
            );
            let o = g.add_tensor(
                format!("ln{k}_out"),
                Shape::matrix(16, 64),
                DType::Fp16,
                TensorKind::Activation,
            );
            lns.push((i, o));
            outs.push(o);
        }
        for (k, (i, o)) in lns.iter().enumerate() {
            g.add_node(
                format!("ln{k}"),
                OpKind::LayerNorm { rows: 16, cols: 64 },
                [*i],
                [*o],
            );
        }
        // A consumer of all outputs.
        let fin = g.add_tensor("fin", Shape::vector(1), DType::Fp16, TensorKind::Output);
        g.add_node(
            "sink",
            OpKind::Concat {
                rows: 16,
                cols_total: 256,
                num_inputs: 4,
            },
            outs,
            [fin],
        );

        let result = LayerNormBatching.run(&g);
        assert_eq!(result.rewrites, 3);
        assert_eq!(result.graph.validate(), Ok(()));
        let merged = result
            .graph
            .nodes()
            .iter()
            .find(|n| n.name.starts_with("batched_ln"))
            .expect("merged node");
        assert!(matches!(
            merged.op,
            OpKind::LayerNorm { rows: 64, cols: 64 }
        ));
        assert_eq!(result.graph.nodes().len(), 2);
    }

    #[test]
    fn layernorm_batching_respects_dependencies() {
        // ln2 depends on ln1's output → cannot merge.
        let mut g = Graph::new("dep", 8);
        let a = g.add_tensor("a", Shape::matrix(8, 32), DType::Fp16, TensorKind::Input);
        let b = g.add_tensor(
            "b",
            Shape::matrix(8, 32),
            DType::Fp16,
            TensorKind::Activation,
        );
        let c = g.add_tensor("c", Shape::matrix(8, 32), DType::Fp16, TensorKind::Output);
        g.add_node("ln1", OpKind::LayerNorm { rows: 8, cols: 32 }, [a], [b]);
        g.add_node("ln2", OpKind::LayerNorm { rows: 8, cols: 32 }, [b], [c]);
        assert_eq!(LayerNormBatching.run(&g).rewrites, 0);
    }
}
