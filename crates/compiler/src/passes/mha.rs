//! The §6 MHA layout rewrite: "we replaced a sequence of operators (i.e.,
//! Slice, Reshape, Concat) with a single custom Transpose kernel".

use std::collections::HashSet;

use mtia_model::graph::{Graph, Node};
use mtia_model::ops::OpKind;

use crate::pass::{GraphAnalysis, Pass, PassResult};

/// Rewrites `Slice → Reshape → Concat` chains into one `Transpose`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MhaLayoutRewrite;

impl Pass for MhaLayoutRewrite {
    fn name(&self) -> &'static str {
        "mha-layout-rewrite"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let analysis = GraphAnalysis::of(graph);
        let nodes = graph.nodes();
        let mut absorbed: HashSet<usize> = HashSet::new();
        let mut new_nodes: Vec<Node> = Vec::with_capacity(nodes.len());
        let mut rewrites = 0;

        for (i, node) in nodes.iter().enumerate() {
            if absorbed.contains(&i) {
                continue;
            }
            let OpKind::Slice { .. } = node.op else {
                new_nodes.push(node.clone());
                continue;
            };
            // slice → reshape (sole consumer, sole input)
            let chain = (|| {
                let t1 = *node.outputs.first()?;
                let j = analysis.sole_consumer(t1)?;
                let reshape = &nodes[j];
                if !matches!(reshape.op, OpKind::Reshape { .. }) || reshape.inputs != [t1] {
                    return None;
                }
                let t2 = *reshape.outputs.first()?;
                let k = analysis.sole_consumer(t2)?;
                let concat = &nodes[k];
                match concat.op {
                    OpKind::Concat {
                        rows, cols_total, ..
                    } if concat.inputs == [t2] => Some((j, k, rows, cols_total)),
                    _ => None,
                }
            })();

            match chain {
                Some((j, k, rows, cols_total))
                    if !absorbed.contains(&j) && !absorbed.contains(&k) =>
                {
                    absorbed.insert(j);
                    absorbed.insert(k);
                    new_nodes.push(Node {
                        name: format!("{}_as_transpose", node.name),
                        op: OpKind::Transpose {
                            rows,
                            cols: cols_total,
                        },
                        inputs: node.inputs.clone(),
                        outputs: nodes[k].outputs.clone(),
                    });
                    rewrites += 1;
                }
                _ => new_nodes.push(node.clone()),
            }
        }

        let mut out = graph.clone();
        out.set_nodes(new_nodes);
        PassResult {
            graph: out,
            rewrites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::DType;
    use mtia_model::graph::TensorKind;
    use mtia_model::tensor::Shape;

    fn slice_reshape_concat() -> Graph {
        let mut g = Graph::new("mha", 8);
        let x = g.add_tensor("x", Shape::matrix(8, 64), DType::Fp16, TensorKind::Input);
        let s = g.add_tensor(
            "s",
            Shape::matrix(8, 32),
            DType::Fp16,
            TensorKind::Activation,
        );
        let r = g.add_tensor(
            "r",
            Shape::matrix(16, 16),
            DType::Fp16,
            TensorKind::Activation,
        );
        let c = g.add_tensor("c", Shape::matrix(16, 16), DType::Fp16, TensorKind::Output);
        g.add_node("slice", OpKind::Slice { rows: 8, cols: 32 }, [x], [s]);
        g.add_node("reshape", OpKind::Reshape { elems: 256 }, [s], [r]);
        g.add_node(
            "concat",
            OpKind::Concat {
                rows: 16,
                cols_total: 16,
                num_inputs: 1,
            },
            [r],
            [c],
        );
        g
    }

    #[test]
    fn chain_becomes_single_transpose() {
        let g = slice_reshape_concat();
        let result = MhaLayoutRewrite.run(&g);
        assert_eq!(result.rewrites, 1);
        assert_eq!(result.graph.nodes().len(), 1);
        assert!(matches!(
            result.graph.nodes()[0].op,
            OpKind::Transpose { rows: 16, cols: 16 }
        ));
        assert_eq!(result.graph.validate(), Ok(()));
    }

    #[test]
    fn partial_chain_is_untouched() {
        let mut g = Graph::new("partial", 8);
        let x = g.add_tensor("x", Shape::matrix(8, 64), DType::Fp16, TensorKind::Input);
        let s = g.add_tensor("s", Shape::matrix(8, 32), DType::Fp16, TensorKind::Output);
        g.add_node("slice", OpKind::Slice { rows: 8, cols: 32 }, [x], [s]);
        assert_eq!(MhaLayoutRewrite.run(&g).rewrites, 0);
    }

    #[test]
    fn rewrite_reduces_node_time_budget() {
        // Three layout ops collapse to one: fewer launches, less traffic.
        let g = slice_reshape_concat();
        let rewritten = MhaLayoutRewrite.run(&g).graph;
        assert!(rewritten.nodes().len() < g.nodes().len());
    }
}
