//! Graph-optimization passes (§4.2, §6).

pub mod broadcast;
pub mod fusion;
pub mod mha;
pub mod quantize;
