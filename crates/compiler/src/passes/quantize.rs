//! Selective FC quantization (§4.4).
//!
//! "Typically, only a few large layers show performance gains due to
//! quantization ... In practice, quantizing only the largest FC layers to
//! amortize the overhead is most effective." This pass rewrites FC nodes
//! whose weight tensors exceed a size threshold into dynamic-INT8
//! [`OpKind::QuantizedFc`] nodes and leaves everything else in FP16 (the
//! input/output-adjacent layers the paper keeps unquantized for quality).

use mtia_core::units::Bytes;
use mtia_core::DType;
use mtia_model::graph::Graph;
use mtia_model::ops::OpKind;

use crate::pass::{Pass, PassResult};

/// The quantization pass with its size threshold.
#[derive(Debug, Clone, Copy)]
pub struct SelectiveQuantization {
    /// Minimum FP16 weight-tensor size for a layer to be quantized.
    pub min_weight_bytes: Bytes,
}

impl Default for SelectiveQuantization {
    fn default() -> Self {
        // §4.4: only "the largest FC layers" amortize the overhead.
        SelectiveQuantization {
            min_weight_bytes: Bytes::from_mib(8),
        }
    }
}

impl Pass for SelectiveQuantization {
    fn name(&self) -> &'static str {
        "selective-quantization"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let mut rewrites = 0;
        let mut nodes = graph.nodes().to_vec();
        for node in &mut nodes {
            if let OpKind::Fc {
                batch,
                in_features,
                out_features,
            } = node.op
            {
                let weight = DType::Fp16.bytes_for(in_features * out_features);
                if weight >= self.min_weight_bytes {
                    node.op = OpKind::QuantizedFc {
                        batch,
                        in_features,
                        out_features,
                    };
                    node.name = format!("{}_int8", node.name);
                    rewrites += 1;
                }
            }
        }
        let mut out = graph.clone();
        out.set_nodes(nodes);
        PassResult {
            graph: out,
            rewrites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_model::models::zoo;

    #[test]
    fn only_large_layers_are_quantized() {
        let models = zoo::fig6_models();
        let g = models.iter().find(|m| m.name == "HC1").unwrap().graph();
        let result = SelectiveQuantization::default().run(&g);
        assert!(result.rewrites > 0, "HC1 has multi-MiB FC layers");
        let total_fcs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Fc { .. }))
            .count();
        assert!(
            result.rewrites < total_fcs,
            "small layers must stay FP16: {}/{total_fcs}",
            result.rewrites
        );
        assert_eq!(result.graph.validate(), Ok(()));
    }

    #[test]
    fn threshold_zero_quantizes_everything() {
        let models = zoo::fig6_models();
        let g = models.iter().find(|m| m.name == "LC2").unwrap().graph();
        let all = SelectiveQuantization {
            min_weight_bytes: Bytes::ZERO,
        }
        .run(&g);
        let fcs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Fc { .. }))
            .count();
        assert_eq!(all.rewrites, fcs);
    }

    #[test]
    fn quantization_preserves_gemm_flops_plus_overhead() {
        let models = zoo::fig6_models();
        let g = models.iter().find(|m| m.name == "HC1").unwrap().graph();
        let q = SelectiveQuantization::default().run(&g).graph;
        // FLOPs grow only by the quant/dequant elementwise work.
        let before = g.stats().flops.as_f64();
        let after = q.stats().flops.as_f64();
        assert!(after >= before);
        assert!(after < before * 1.05, "overhead flops {before} → {after}");
    }
}
