//! FC kernel-variant tuning: exhaustive search and the performance-database
//! shortcut (§4.1).
//!
//! "Initially, we ran exhaustive tests to cover all FC shapes in a model
//! with different data placements, which proved to be too time-consuming.
//! Consequently, we created a performance database and used approximate
//! nearest neighbor search to pick FC kernel variants, which reduced FC
//! tuning time by up to 1000× while achieving kernel performance within 5 %
//! of exhaustive FC tuning."
//!
//! Here, "tuning time" is counted in kernel evaluations: the exhaustive
//! tuner measures every generated variant; the database answers with a
//! single nearest-neighbour lookup.

use std::hash::Hash;

use mtia_core::memo::{stable_key, CacheStats, ShardedCache};
use mtia_core::pool;
use mtia_core::units::SimTime;
use mtia_sim::kernels::{FcVariant, Stationarity};

/// An FC shape (m = batch rows, k = input features, n = output features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcShape {
    /// Batch rows.
    pub m: u64,
    /// Reduction dimension.
    pub k: u64,
    /// Output features.
    pub n: u64,
}

impl FcShape {
    /// Creates a shape.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "zero FC dimension");
        FcShape { m, k, n }
    }

    /// Log-space feature vector for nearest-neighbour search.
    fn features(&self) -> [f64; 3] {
        [
            (self.m as f64).ln(),
            (self.k as f64).ln(),
            (self.n as f64).ln(),
        ]
    }

    /// Euclidean distance in log-shape space.
    fn distance(&self, other: &FcShape) -> f64 {
        let a = self.features();
        let b = other.features();
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

/// The §4.1 kernel generator: enumerates the variant space for one shape.
pub fn enumerate_variants(shape: FcShape) -> Vec<FcVariant> {
    let mut variants = Vec::new();
    let blocks_mk = [32u64, 64, 128, 256, 512];
    let blocks_n = [64u64, 128, 256, 512];
    for stationarity in [
        Stationarity::Weight,
        Stationarity::Input,
        Stationarity::Output,
    ] {
        for &block_m in &blocks_mk {
            for &block_k in &blocks_mk {
                for &block_n in &blocks_n {
                    for broadcast_weights in [false, true] {
                        for prefetch in [false, true] {
                            variants.push(FcVariant {
                                stationarity,
                                block_m,
                                block_k,
                                block_n,
                                broadcast_weights,
                                prefetch,
                                extra_m_tiling: shape.m > 4096,
                            });
                        }
                    }
                }
            }
        }
    }
    variants
}

/// Result of one tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneOutcome {
    /// The chosen variant.
    pub variant: FcVariant,
    /// Its (simulated) kernel time.
    pub time: SimTime,
    /// How many kernel evaluations the tuner spent.
    pub evaluations: usize,
}

/// Exhaustively evaluates every generated variant and returns the best.
pub fn exhaustive_tune(
    shape: FcShape,
    eval: &mut impl FnMut(FcShape, FcVariant) -> SimTime,
) -> TuneOutcome {
    let variants = enumerate_variants(shape);
    let mut best: Option<(SimTime, FcVariant)> = None;
    let evaluations = variants.len();
    for v in variants {
        let t = eval(shape, v);
        if best.map(|(bt, _)| t < bt).unwrap_or(true) {
            best = Some((t, v));
        }
    }
    let (time, variant) = best.expect("variant space is non-empty");
    TuneOutcome {
        variant,
        time,
        evaluations,
    }
}

/// Exhaustively evaluates every variant on the [`pool`] workers.
///
/// Equivalent to [`exhaustive_tune`] — same winner, same tie-breaking
/// (earliest-enumerated variant among time ties), chosen by a
/// deterministic index-ordered argmin over the parallel results — but
/// the evaluation fan-out runs concurrently, which is where exhaustive
/// tuning spends all of its time.
pub fn exhaustive_tune_par(
    shape: FcShape,
    eval: &(impl Fn(FcShape, FcVariant) -> SimTime + Sync),
) -> TuneOutcome {
    let variants = enumerate_variants(shape);
    let evaluations = variants.len();
    let times = pool::parallel_map((0..variants.len()).collect(), |_, i| {
        eval(shape, variants[i])
    });
    let (best_idx, time) = times
        .iter()
        .copied()
        .enumerate()
        .min_by(|(ia, ta), (ib, tb)| ta.cmp(tb).then(ia.cmp(ib)))
        .expect("variant space is non-empty");
    TuneOutcome {
        variant: variants[best_idx],
        time,
        evaluations,
    }
}

/// A memoized, thread-safe wrapper around a kernel-evaluation function.
///
/// Tuning sweeps revisit `(shape, variant)` cells: the grid seeding, the
/// exhaustive baselines, and the validating lookups all call the same
/// simulator-backed evaluation. `MemoEval` interns results in a
/// lock-sharded cache so each distinct cell is simulated once per
/// process; being `&self`-based it is shared freely across the
/// [`pool`] workers.
///
/// The wrapped function must be pure — the cache returns the first
/// computed value for a key forever after.
#[derive(Debug)]
pub struct MemoEval<F> {
    inner: F,
    cache: ShardedCache<SimTime>,
}

impl<F: Fn(FcShape, FcVariant) -> SimTime> MemoEval<F> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: F) -> Self {
        MemoEval {
            inner,
            cache: ShardedCache::default(),
        }
    }

    /// Evaluates `(shape, variant)`, consulting the cache first.
    pub fn eval(&self, shape: FcShape, variant: FcVariant) -> SimTime {
        let key = stable_key(|h| {
            shape.hash(h);
            variant.hash(h);
        });
        self.cache
            .get_or_insert_with(key, || (self.inner)(shape, variant))
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Borrowing closure adapter for the `&mut impl FnMut` tuning APIs
    /// and (when the inner evaluator is `Sync`) the parallel ones.
    pub fn as_fn(&self) -> impl Fn(FcShape, FcVariant) -> SimTime + Sync + '_
    where
        F: Sync,
    {
        move |shape, variant| self.eval(shape, variant)
    }
}

/// The performance database: tuned shapes and their best variants.
#[derive(Debug, Clone, Default)]
pub struct PerfDb {
    entries: Vec<(FcShape, FcVariant)>,
}

impl PerfDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        PerfDb::default()
    }

    /// Number of stored shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the tuned variant for a shape.
    pub fn insert(&mut self, shape: FcShape, variant: FcVariant) {
        self.entries.push((shape, variant));
    }

    /// Seeds the database by exhaustively tuning a grid of representative
    /// shapes. Returns total evaluations spent (amortized over all future
    /// lookups).
    pub fn seed_grid(
        &mut self,
        ms: &[u64],
        ks: &[u64],
        ns: &[u64],
        eval: &mut impl FnMut(FcShape, FcVariant) -> SimTime,
    ) -> usize {
        let mut total = 0;
        for &m in ms {
            for &k in ks {
                for &n in ns {
                    let shape = FcShape::new(m, k, n);
                    let outcome = exhaustive_tune(shape, eval);
                    total += outcome.evaluations;
                    self.insert(shape, outcome.variant);
                }
            }
        }
        total
    }

    /// [`seed_grid`](Self::seed_grid) with the grid's shapes exhausted
    /// on the [`pool`] workers. The database ends up with exactly the
    /// same entries in the same order: the grid is enumerated
    /// deterministically and results are collected by input index, so
    /// threading never reorders (or changes) the stored variants.
    pub fn seed_grid_par(
        &mut self,
        ms: &[u64],
        ks: &[u64],
        ns: &[u64],
        eval: &(impl Fn(FcShape, FcVariant) -> SimTime + Sync),
    ) -> usize {
        let mut shapes = Vec::new();
        for &m in ms {
            for &k in ks {
                for &n in ns {
                    shapes.push(FcShape::new(m, k, n));
                }
            }
        }
        let outcomes = pool::parallel_map(shapes, |_, shape| {
            (shape, exhaustive_tune(shape, &mut |s, v| eval(s, v)))
        });
        let mut total = 0;
        for (shape, outcome) in outcomes {
            total += outcome.evaluations;
            self.insert(shape, outcome.variant);
        }
        total
    }

    /// Picks a variant for `shape` by approximate-nearest-neighbour lookup
    /// and a single validating evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the database is empty.
    pub fn lookup_tune(
        &self,
        shape: FcShape,
        eval: &mut impl FnMut(FcShape, FcVariant) -> SimTime,
    ) -> TuneOutcome {
        assert!(!self.is_empty(), "performance database is empty");
        let (_, nearest_variant) = self
            .entries
            .iter()
            .min_by(|(a, _), (b, _)| {
                shape
                    .distance(a)
                    .partial_cmp(&shape.distance(b))
                    .expect("finite distances")
            })
            .expect("non-empty database");
        // Re-block the borrowed variant to the query shape's alignment: the
        // database stores the *strategy* (stationarity, broadcast,
        // prefetch); block sizes transfer as-is.
        let variant = *nearest_variant;
        let time = eval(shape, variant);
        TuneOutcome {
            variant,
            time,
            evaluations: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::{chips, EccMode};
    use mtia_core::units::Bytes;
    use mtia_core::DType;
    use mtia_model::ops::OpKind;
    use mtia_sim::kernels::{cost_op, KernelEnv};
    use mtia_sim::mem::lpddr::LpddrController;
    use mtia_sim::mem::sram::place_model;
    use mtia_sim::noc::NocModel;

    /// A simulator-backed evaluation function.
    fn sim_eval() -> impl FnMut(FcShape, FcVariant) -> SimTime {
        let chip = chips::mtia2i();
        move |shape, variant| {
            let placement =
                place_model(&chip.sram, Bytes::from_mib(40), Bytes::from_mib(200), 0.75);
            let env = KernelEnv {
                chip: &chip,
                noc: NocModel::new(chip.noc.clone()),
                dram: LpddrController::new(chip.dram.clone(), EccMode::ControllerEcc),
                placement,
                weight_resident_fraction: 0.5,
                tbe_hit_rate: 0.5,
                skip_writeback_hints: true,
            };
            let op = OpKind::Fc {
                batch: shape.m,
                in_features: shape.k,
                out_features: shape.n,
            };
            cost_op(&env, &op, DType::Fp16, Some(variant)).time
        }
    }

    /// A shareable (`Fn`) simulator-backed evaluation over a borrowed
    /// chip, for the parallel/memoized APIs.
    fn shared_eval(
        chip: &mtia_core::ChipSpec,
    ) -> impl Fn(FcShape, FcVariant) -> SimTime + Sync + '_ {
        move |shape, variant| {
            let placement =
                place_model(&chip.sram, Bytes::from_mib(40), Bytes::from_mib(200), 0.75);
            let env = KernelEnv {
                chip,
                noc: NocModel::new(chip.noc.clone()),
                dram: LpddrController::new(chip.dram.clone(), EccMode::ControllerEcc),
                placement,
                weight_resident_fraction: 0.5,
                tbe_hit_rate: 0.5,
                skip_writeback_hints: true,
            };
            let op = OpKind::Fc {
                batch: shape.m,
                in_features: shape.k,
                out_features: shape.n,
            };
            cost_op(&env, &op, DType::Fp16, Some(variant)).time
        }
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let chip = chips::mtia2i();
        let eval = shared_eval(&chip);
        let shape = FcShape::new(384, 1536, 768);
        let serial = exhaustive_tune(shape, &mut |s, v| eval(s, v));
        let parallel = exhaustive_tune_par(shape, &eval);
        assert_eq!(serial.variant, parallel.variant);
        assert_eq!(serial.time, parallel.time);
        assert_eq!(serial.evaluations, parallel.evaluations);
    }

    #[test]
    fn memoized_eval_computes_each_cell_once() {
        let chip = chips::mtia2i();
        let memo = MemoEval::new(shared_eval(&chip));
        let shape = FcShape::new(256, 1024, 512);
        let first = exhaustive_tune_par(shape, &memo.as_fn());
        let misses_after_first = memo.stats().misses;
        let second = exhaustive_tune_par(shape, &memo.as_fn());
        assert_eq!(first.variant, second.variant);
        assert_eq!(first.time, second.time);
        // The second sweep is answered entirely from the cache (allowing
        // for first-sweep races that double-computed a fresh key).
        assert_eq!(memo.stats().misses, misses_after_first);
        assert!(memo.stats().hits >= first.evaluations as u64);
    }

    #[test]
    fn seed_grid_par_builds_the_same_database() {
        let chip = chips::mtia2i();
        let eval = shared_eval(&chip);
        let mut serial_db = PerfDb::new();
        let serial_evals =
            serial_db.seed_grid(&[64, 512], &[128, 1024], &[256], &mut |s, v| eval(s, v));
        let mut par_db = PerfDb::new();
        let par_evals = par_db.seed_grid_par(&[64, 512], &[128, 1024], &[256], &eval);
        assert_eq!(serial_evals, par_evals);
        assert_eq!(serial_db.entries, par_db.entries);
    }

    #[test]
    fn variant_space_is_large() {
        let variants = enumerate_variants(FcShape::new(512, 512, 512));
        assert!(variants.len() >= 1000, "only {} variants", variants.len());
    }

    #[test]
    fn exhaustive_finds_a_fast_variant() {
        let mut eval = sim_eval();
        let shape = FcShape::new(512, 2048, 1024);
        let outcome = exhaustive_tune(shape, &mut eval);
        // The tuned variant beats the worst variant comfortably.
        let worst = enumerate_variants(shape)
            .into_iter()
            .map(|v| eval(shape, v))
            .max()
            .unwrap();
        assert!(outcome.time < worst);
        assert_eq!(outcome.evaluations, enumerate_variants(shape).len());
    }

    #[test]
    fn ann_lookup_is_1000x_cheaper_within_5_percent() {
        // §4.1: "reduced FC tuning time by up to 1000x while achieving
        // kernel performance within 5% of exhaustive FC tuning".
        let mut eval = sim_eval();
        let mut db = PerfDb::new();
        db.seed_grid(
            &[64, 256, 1024, 4096],
            &[128, 512, 2048, 8192],
            &[128, 512, 2048],
            &mut eval,
        );

        // Query shapes the database has never seen.
        let queries = [
            FcShape::new(512, 1024, 768),
            FcShape::new(192, 4096, 1536),
            FcShape::new(2048, 320, 256),
            FcShape::new(96, 26592, 2048),
        ];
        for q in queries {
            let exhaustive = exhaustive_tune(q, &mut eval);
            let ann = db.lookup_tune(q, &mut eval);
            let speedup = exhaustive.evaluations as f64 / ann.evaluations as f64;
            assert!(speedup >= 1000.0, "speedup {speedup}");
            let gap = ann.time.as_secs_f64() / exhaustive.time.as_secs_f64() - 1.0;
            assert!(
                gap <= 0.05,
                "{q:?}: ann within {:.1}% of exhaustive",
                gap * 100.0
            );
        }
    }

    #[test]
    fn nearest_neighbour_prefers_similar_shapes() {
        let a = FcShape::new(512, 512, 512);
        let near = FcShape::new(600, 480, 512);
        let far = FcShape::new(8, 30000, 16);
        assert!(a.distance(&near) < a.distance(&far));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_db_lookup_panics() {
        let mut eval = sim_eval();
        let _ = PerfDb::new().lookup_tune(FcShape::new(1, 1, 1), &mut eval);
    }

    #[test]
    #[should_panic(expected = "zero FC dimension")]
    fn zero_shape_panics() {
        let _ = FcShape::new(0, 1, 1);
    }
}
