//! The compilation pipeline: passes → scheduling → kernel selection → plan.

use mtia_model::graph::Graph;
use mtia_model::ops::OpKind;
use mtia_sim::chip::{ChipSim, Plan};
use mtia_sim::kernels::FcVariant;

use crate::pass::PassManager;
use crate::passes::broadcast::DelayedBroadcast;
use crate::passes::fusion::{LayerNormBatching, SiblingTransposeFc, VerticalFusion};
use crate::passes::mha::MhaLayoutRewrite;
use crate::scheduling::min_liveness_order;

/// Which optimizations to apply — the levers the §6 case study pulls one by
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerOptions {
    /// Vertical producer→consumer fusion.
    pub vertical_fusion: bool,
    /// Sibling-transpose-FC fusion.
    pub sibling_transpose_fc: bool,
    /// Horizontal LayerNorm batching.
    pub layernorm_batching: bool,
    /// Slice/Reshape/Concat → Transpose rewrite.
    pub mha_rewrite: bool,
    /// Delayed in-batch broadcast.
    pub delayed_broadcast: bool,
    /// Liveness-minimizing operator scheduling.
    pub memory_aware_scheduling: bool,
    /// Shape-matched tuned kernel variants (vs out-of-the-box defaults).
    pub tuned_kernels: bool,
    /// Dynamic-INT8 quantization of the largest FC layers (§4.4). Off by
    /// default: "FP16 remains the preferred choice for most of our
    /// recommendation models", reserved for high-usage deployments.
    pub quantize_large_fcs: bool,
}

impl CompilerOptions {
    /// Everything on — the production configuration.
    pub fn all() -> Self {
        CompilerOptions {
            vertical_fusion: true,
            sibling_transpose_fc: true,
            layernorm_batching: true,
            mha_rewrite: true,
            delayed_broadcast: true,
            memory_aware_scheduling: true,
            tuned_kernels: true,
            quantize_large_fcs: false,
        }
    }

    /// Everything off — the out-of-the-box port.
    pub fn none() -> Self {
        CompilerOptions {
            vertical_fusion: false,
            sibling_transpose_fc: false,
            layernorm_batching: false,
            mha_rewrite: false,
            delayed_broadcast: false,
            memory_aware_scheduling: false,
            tuned_kernels: false,
            quantize_large_fcs: false,
        }
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions::all()
    }
}

/// A compiled model: the rewritten graph, its execution plan, and the pass
/// log.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized graph.
    pub graph: Graph,
    /// The execution plan for `graph`.
    pub plan: Plan,
    /// `(pass name, rewrites)` per pass that ran.
    pub pass_log: Vec<(String, usize)>,
}

impl Compiled {
    /// Executes the compiled model on `sim` and returns its report.
    pub fn run(&self, sim: &ChipSim) -> mtia_sim::ExecutionReport {
        sim.run(&self.graph, &self.plan)
    }

    /// [`run`](Self::run) with observability: forwards to
    /// [`ChipSim::run_with_telemetry`], which records a `chip.run` span
    /// tree and occupancy/byte counters when `tel` is enabled. The
    /// report is identical to the untraced one.
    pub fn run_traced(
        &self,
        sim: &ChipSim,
        tel: &mut mtia_core::telemetry::Telemetry,
    ) -> mtia_sim::ExecutionReport {
        sim.run_with_telemetry(&self.graph, &self.plan, tel)
    }
}

/// Compiles `graph` with `options`.
pub fn compile(graph: &Graph, options: CompilerOptions) -> Compiled {
    let mut pm = PassManager::new();
    if options.mha_rewrite {
        pm.add(MhaLayoutRewrite);
    }
    if options.delayed_broadcast {
        pm.add(DelayedBroadcast);
    }
    // Quantization must see bare FC nodes, before fusion wraps them.
    if options.quantize_large_fcs {
        pm.add(crate::passes::quantize::SelectiveQuantization::default());
    }
    if options.sibling_transpose_fc {
        pm.add(SiblingTransposeFc);
    }
    if options.vertical_fusion {
        pm.add(VerticalFusion);
    }
    if options.layernorm_batching {
        pm.add(LayerNormBatching);
    }
    let (optimized, pass_log) = pm.run(graph);

    let order = if options.memory_aware_scheduling {
        min_liveness_order(&optimized)
    } else {
        (0..optimized.nodes().len()).collect()
    };

    let mut plan = Plan::default_for(&optimized);
    plan.order = order;
    if options.tuned_kernels {
        for (i, node) in optimized.nodes().iter().enumerate() {
            let fc = match &node.op {
                OpKind::Fc {
                    batch,
                    in_features,
                    out_features,
                }
                | OpKind::QuantizedFc {
                    batch,
                    in_features,
                    out_features,
                } => Some((*batch, *in_features, *out_features)),
                OpKind::Fused(members) => members.iter().find_map(|m| match m {
                    OpKind::Fc {
                        batch,
                        in_features,
                        out_features,
                    }
                    | OpKind::QuantizedFc {
                        batch,
                        in_features,
                        out_features,
                    } => Some((*batch, *in_features, *out_features)),
                    _ => None,
                }),
                _ => None,
            };
            if let Some((m, k, n)) = fc {
                plan.fc_variants
                    .insert(i, FcVariant::optimized_for(m, k, n));
            }
        }
    }

    Compiled {
        graph: optimized,
        plan,
        pass_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::spec::chips;
    use mtia_model::models::dhen::DhenConfig;
    use mtia_model::models::dlrm::DlrmConfig;
    use mtia_model::models::zoo;

    #[test]
    fn compiled_graph_validates_and_preserves_flops() {
        let g = DhenConfig::small(64).build();
        let compiled = compile(&g, CompilerOptions::all());
        assert_eq!(compiled.graph.validate(), Ok(()));
        let before = g.stats().flops.as_f64();
        let after = compiled.graph.stats().flops.as_f64();
        // Delayed broadcast may *reduce* FLOPS; nothing may increase them.
        assert!(after <= before * 1.0001, "flops grew: {before} → {after}");
    }

    #[test]
    fn full_compilation_beats_no_optimization() {
        let sim = ChipSim::new(chips::mtia2i());
        let m = zoo::fig6_models().remove(7);
        let g = m.graph();
        let baseline = compile(&g, CompilerOptions::none()).run(&sim);
        let optimized = compile(&g, CompilerOptions::all()).run(&sim);
        assert!(
            optimized.total_time() < baseline.total_time(),
            "{}: {} !< {}",
            m.name,
            optimized.total_time(),
            baseline.total_time()
        );
    }

    #[test]
    fn fusion_reduces_node_count_and_launches() {
        let sim = ChipSim::new(chips::mtia2i());
        let g = DlrmConfig::small(512).build();
        let unfused = compile(&g, CompilerOptions::none()).run(&sim);
        let fused = compile(&g, CompilerOptions::all()).run(&sim);
        assert!(fused.nodes.len() < unfused.nodes.len());
        assert!(fused.launch_overhead() < unfused.launch_overhead());
    }

    #[test]
    fn pass_log_records_rewrites() {
        let g = DlrmConfig::small(128).build();
        let compiled = compile(&g, CompilerOptions::all());
        let total: usize = compiled.pass_log.iter().map(|(_, n)| n).sum();
        assert!(total > 0, "no rewrites logged: {:?}", compiled.pass_log);
        assert!(compiled
            .pass_log
            .iter()
            .any(|(name, _)| name == "vertical-fusion"));
    }

    #[test]
    fn quantization_option_rewrites_large_fcs() {
        let g = mtia_model::models::zoo::fig6_models()
            .into_iter()
            .find(|m| m.name == "HC1")
            .unwrap()
            .graph();
        let mut opts = CompilerOptions::all();
        opts.quantize_large_fcs = true;
        let compiled = compile(&g, opts);
        fn has_quantized(op: &OpKind) -> bool {
            match op {
                OpKind::QuantizedFc { .. } => true,
                OpKind::Fused(members) => members.iter().any(has_quantized),
                _ => false,
            }
        }
        let quantized = compiled
            .graph
            .nodes()
            .iter()
            .filter(|n| has_quantized(&n.op))
            .count();
        assert!(quantized > 0);
        assert!(compiled
            .pass_log
            .iter()
            .any(|(name, n)| name == "selective-quantization" && *n > 0));
    }

    #[test]
    fn tuned_kernels_apply_to_fused_fcs() {
        let g = DlrmConfig::small(128).build();
        let compiled = compile(&g, CompilerOptions::all());
        assert!(!compiled.plan.fc_variants.is_empty());
    }
}
