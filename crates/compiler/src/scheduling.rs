//! Memory-aware operator scheduling (§4.2).
//!
//! "We maximize data reuse by selecting the best operator scheduling
//! algorithm for a model to minimize the liveness range required for
//! activations." This module implements a greedy list scheduler that, at
//! each step, picks the ready node that minimizes the resulting live
//! activation footprint — frees first, small allocations next.

use std::collections::{HashMap, HashSet};

use mtia_model::graph::{Graph, TensorId, TensorKind};

/// Computes a liveness-minimizing execution order.
///
/// Candidate schedules (greedy frees-first list scheduling and the original
/// program order) are evaluated and the one with the smaller peak live
/// activation footprint wins — "selecting the best operator scheduling
/// algorithm for a model" (§4.2). The result is a topologically valid,
/// deterministic permutation.
pub fn min_liveness_order(graph: &Graph) -> Vec<usize> {
    let greedy = greedy_min_liveness(graph);
    let program: Vec<usize> = (0..graph.nodes().len()).collect();
    if graph.peak_activation_bytes_for_order(&greedy)
        <= graph.peak_activation_bytes_for_order(&program)
    {
        greedy
    } else {
        program
    }
}

/// Greedy list scheduling: at each step, run the ready node with the best
/// net effect on live bytes (frees first, small allocations next).
fn greedy_min_liveness(graph: &Graph) -> Vec<usize> {
    let nodes = graph.nodes();
    let n = nodes.len();

    // Producer of each activation-like tensor, and remaining-consumer
    // counts used to detect deaths.
    let mut producer: HashMap<TensorId, usize> = HashMap::new();
    let mut remaining_consumers: HashMap<TensorId, usize> = HashMap::new();
    for node in nodes {
        for &t in &node.outputs {
            producer.insert(t, usize::MAX); // filled below
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        for &t in &node.outputs {
            producer.insert(t, i);
        }
        for &t in &node.inputs {
            *remaining_consumers.entry(t).or_insert(0) += 1;
        }
    }

    let is_activation = |g: &Graph, t: TensorId| {
        matches!(
            g.tensor(t).kind,
            TensorKind::Activation | TensorKind::Input | TensorKind::Output
        )
    };

    // Dependency counts: a node is ready when all activation inputs with a
    // producer have been scheduled.
    let mut deps = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &t in &node.inputs {
            if let Some(&p) = producer.get(&t) {
                if p != usize::MAX && p != i {
                    deps[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
    }

    let mut ready: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled: Vec<usize> = Vec::with_capacity(n);
    let mut done: HashSet<usize> = HashSet::new();
    let mut live: HashMap<TensorId, u64> = HashMap::new();
    let mut consumers_left = remaining_consumers.clone();

    // Inputs are live from the start.
    for (i, node) in nodes.iter().enumerate() {
        let _ = i;
        for &t in &node.inputs {
            if is_activation(graph, t) && !producer.contains_key(&t) {
                live.entry(t)
                    .or_insert_with(|| graph.tensor(t).bytes().as_u64());
            }
        }
    }

    while scheduled.len() < n {
        // Score each ready node by the net change in live bytes.
        let mut best: Option<(i128, usize, usize)> = None; // (delta, order, node)
        for (pos, &cand) in ready.iter().enumerate() {
            let node = &nodes[cand];
            let mut delta: i128 = 0;
            for &t in &node.outputs {
                if is_activation(graph, t) {
                    delta += graph.tensor(t).bytes().as_u64() as i128;
                }
            }
            for &t in &node.inputs {
                if is_activation(graph, t) && consumers_left.get(&t).copied() == Some(1) {
                    delta -= graph.tensor(t).bytes().as_u64() as i128;
                }
            }
            let key = (delta, cand);
            if best.map(|(d, c, _)| key < (d, c)).unwrap_or(true) {
                best = Some((key.0, key.1, pos));
            }
        }
        let (_, cand, pos) = best.expect("ready set must be non-empty for a DAG");
        ready.swap_remove(pos);
        done.insert(cand);
        scheduled.push(cand);

        // Update liveness.
        let node = &nodes[cand];
        for &t in &node.outputs {
            if is_activation(graph, t) {
                live.insert(t, graph.tensor(t).bytes().as_u64());
            }
        }
        for &t in &node.inputs {
            if let Some(c) = consumers_left.get_mut(&t) {
                *c -= 1;
                if *c == 0 {
                    live.remove(&t);
                }
            }
        }
        // Release dependents.
        for &d in &dependents[cand] {
            deps[d] -= 1;
            if deps[d] == 0 {
                ready.push(d);
            }
        }
    }
    scheduled
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::DType;
    use mtia_model::models::dhen::DhenConfig;
    use mtia_model::models::dlrm::DlrmConfig;
    use mtia_model::ops::OpKind;
    use mtia_model::tensor::Shape;

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in order {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        order.len() == n
    }

    #[test]
    fn order_is_valid_permutation() {
        for g in [DlrmConfig::small(64).build(), DhenConfig::small(32).build()] {
            let order = min_liveness_order(&g);
            assert!(is_permutation(&order, g.nodes().len()));
            // Valid topological order: peak computation must not panic and
            // producers precede consumers (validated via liveness call).
            let _ = g.peak_activation_bytes_for_order(&order);
        }
    }

    #[test]
    fn scheduler_never_exceeds_program_order_peak() {
        for g in [
            DlrmConfig::small(256).build(),
            DhenConfig::small(64).build(),
            DlrmConfig::small(1024).build(),
        ] {
            let program = g.peak_activation_bytes();
            let tuned = g.peak_activation_bytes_for_order(&min_liveness_order(&g));
            assert!(tuned <= program, "{tuned} > {program} for {}", g.name());
        }
    }

    #[test]
    fn scheduler_improves_interleavable_branches() {
        // Two long independent chains from separate inputs, joined at the
        // end. Program order runs chain A fully (keeping its big head
        // tensor alive), then chain B. A liveness-aware order finishes each
        // chain's big tensors before starting the next.
        let mut g = Graph::new("branches", 1);
        let mut finals = Vec::new();
        let mut all_nodes = Vec::new();
        for c in 0..2 {
            let input = g.add_tensor(
                format!("in{c}"),
                Shape::matrix(1024, 1024),
                DType::Fp32,
                mtia_model::graph::TensorKind::Input,
            );
            let mut cur = input;
            for s in 0..3 {
                let next = g.add_tensor(
                    format!("c{c}s{s}"),
                    Shape::matrix(1024, 1024 >> (s + 1).min(4)),
                    DType::Fp32,
                    mtia_model::graph::TensorKind::Activation,
                );
                all_nodes.push((format!("n{c}{s}"), cur, next));
                cur = next;
            }
            finals.push(cur);
        }
        // Interleave the two chains' nodes in the worst order: all of A,
        // then all of B — which is program order here.
        for (name, i, o) in &all_nodes {
            let elems = g.tensor(*i).shape.elems().min(g.tensor(*o).shape.elems());
            g.add_node(name.clone(), OpKind::Cast { elems }, [*i], [*o]);
        }
        let join = g.add_tensor(
            "join",
            Shape::vector(1),
            DType::Fp32,
            mtia_model::graph::TensorKind::Output,
        );
        g.add_node(
            "join",
            OpKind::Concat {
                rows: 1,
                cols_total: 2,
                num_inputs: 2,
            },
            finals.clone(),
            [join],
        );
        assert_eq!(g.validate(), Ok(()));

        let program = g.peak_activation_bytes();
        let order = min_liveness_order(&g);
        let tuned = g.peak_activation_bytes_for_order(&order);
        assert!(tuned <= program);
    }

    #[test]
    fn deterministic() {
        let g = DhenConfig::small(16).build();
        assert_eq!(min_liveness_order(&g), min_liveness_order(&g));
    }
}
