//! Calibration constants for quantities the paper does not publish.
//!
//! The paper reports only *relative* results (Perf/TCO, Perf/Watt, speedup
//! factors). Everything needed to regenerate those relatives from workload
//! physics is in [`crate::spec`]; this module pins down the handful of
//! proprietary anchors — dollar costs and host overheads — that the paper
//! deliberately withholds. Each constant's doc comment states which published
//! statement it is backed out of. Costs are arbitrary [`CostUnits`]; only
//! ratios are meaningful.
//!
//! [`CostUnits`]: crate::units::CostUnits

/// Bandwidth fraction lost to memory-controller-computed ECC on LPDDR.
///
/// §5.1: "the 10–15 % throughput penalty associated with the inefficient
/// memory-controller-based ECC". We model the midpoint.
pub const CONTROLLER_ECC_PENALTY: f64 = 0.125;

/// Cost of the non-accelerator server platform (CPUs, DRAM, NICs, chassis).
///
/// §3.4 notes that the Grand Teton platform is shared between the GPU and
/// MTIA servers, so this term is identical on both sides and only its
/// magnitude relative to the accelerator modules matters.
pub const SERVER_BASE_COST: f64 = 160.0;

/// Cost of one GPU module (board + HBM + NVLink-class interconnect).
///
/// Anchored so that a fully populated 8-GPU server is 1000 capex units.
pub const GPU_MODULE_COST: f64 = 105.0;

/// Cost of one MTIA 2i module (two chips share a module in the real server;
/// we account per chip).
///
/// Backed out of the published endpoints: with the per-model performance
/// ratios the simulator produces (an MTIA server ≈ 0.45–1.1× an H100-class
/// GPU server on launched models, mean ≈ 0.7), an average Perf/TCO gain of
/// 1.79× (= the 44 % TCO reduction of §1) requires the MTIA module to cost
/// ≈ 13× less than a GPU module. That magnitude is plausible because the
/// two sides are priced differently: Meta pays *market price* for GPUs
/// (H100-class boards carried very large vendor margins in 2024) but
/// *bill-of-materials* for the in-house module — a ~420 mm² die with LPDDR
/// instead of HBM and no scale-up interconnect. The exact value is a
/// calibration, not a measurement.
pub const MTIA_MODULE_COST: f64 = 8.0;

/// Lifetime energy cost per provisioned watt, in cost units.
///
/// Covers electricity plus the power-proportional share of datacenter
/// infrastructure over the service life. Chosen so energy is a meaningful
/// but non-dominant TCO share (≈ 25 % for the GPU server), consistent with
/// hyperscaler TCO breakdowns.
pub const POWER_COST_PER_WATT: f64 = 0.08;

/// Host-side power of the MTIA server (CPUs, DRAM, fans, NICs).
pub const MTIA_SERVER_HOST_POWER_W: f64 = 1200.0;

/// Host-side power of the GPU server (same Grand Teton platform).
pub const GPU_SERVER_HOST_POWER_W: f64 = 1200.0;

/// Zipf skew of embedding-row popularity in recommendation workloads.
///
/// §4.2 reports that caching keeps 40–60 % of sparse (TBE) accesses in SRAM
/// even though tables are tens of GB. Under Che's LRU approximation, a
/// Zipf(s ≈ 0.95) row-popularity distribution reproduces that hit-rate band
/// for a 100–200 MB cache over tens-of-GB tables (cache fractions of
/// 0.05–1 % of rows), consistent with published DLRM access traces.
pub const EMBEDDING_ZIPF_SKEW: f64 = 0.95;

/// GPU sustained-efficiency ceiling on large, compute-bound GEMMs.
///
/// Mature GPU software stacks reach 60–75 % of tensor-core peak on
/// well-shaped FC layers at serving batch sizes; we use the middle of that
/// band. (MTIA's equivalent ceiling is emergent from the simulator: §4.2
/// reports ≥ 93 % for SRAM-resident shapes.)
pub const GPU_GEMM_EFFICIENCY: f64 = 0.68;

/// GPU effective HBM bandwidth fraction for irregular (TBE gather) traffic.
pub const GPU_GATHER_BW_EFFICIENCY: f64 = 0.75;

/// MTIA effective LPDDR bandwidth fraction for irregular gather traffic.
pub const MTIA_GATHER_BW_EFFICIENCY: f64 = 0.70;

/// Fraction of a serving request spent in host-side work (feature
/// preprocessing, batching, network) for a mid-complexity ranking model,
/// before accelerator-side time. §2 notes retrieval models "can spend a
/// significant amount of time on feature preprocessing".
pub const HOST_OVERHEAD_FRACTION: f64 = 0.10;

#[cfg(test)]
mod tests {
    // The constants under test are compile-time values by design: these
    // tests document the calibration invariants and fail loudly if anyone
    // edits a constant out of its published band.
    #![allow(clippy::assertions_on_constants)]

    use super::*;

    #[test]
    fn ecc_penalty_in_published_band() {
        assert!(CONTROLLER_ECC_PENALTY >= 0.10 && CONTROLLER_ECC_PENALTY <= 0.15);
    }

    #[test]
    fn gpu_server_capex_is_1000() {
        assert_eq!(SERVER_BASE_COST + 8.0 * GPU_MODULE_COST, 1000.0);
    }

    #[test]
    fn constants_are_sane() {
        assert!(MTIA_MODULE_COST > 0.0 && MTIA_MODULE_COST < GPU_MODULE_COST);
        assert!(POWER_COST_PER_WATT > 0.0);
        assert!(EMBEDDING_ZIPF_SKEW > 0.0 && EMBEDDING_ZIPF_SKEW < 2.0);
        assert!(GPU_GEMM_EFFICIENCY > 0.0 && GPU_GEMM_EFFICIENCY < 1.0);
    }
}
