//! Numeric data types supported by the MTIA accelerators.

use std::fmt;

use crate::units::Bytes;

/// An element data type as seen by the compute engines.
///
/// ```
/// use mtia_core::dtype::DType;
/// assert_eq!(DType::Fp16.size_bytes(), 2);
/// assert!(DType::Int8.is_integer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 8-bit signed integer (quantized weights/activations).
    Int8,
    /// IEEE 754 half precision.
    Fp16,
    /// bfloat16.
    Bf16,
    /// IEEE 754 single precision.
    Fp32,
}

impl DType {
    /// All supported data types, in ascending width order.
    pub const ALL: [DType; 4] = [DType::Int8, DType::Fp16, DType::Bf16, DType::Fp32];

    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::Int8 => 1,
            DType::Fp16 | DType::Bf16 => 2,
            DType::Fp32 => 4,
        }
    }

    /// Total size of `count` elements of this type.
    pub const fn bytes_for(self, count: u64) -> Bytes {
        Bytes::new(self.size_bytes() * count)
    }

    /// Whether the type is an integer type.
    pub const fn is_integer(self) -> bool {
        matches!(self, DType::Int8)
    }

    /// Whether the type is a floating-point type.
    pub const fn is_float(self) -> bool {
        !self.is_integer()
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int8 => "int8",
            DType::Fp16 => "fp16",
            DType::Bf16 => "bf16",
            DType::Fp32 => "fp32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::Int8.size_bytes(), 1);
        assert_eq!(DType::Fp16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::Fp32.size_bytes(), 4);
    }

    #[test]
    fn bytes_for_counts() {
        assert_eq!(DType::Fp16.bytes_for(1024), Bytes::from_kib(2));
        assert_eq!(DType::Fp32.bytes_for(0), Bytes::ZERO);
    }

    #[test]
    fn classification() {
        assert!(DType::Int8.is_integer());
        assert!(!DType::Int8.is_float());
        for dt in [DType::Fp16, DType::Bf16, DType::Fp32] {
            assert!(dt.is_float());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Int8.to_string(), "int8");
        assert_eq!(DType::Bf16.to_string(), "bf16");
    }
}
