//! Error types for specification and configuration validation.

use std::error::Error as StdError;
use std::fmt;

/// An error constructing or validating a hardware configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A capacity does not divide evenly into the required granularity.
    MisalignedCapacity {
        /// What was being partitioned.
        what: &'static str,
        /// The capacity in bytes.
        capacity: u64,
        /// The required granule in bytes.
        granule: u64,
    },
    /// A parameter was outside its valid range.
    OutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Human-readable description of the valid range.
        valid: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MisalignedCapacity {
                what,
                capacity,
                granule,
            } => write!(
                f,
                "{what} capacity {capacity} B is not a multiple of the {granule} B granule"
            ),
            ConfigError::OutOfRange { what, valid } => {
                write!(f, "{what} out of range (valid: {valid})")
            }
        }
    }
}

impl StdError for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::MisalignedCapacity {
            what: "SRAM",
            capacity: 100,
            granule: 32,
        };
        let s = e.to_string();
        assert!(s.contains("100 B"));
        assert!(s.contains("32 B"));

        let e = ConfigError::OutOfRange {
            what: "utilization",
            valid: "[0, 1]",
        };
        assert!(e.to_string().contains("utilization"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
