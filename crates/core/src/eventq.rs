//! Slab-allocated indexed binary heaps and generational arenas for
//! discrete-event simulator hot paths.
//!
//! The global serving DES (`mtia-serving::global`) schedules millions of
//! timed events per replay: request completions, device wakes, hedge
//! timers. The original implementation kept them in `BTreeMap`/`BTreeSet`
//! keyed on `(SimTime, u64)`, which is correct but allocates a tree node
//! per event and chases pointers on every pop. [`EventQueue`] replaces
//! that with:
//!
//! - a **slab** of event slots reused through a free-list — steady-state
//!   simulation performs zero allocation;
//! - a **4-ary min-heap** of self-contained `(key, slot, gen)` entries,
//!   so sift comparisons never leave one contiguous array and siblings
//!   share a cache line — and, crucially, pops come out in exactly the
//!   `BTreeMap` iteration order: ascending `(time, seq)`;
//! - **lazy cancellation**: `cancel` is O(1) — it frees the slot and
//!   leaves the heap entry behind as a tombstone, discarded when it
//!   surfaces at the root — so revoked hedge timers and device wakes
//!   cost nothing until their time would have come anyway;
//! - **generational [`EventId`]s**, so a stale handle to a cancelled and
//!   since-reused slot is detected instead of silently cancelling an
//!   unrelated event.
//!
//! Determinism: the heap tie-breaks on the caller-supplied `seq`, never
//! on slot index or insertion order, so two runs that push the same
//! `(time, seq, payload)` multisets pop identical sequences regardless
//! of cancellation patterns or slab reuse. The property test in
//! `tests/event_queue_model.rs` checks this against a `BTreeMap`
//! reference model under random interleavings.
//!
//! [`Arena`] is the companion structure for per-request state: a
//! generational slab whose stable [`ArenaRef`]s replace `BTreeMap<u64, T>`
//! lookups with a bounds-checked vector index.

use crate::units::SimTime;

/// A generational handle to an event in an [`EventQueue`].
///
/// Handles stay valid until the event is popped or cancelled; after the
/// slot is reused, the old handle's generation no longer matches and
/// [`EventQueue::cancel`] returns `None` instead of touching the new
/// occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

impl EventId {
    /// A handle that never matches any live event. Useful as an
    /// "unscheduled" sentinel in per-entity state.
    pub const NONE: EventId = EventId {
        slot: u32::MAX,
        gen: u32::MAX,
    };
}

struct Slot<T> {
    /// Bumped whenever the slot is freed (pop, cancel, clear), so both
    /// stale [`EventId`]s and lazily-deleted heap entries are detected
    /// by a single generation compare.
    gen: u32,
    /// Key of the current occupant, for [`EventQueue::key_of`].
    key: (SimTime, u64),
    payload: Option<T>,
}

/// One heap entry: 32 bytes, two per cache line, fully self-contained.
/// Sift comparisons read only this array — the slab is never touched on
/// the heap's hot path.
#[derive(Clone, Copy)]
struct HeapEntry {
    /// Ascending key: time first, then the caller's sequence number.
    /// `seq` must be unique among live events for the pop order to be
    /// total (the serving DES uses a monotonic dispatch counter).
    key: (SimTime, u64),
    slot: u32,
    /// Slot generation at push time; the entry is dead (cancelled) once
    /// the slot's generation has moved on.
    gen: u32,
}

/// Heap arity. Four-way halves the depth of a binary heap and keeps all
/// siblings of a node within one cache line, which is the difference
/// between winning and losing to `BTreeMap` on pop-heavy churn at 10⁶
/// pending events (see `benches/event_queue.rs`).
const ARITY: usize = 4;

/// A 4-ary min-heap over slab-allocated timed events, with lazy
/// cancellation.
///
/// Pops ascend in `(time, seq)` order — byte-identical to iterating a
/// `BTreeMap<(SimTime, u64), T>` — with O(log n) `push`/`pop`, O(1)
/// `cancel` (the entry is tombstoned and skipped when it surfaces at
/// the root), and no per-event allocation after warm-up.
///
/// ```
/// use mtia_core::eventq::EventQueue;
/// use mtia_core::units::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_millis(5), 0, "late");
/// let b = q.push(SimTime::from_millis(1), 1, "early");
/// q.push(SimTime::from_millis(1), 2, "early-tie");
/// assert_eq!(q.cancel(a), Some("late"));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 1, "early")));
/// assert_eq!(q.cancel(b), None); // already popped; stale handle
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 2, "early-tie")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    slots: Vec<Slot<T>>,
    /// Min-heap of entries ordered by key. May contain dead entries for
    /// cancelled events; the root is always live (or the heap empty).
    heap: Vec<HeapEntry>,
    free: Vec<u32>,
    /// Live (non-cancelled) event count; `heap.len()` can exceed it.
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            heap: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty queue with room for `cap` pending events before the
    /// first reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(cap),
            heap: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at `(time, seq)` and returns a handle usable
    /// with [`cancel`](Self::cancel). `seq` is the deterministic
    /// tie-break among same-time events; callers must keep it unique
    /// among live events.
    pub fn push(&mut self, time: SimTime, seq: u64, payload: T) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.key = (time, seq);
                sl.payload = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slab over u32::MAX slots");
                self.slots.push(Slot {
                    gen: 0,
                    key: (time, seq),
                    payload: Some(payload),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        let pos = self.heap.len();
        self.heap.push(HeapEntry {
            key: (time, seq),
            slot,
            gen,
        });
        self.sift_up(pos);
        self.live += 1;
        EventId { slot, gen }
    }

    /// The earliest pending `(time, seq)` key, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(|e| e.key)
    }

    /// Removes and returns the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        // The root is live by invariant (dead entries are purged as soon
        // as they surface), so this is the true minimum pending event.
        let &HeapEntry {
            key: (time, seq),
            slot,
            gen,
        } = self.heap.first()?;
        debug_assert_eq!(self.slots[slot as usize].gen, gen, "root must be live");
        self.discard_root();
        let sl = &mut self.slots[slot as usize];
        sl.gen = sl.gen.wrapping_add(1);
        let payload = sl.payload.take().expect("popped slot holds a payload");
        self.free.push(slot);
        self.live -= 1;
        self.purge_dead_roots();
        Some((time, seq, payload))
    }

    /// Cancels a pending event in O(1), returning its payload, or
    /// `None` if the handle is stale (the event already popped or was
    /// cancelled). The heap entry stays behind as a tombstone and is
    /// discarded when it reaches the root.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        let sl = self.slots.get_mut(id.slot as usize)?;
        if sl.gen != id.gen {
            return None;
        }
        let payload = sl
            .payload
            .take()
            .expect("matching generation implies a live event");
        sl.gen = sl.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        self.purge_dead_roots();
        Some(payload)
    }

    /// The `(time, seq)` key of a still-pending event, or `None` for a
    /// stale handle.
    pub fn key_of(&self, id: EventId) -> Option<(SimTime, u64)> {
        let sl = self.slots.get(id.slot as usize)?;
        if sl.gen != id.gen {
            return None;
        }
        Some(sl.key)
    }

    /// Drops all pending events; slab capacity is retained.
    pub fn clear(&mut self) {
        for (i, sl) in self.slots.iter_mut().enumerate() {
            if sl.payload.take().is_some() {
                sl.gen = sl.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.heap.clear();
        self.live = 0;
    }

    #[inline]
    fn is_live(&self, e: &HeapEntry) -> bool {
        self.slots[e.slot as usize].gen == e.gen
    }

    /// Removes the root entry and restores the heap shape.
    fn discard_root(&mut self) {
        let last = self.heap.pop().expect("root exists");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    /// Restores the invariant that the root is live: tombstones from
    /// lazy cancellation are discarded as they surface. Amortized, each
    /// cancelled event is purged exactly once.
    fn purge_dead_roots(&mut self) {
        while let Some(&e) = self.heap.first() {
            if self.is_live(&e) {
                break;
            }
            self.discard_root();
        }
    }

    /// Moves `heap[pos]` toward the root until its parent is no larger.
    /// Hole-based: displaced parents are copied down and the entry is
    /// written once at its final position.
    fn sift_up(&mut self, mut pos: usize) {
        let e = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if e.key < self.heap[parent].key {
                self.heap[pos] = self.heap[parent];
                pos = parent;
            } else {
                break;
            }
        }
        self.heap[pos] = e;
    }

    /// Moves `heap[pos]` toward the leaves until no child is smaller.
    fn sift_down(&mut self, mut pos: usize) {
        let e = self.heap[pos];
        loop {
            let first = ARITY * pos + 1;
            if first >= self.heap.len() {
                break;
            }
            let end = (first + ARITY).min(self.heap.len());
            let mut smallest = first;
            for child in first + 1..end {
                if self.heap[child].key < self.heap[smallest].key {
                    smallest = child;
                }
            }
            if self.heap[smallest].key < e.key {
                self.heap[pos] = self.heap[smallest];
                pos = smallest;
            } else {
                break;
            }
        }
        self.heap[pos] = e;
    }
}

/// A generational handle into an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    slot: u32,
    gen: u32,
}

impl ArenaRef {
    /// A handle that never resolves. Useful as an "absent" sentinel.
    pub const NONE: ArenaRef = ArenaRef {
        slot: u32::MAX,
        gen: u32::MAX,
    };

    /// The raw slot index — stable for the lifetime of the entry and
    /// suitable as a dense side-table index.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

struct ArenaSlot<T> {
    gen: u32,
    value: Option<T>,
}

/// A dense generational slab: `BTreeMap<u64, T>` lookups become
/// bounds-checked vector indexing, and freed slots are reused without
/// handing stale handles a new occupant's state.
///
/// ```
/// use mtia_core::eventq::Arena;
///
/// let mut arena = Arena::new();
/// let a = arena.insert("alpha");
/// assert_eq!(arena.get(a), Some(&"alpha"));
/// assert_eq!(arena.remove(a), Some("alpha"));
/// let b = arena.insert("beta"); // reuses the slot...
/// assert_eq!(a.slot(), b.slot());
/// assert_eq!(arena.get(a), None); // ...but the old handle stays dead
/// assert_eq!(arena.get(b), Some(&"beta"));
/// ```
pub struct Arena<T> {
    slots: Vec<ArenaSlot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `cap` live entries before the first
    /// reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let sl = &mut self.slots[slot as usize];
                sl.value = Some(value);
                ArenaRef { slot, gen: sl.gen }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena over u32::MAX slots");
                self.slots.push(ArenaSlot {
                    gen: 0,
                    value: Some(value),
                });
                ArenaRef { slot, gen: 0 }
            }
        }
    }

    /// The entry behind `r`, or `None` if it was removed (even if the
    /// slot has since been reused).
    pub fn get(&self, r: ArenaRef) -> Option<&T> {
        let sl = self.slots.get(r.slot as usize)?;
        if sl.gen != r.gen {
            return None;
        }
        sl.value.as_ref()
    }

    /// Mutable access to the entry behind `r`.
    pub fn get_mut(&mut self, r: ArenaRef) -> Option<&mut T> {
        let sl = self.slots.get_mut(r.slot as usize)?;
        if sl.gen != r.gen {
            return None;
        }
        sl.value.as_mut()
    }

    /// Removes and returns the entry behind `r`, retiring the slot for
    /// reuse. Stale handles return `None`.
    pub fn remove(&mut self, r: ArenaRef) -> Option<T> {
        let sl = self.slots.get_mut(r.slot as usize)?;
        if sl.gen != r.gen {
            return None;
        }
        let value = sl.value.take()?;
        sl.gen = sl.gen.wrapping_add(1);
        self.free.push(r.slot);
        self.len -= 1;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn pops_ascend_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 7, "c");
        q.push(SimTime::from_millis(1), 9, "a2");
        q.push(SimTime::from_millis(2), 5, "b");
        q.push(SimTime::from_millis(1), 4, "a1");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
    }

    #[test]
    fn cancel_removes_exactly_one_event_and_goes_stale() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.push(SimTime::from_millis(10 - i), i, i))
            .collect();
        assert_eq!(q.cancel(ids[3]), Some(3));
        assert_eq!(q.cancel(ids[3]), None, "second cancel is stale");
        assert_eq!(q.len(), 9);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(popped, vec![9, 8, 7, 6, 5, 4, 2, 1, 0]);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handles() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_millis(1), 0, "old");
        assert_eq!(q.cancel(a), Some("old"));
        let b = q.push(SimTime::from_millis(2), 1, "new");
        // Slot is reused, but the stale handle must not cancel "new".
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.key_of(b), Some((SimTime::from_millis(2), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 1, "new")));
    }

    #[test]
    fn matches_btreemap_reference_on_a_fixed_interleaving() {
        // A deterministic LCG drives the same insert/cancel/pop script
        // against the queue and a BTreeMap reference model.
        let mut q = EventQueue::new();
        let mut model: BTreeMap<(SimTime, u64), u64> = BTreeMap::new();
        let mut handles: Vec<(EventId, (SimTime, u64))> = Vec::new();
        let mut rng = 0x9e3779b97f4a7c15u64;
        let step = |rng: &mut u64| {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *rng >> 33
        };
        for seq in 0..4000u64 {
            match step(&mut rng) % 4 {
                0 | 1 => {
                    let t = SimTime::from_nanos(step(&mut rng) % 64);
                    let id = q.push(t, seq, seq);
                    model.insert((t, seq), seq);
                    handles.push((id, (t, seq)));
                }
                2 if !handles.is_empty() => {
                    let i = (step(&mut rng) as usize) % handles.len();
                    let (id, key) = handles.swap_remove(i);
                    assert_eq!(q.cancel(id), model.remove(&key));
                }
                _ => {
                    let expect = model.pop_first().map(|((t, s), v)| (t, s, v));
                    assert_eq!(q.pop(), expect);
                    if let Some((_, s, _)) = expect {
                        handles.retain(|(_, (_, hs))| *hs != s);
                    }
                }
            }
            assert_eq!(q.len(), model.len());
        }
        while let Some(((t, s), v)) = model.pop_first() {
            assert_eq!(q.pop(), Some((t, s, v)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn clear_retires_all_slots() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..8)
            .map(|i| q.push(SimTime::from_millis(i), i, i))
            .collect();
        q.clear();
        assert!(q.is_empty());
        for id in ids {
            assert_eq!(q.cancel(id), None);
        }
        // Slab is reusable after clear.
        q.push(SimTime::ZERO, 0, 42);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0, 42)));
    }

    #[test]
    fn arena_reuses_slots_generationally() {
        let mut a = Arena::new();
        let r1 = a.insert(1u32);
        let r2 = a.insert(2u32);
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(r1), Some(1));
        assert_eq!(a.remove(r1), None);
        let r3 = a.insert(3u32);
        assert_eq!(r3.slot(), r1.slot());
        assert_eq!(a.get(r1), None);
        assert_eq!(a.get(r3), Some(&3));
        *a.get_mut(r2).unwrap() = 20;
        assert_eq!(a.remove(r2), Some(20));
        assert_eq!(a.len(), 1);
    }
}
