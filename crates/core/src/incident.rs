//! Silent-data-corruption incident vocabulary (§5.1, productionized).
//!
//! The paper's memory-error study established *that* LPDDR bit flips
//! corrupt outputs; the online defense layers (`mtia-serving::sdc`,
//! `mtia-fleet::quarantine`) turn each suspicious observation into an
//! [`SdcIncident`] so detection recall, false positives, and latency can
//! be accounted per detection mechanism. The types live here, below every
//! behavioural crate, because model, serving, fleet, and bench all speak
//! them.

use std::fmt;

use crate::units::SimTime;

/// Which defense mechanism raised an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectionMethod {
    /// A per-embedding-row checksum failed on read.
    RowChecksum,
    /// A TBE index escaped its table's valid row range.
    IndexBounds,
    /// The end-to-end checksum over a request's staged index stream
    /// disagreed with the checksum attached at submission.
    IndexStreamChecksum,
    /// A dense-layer output contained NaN/Inf or exceeded its calibrated
    /// range bound.
    OutputGuard,
    /// A periodic canary request's output fingerprint diverged from the
    /// device's golden fingerprint.
    CanaryFingerprint,
    /// Shadow re-execution on a second device produced a different
    /// output fingerprint for the same request.
    ShadowVote,
}

impl DetectionMethod {
    /// All methods, in escalation order (cheap inline guards first).
    pub const ALL: [DetectionMethod; 6] = [
        DetectionMethod::RowChecksum,
        DetectionMethod::IndexBounds,
        DetectionMethod::IndexStreamChecksum,
        DetectionMethod::OutputGuard,
        DetectionMethod::CanaryFingerprint,
        DetectionMethod::ShadowVote,
    ];

    /// Whether the method runs inline on the serving path (as opposed to
    /// the periodic/reactive canary and shadow mechanisms).
    pub fn is_inline_guard(self) -> bool {
        matches!(
            self,
            DetectionMethod::RowChecksum
                | DetectionMethod::IndexBounds
                | DetectionMethod::IndexStreamChecksum
                | DetectionMethod::OutputGuard
        )
    }
}

impl fmt::Display for DetectionMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectionMethod::RowChecksum => "row-checksum",
            DetectionMethod::IndexBounds => "index-bounds",
            DetectionMethod::IndexStreamChecksum => "index-stream-checksum",
            DetectionMethod::OutputGuard => "output-guard",
            DetectionMethod::CanaryFingerprint => "canary-fingerprint",
            DetectionMethod::ShadowVote => "shadow-vote",
        };
        f.write_str(s)
    }
}

/// One suspicious observation on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcIncident {
    /// When the defense mechanism fired.
    pub at: SimTime,
    /// Fleet index of the suspect device.
    pub device: u32,
    /// Which mechanism fired.
    pub method: DetectionMethod,
    /// Whether the device actually carried an active corruption at the
    /// time (ground truth from the injector; `false` marks a false
    /// positive).
    pub genuine: bool,
}

impl fmt::Display for SdcIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] device {} {}{}",
            self.at,
            self.device,
            self.method,
            if self.genuine {
                ""
            } else {
                " (false positive)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_split_matches_escalation_order() {
        let inline: Vec<_> = DetectionMethod::ALL
            .iter()
            .filter(|m| m.is_inline_guard())
            .collect();
        assert_eq!(inline.len(), 4);
        assert!(!DetectionMethod::CanaryFingerprint.is_inline_guard());
        assert!(!DetectionMethod::ShadowVote.is_inline_guard());
    }

    #[test]
    fn incident_display_marks_false_positives() {
        let i = SdcIncident {
            at: SimTime::from_millis(5),
            device: 3,
            method: DetectionMethod::OutputGuard,
            genuine: false,
        };
        let s = i.to_string();
        assert!(s.contains("device 3"));
        assert!(s.contains("output-guard"));
        assert!(s.contains("false positive"));
    }
}
