//! Foundation types for the MTIA 2i reproduction: strongly-typed units,
//! element data types, the published chip/server specifications, and the
//! TCO/power accounting used by every experiment.
//!
//! This crate is dependency-free and (apart from the small execution
//! utilities in [`pool`] and [`memo`]) purely descriptive; the
//! behavioural models live in `mtia-sim` and above.
//!
//! # Quick tour
//!
//! ```
//! use mtia_core::spec::chips;
//! use mtia_core::dtype::DType;
//! use mtia_core::units::Bytes;
//!
//! let chip = chips::mtia2i();
//! assert_eq!(chip.pe_count(), 64);
//! assert_eq!(chip.sram.capacity, Bytes::from_mib(256));
//! // Peak rates are derived from the microarchitecture, not hard-coded:
//! let int8 = chip.gemm_peak(DType::Int8, false);
//! assert!((int8.as_tflops() - 354.0).abs() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod dtype;
pub mod error;
pub mod eventq;
pub mod incident;
pub mod memo;
pub mod perfcount;
pub mod pool;
pub mod power;
pub mod seed;
pub mod spec;
pub mod tco;
pub mod telemetry;
pub mod units;

pub use dtype::DType;
pub use error::ConfigError;
pub use incident::{DetectionMethod, SdcIncident};
pub use spec::{ChipFeature, ChipSpec, EccMode, GpuSpec, ServerSpec};
pub use telemetry::{LatencyHistogram, Telemetry};
pub use units::{Bandwidth, Bytes, CostUnits, FlopCount, FlopRate, Hertz, Joules, SimTime, Watts};
