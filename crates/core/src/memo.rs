//! A lock-sharded memoization cache for pure, `Copy` evaluation results.
//!
//! The analytic cost models in `mtia-sim` and the autotuning evaluations
//! in `mtia-compiler` are pure functions of their inputs, and the
//! experiment suite evaluates the *same* inputs thousands of times (the
//! Table-1 model zoo is re-simulated by a dozen experiments; exhaustive
//! tuning revisits the same `(shape, variant)` cells). A [`ShardedCache`]
//! turns those repeats into a hash lookup.
//!
//! Sharding bounds contention under the [`crate::pool`] workers: keys
//! spread over independent mutexes, so two threads only collide when
//! they touch the same shard at the same instant. Values must be pure
//! functions of their key, which is what keeps cached runs
//! byte-identical to uncached runs — the cache can change *when* a value
//! is computed, never *what* it is.
//!
//! Keys are 128-bit fingerprints built by [`stable_key`] from two
//! independently-prefixed 64-bit hashes, making accidental collisions
//! (which would silently return a wrong cost) negligible at any
//! realistic cache size.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default shard count — enough to make worker collisions rare at the
/// pool sizes this workspace uses.
pub const DEFAULT_SHARDS: usize = 16;

/// Hit/miss counters snapshotted from a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then inserted).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache; 0 when unused.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One lock-protected map plus its own hit/miss counters. Counters
/// live on the shard so reporting can show how evenly [`stable_key`]
/// spreads load — a skewed shard histogram means contention, a fleet
/// of all-miss shards means the workload never repeats a key.
#[derive(Debug)]
struct Shard<V> {
    map: Mutex<HashMap<u128, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// A concurrent memo table from 128-bit fingerprints to `Copy` values.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
}

impl<V: Copy> ShardedCache<V> {
    /// Creates a cache with `shards` independent mutex-protected maps.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
        }
    }

    fn shard_of(&self, key: u128) -> &Shard<V> {
        let fold = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(fold as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, computing it with `compute`
    /// on a miss.
    ///
    /// `compute` runs **outside** the shard lock so a slow evaluation
    /// never serializes other workers; if two threads race on the same
    /// fresh key both compute it and the (identical, pure) value is
    /// stored once — correctness never depends on winning the race.
    pub fn get_or_insert_with(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard_of(key);
        if let Some(v) = shard.map.lock().expect("cache shard poisoned").get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return *v;
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        shard
            .map
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        value
    }

    /// Snapshot of the hit/miss counters, summed over shards.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), |acc, s| CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            })
    }

    /// Per-shard counter snapshots, in shard order — the load-spread
    /// view `reproduce --bench-perf` reports.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| CacheStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and zeroes the hit/miss counters — used to get
    /// fair cold-cache timings when comparing thread counts.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.lock().expect("cache shard poisoned").clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }
}

impl<V: Copy> Default for ShardedCache<V> {
    fn default() -> Self {
        ShardedCache::new(DEFAULT_SHARDS)
    }
}

/// Builds a 128-bit fingerprint from whatever `feed` hashes.
///
/// Two [`DefaultHasher`]s (deterministic within a build of the standard
/// library) are seeded with distinct prefixes, so the halves are
/// independent and a collision requires defeating both at once. The
/// fingerprint is only used as an in-process cache key — it is never
/// persisted, so cross-version hash stability is not required.
pub fn stable_key(feed: impl Fn(&mut DefaultHasher)) -> u128 {
    let mut lo = DefaultHasher::new();
    0xA5u8.hash(&mut lo);
    feed(&mut lo);
    let mut hi = DefaultHasher::new();
    0x5Au8.hash(&mut hi);
    feed(&mut hi);
    ((hi.finish() as u128) << 64) | (lo.finish() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache: ShardedCache<u64> = ShardedCache::default();
        let mut calls = 0u32;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(42, || {
                calls += 1;
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache: ShardedCache<u64> = ShardedCache::new(4);
        cache.get_or_insert_with(1, || 1);
        cache.get_or_insert_with(1, || 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache: ShardedCache<u128> = ShardedCache::new(3);
        for k in 0..1000u128 {
            assert_eq!(cache.get_or_insert_with(k, || k * 3), k * 3);
        }
        for k in 0..1000u128 {
            assert_eq!(cache.get_or_insert_with(k, || unreachable!()), k * 3);
        }
    }

    #[test]
    fn shard_stats_sum_to_the_global_stats() {
        let cache: ShardedCache<u64> = ShardedCache::new(4);
        for k in 0..64u128 {
            cache.get_or_insert_with(k, || k as u64);
            cache.get_or_insert_with(k, || unreachable!());
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), cache.shard_count());
        let total: u64 = per_shard.iter().map(|s| s.lookups()).sum();
        assert_eq!(total, cache.stats().lookups());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 64,
                misses: 64
            }
        );
        // stable_key-less sequential keys still land on every shard.
        assert!(per_shard.iter().all(|s| s.lookups() > 0));
    }

    #[test]
    fn stable_key_is_deterministic_and_input_sensitive() {
        let key = |s: &str| stable_key(|h| s.hash(h));
        assert_eq!(key("gemm 512x512"), key("gemm 512x512"));
        assert_ne!(key("gemm 512x512"), key("gemm 512x513"));
        // The two 64-bit halves come from differently-prefixed hashers.
        let k = key("x");
        assert_ne!((k >> 64) as u64, k as u64);
    }

    #[test]
    fn concurrent_use_under_the_pool() {
        let cache: ShardedCache<u64> = ShardedCache::default();
        let results = crate::pool::parallel_map_with(8, (0..512u64).collect(), |_, i| {
            cache.get_or_insert_with((i % 32) as u128, || i % 32)
        });
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i % 32) as u64);
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 512);
        // Racing threads may duplicate a first computation, but at
        // least one miss per distinct key and far more hits than keys.
        assert!(stats.hits >= 512 - 64);
    }
}
