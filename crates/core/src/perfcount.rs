//! Process-wide simulated-event accounting.
//!
//! Every discrete-event simulator in the workspace that wants to show
//! up in `reproduce --bench-perf`'s events/sec column flushes its
//! per-run event count here once, when its report is built. The
//! counter is a plain atomic: totals are deterministic (the same
//! experiments flush the same counts in any interleaving) even though
//! flush *order* is not, and nothing behavioural ever reads it — it is
//! measurement plumbing, not simulation state.
//!
//! The bench runner snapshots the counter around a timed run:
//!
//! ```
//! use mtia_core::perfcount;
//!
//! let before = perfcount::events();
//! perfcount::add_events(12_345); // a simulator drains...
//! let simulated = perfcount::events() - before;
//! assert_eq!(simulated, 12_345);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

static DES_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` simulated events to the process-wide total.
pub fn add_events(n: u64) {
    DES_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// The process-wide total of simulated events flushed so far.
pub fn events() -> u64 {
    DES_EVENTS.load(Ordering::Relaxed)
}

/// Resets the counter to zero (bench-runner bookkeeping between runs).
pub fn reset_events() {
    DES_EVENTS.store(0, Ordering::Relaxed);
}
