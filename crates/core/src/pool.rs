//! Deterministic fork-join parallelism over `std::thread::scope`.
//!
//! Every sweep in this workspace is a list of pure `(config, seed)`
//! cells: evaluating cell *i* touches no state shared with cell *j*.
//! [`parallel_map`] exploits that — it fans the cells out over scoped
//! threads and collects results **by input index**, so the output
//! vector is identical whatever the thread count or OS scheduling
//! order. Combined with per-task RNG streams split via
//! [`crate::seed::derive_indexed`] (never a shared `&mut rng`), the
//! whole `reproduce` run is byte-identical at `--threads 1` and
//! `--threads N`.
//!
//! The pool is hermetic: scoped `std::thread` only, no work-stealing
//! deque, no new dependencies, no unsafe. Workers claim the next
//! unstarted index from a shared atomic counter, so long and short
//! cells balance without any up-front partitioning.
//!
//! # Determinism policy
//!
//! A loop may be routed through [`parallel_map`] only if each task is a
//! pure function of its inputs: no shared `&mut` RNG threading one
//! stream through the cells in order, no accumulation order that the
//! scheduler could reorder. Loops that *do* fold one RNG stream
//! sequentially (e.g. fleet studies sampling a survey then reusing the
//! stream) stay serial, or are first restructured to give every cell
//! its own derived seed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global thread-count override: 0 means "auto" (host parallelism).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`parallel_map`].
///
/// `0` restores the default (one worker per available hardware
/// thread). `reproduce --threads N` calls this once at startup;
/// results are identical for every setting — only wall-clock changes.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::SeqCst);
}

/// The worker count [`parallel_map`] will use: the [`set_threads`]
/// override if non-zero, otherwise the host's available parallelism.
pub fn configured_threads() -> usize {
    match CONFIGURED.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on the configured number of worker threads,
/// returning results in **input order** regardless of scheduling.
///
/// `f` receives `(index, item)`; the index is the item's position in
/// `items`, so per-task RNG streams can be split deterministically via
/// [`crate::seed::derive_indexed`]. `f` must be a pure function of its
/// arguments for the determinism guarantee to hold (it may still use
/// internal caches whose values are themselves deterministic).
///
/// # Panics
///
/// Propagates the first panic raised by any task.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_with(configured_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count (used by tests that
/// must compare thread counts without touching the global setting).
///
/// # Panics
///
/// Propagates the first panic raised by any task.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // One slot per task. Workers pull the next unclaimed index from
    // `next` and write the result into its own slot — index-ordered
    // collection is what makes the output schedule-independent.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = tasks[i]
                        .lock()
                        .expect("task slot poisoned")
                        .take()
                        .expect("each task is claimed exactly once");
                    let result = f(i, item);
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        for worker in workers {
            if let Err(payload) = worker.join() {
                // Re-raise the task's own panic payload, not the
                // scope's generic "a scoped thread panicked".
                std::panic::resume_unwind(payload);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task slot is filled before the scope ends")
        })
        .collect()
}

/// Runs a fixed set of heterogeneous closures concurrently, returning
/// their results in declaration order. Convenience wrapper over
/// [`parallel_map`] for "run these three independent analyses at once".
///
/// # Panics
///
/// Propagates the first panic raised by any closure.
pub fn parallel_invoke<R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    parallel_map(jobs, |_, job| job())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_with(8, items, |i, x| {
            // Stagger completion times to shuffle the finish order.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize, x: u64| -> u64 {
            let seed = crate::seed::derive_indexed(x, "pool-test", i as u64);
            seed.rotate_left((i % 13) as u32)
        };
        let serial = parallel_map_with(1, (0..257).collect(), work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(parallel_map_with(threads, (0..257).collect(), work), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(4, empty, |_, x| x).is_empty());
        assert_eq!(parallel_map_with(4, vec![7], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(
            parallel_map_with(32, vec![1, 2, 3], |_, x| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn parallel_invoke_preserves_declaration_order() {
        let jobs: Vec<Box<dyn FnOnce() -> &'static str + Send>> = vec![
            Box::new(|| "first"),
            Box::new(|| "second"),
            Box::new(|| "third"),
        ];
        assert_eq!(parallel_invoke(jobs), vec!["first", "second", "third"]);
    }

    #[test]
    fn set_threads_round_trips() {
        let before = configured_threads();
        set_threads(3);
        assert_eq!(configured_threads(), 3);
        set_threads(0);
        assert!(configured_threads() >= 1);
        set_threads(before);
    }

    #[test]
    #[should_panic(expected = "task panic propagates")]
    fn task_panics_propagate() {
        let _ = parallel_map_with(2, vec![0u32, 1, 2, 3], |i, _| {
            if i == 2 {
                panic!("task panic propagates");
            }
            i
        });
    }
}
