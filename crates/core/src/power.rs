//! Chip- and server-level power models.
//!
//! Used by the overclocking study (§5.2: does 1.1 → 1.35 GHz stay inside the
//! power envelope?) and the provisioned-power study (§5.3: P90-based rack
//! budgeting). Dynamic power scales with frequency and the square of voltage;
//! idle (leakage + always-on) power does not.

use crate::units::{Hertz, Watts};

/// A simple CMOS power model: `P(util, f, v) = idle + dyn · util · (f/f₀) · (v/v₀)²`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Idle power (leakage, clocks, LPDDR refresh, PHYs).
    pub idle: Watts,
    /// Dynamic power at nominal frequency/voltage and 100 % utilization.
    pub dynamic_at_nominal: Watts,
    /// Nominal frequency.
    pub nominal_frequency: Hertz,
    /// Nominal supply voltage in volts.
    pub nominal_voltage: f64,
}

impl PowerModel {
    /// A model for MTIA 2i: 85 W TDP / 65 W typical at 1.35 GHz, 0.85 V.
    ///
    /// Idle is set to 20 W (LPDDR refresh, NoC clocks, PCIe PHY), so typical
    /// production load corresponds to ~69 % average utilization — consistent
    /// with the §5.3 observation that servers rarely draw provisioned power.
    pub fn mtia2i() -> Self {
        PowerModel {
            idle: Watts::new(20.0),
            dynamic_at_nominal: Watts::new(65.0),
            nominal_frequency: Hertz::from_ghz(1.35),
            nominal_voltage: 0.85,
        }
    }

    /// A model for the GPU baseline: 700 W TDP, 560 W typical.
    pub fn gpu_baseline() -> Self {
        PowerModel {
            idle: Watts::new(90.0),
            dynamic_at_nominal: Watts::new(610.0),
            nominal_frequency: Hertz::from_ghz(1.98),
            nominal_voltage: 0.8,
        }
    }

    /// Power drawn at `utilization` (0..=1) with nominal frequency/voltage.
    pub fn at_utilization(&self, utilization: f64) -> Watts {
        self.at(utilization, self.nominal_frequency, self.nominal_voltage)
    }

    /// Power drawn at `utilization`, `frequency`, and `voltage`.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `0.0..=1.0`.
    pub fn at(&self, utilization: f64, frequency: Hertz, voltage: f64) -> Watts {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        let f_ratio = frequency.ratio(self.nominal_frequency);
        let v_ratio = (voltage / self.nominal_voltage).powi(2);
        self.idle
            + self
                .dynamic_at_nominal
                .scale(utilization * f_ratio * v_ratio)
    }

    /// Peak (100 % utilization) power at a given frequency.
    pub fn peak_at_frequency(&self, frequency: Hertz) -> Watts {
        self.at(1.0, frequency, self.nominal_voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtia_envelope_matches_table2() {
        let m = PowerModel::mtia2i();
        let peak = m.at_utilization(1.0);
        assert!((peak.as_f64() - 85.0).abs() < 1e-9, "peak {peak}");
        // Typical 65 W ↔ ~69 % utilization.
        let typical = m.at_utilization(0.69);
        assert!((typical.as_f64() - 65.0).abs() < 1.0, "typical {typical}");
    }

    #[test]
    fn idle_power_is_floor() {
        let m = PowerModel::mtia2i();
        assert_eq!(m.at_utilization(0.0), m.idle);
    }

    #[test]
    fn frequency_scales_dynamic_only() {
        let m = PowerModel::mtia2i();
        let at_design = m.at(1.0, Hertz::from_ghz(1.1), m.nominal_voltage);
        let at_deployed = m.at(1.0, Hertz::from_ghz(1.35), m.nominal_voltage);
        let expected = 20.0 + 65.0 * (1.1 / 1.35);
        assert!((at_design.as_f64() - expected).abs() < 1e-9);
        assert!(at_deployed.as_f64() > at_design.as_f64());
    }

    #[test]
    fn voltage_scales_quadratically() {
        let m = PowerModel::mtia2i();
        let bumped = m.at(1.0, m.nominal_frequency, 0.9);
        let expected = 20.0 + 65.0 * (0.9f64 / 0.85).powi(2);
        assert!((bumped.as_f64() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn overrange_utilization_panics() {
        let _ = PowerModel::mtia2i().at_utilization(1.5);
    }
}
