//! The fleet-wide simulation seed.
//!
//! Every stochastic experiment in this workspace — fault plans, Poisson
//! arrival streams, retry jitter, overclock sampling — must be a pure
//! function of one documented `u64` so that any reported number can be
//! reproduced bit-for-bit from the command line. Examples and
//! integration tests derive their RNG streams from [`DEFAULT_SEED`]
//! through [`derive`] rather than scattering ad-hoc literals.
//!
//! [`derive`] splits the root seed per *purpose label*, so independent
//! subsystems (e.g. the fault plan and the arrival process) get
//! decorrelated streams while remaining reproducible: changing the
//! label changes the stream, changing the root seed changes all of them.

/// The documented root seed for all examples and integration tests.
///
/// The value spells "MTIA 2i" in spirit: 0x2i = the second-generation
/// inference chip, ISCA 2025 paper.
pub const DEFAULT_SEED: u64 = 0x4D54_4941_2025_0002; // "MTIA" 2025 #2

/// Derives a purpose-specific seed from `root` and a textual `label`.
///
/// FNV-1a over the label folded into a SplitMix64 finalizer: stable
/// across platforms and releases, and documented here so external
/// tooling can reproduce the same streams.
///
/// ```
/// use mtia_core::seed::{derive, DEFAULT_SEED};
/// let faults = derive(DEFAULT_SEED, "fault-plan");
/// let arrivals = derive(DEFAULT_SEED, "arrivals");
/// assert_ne!(faults, arrivals);
/// assert_eq!(faults, derive(DEFAULT_SEED, "fault-plan"));
/// ```
pub fn derive(root: u64, label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut z = root ^ hash;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for task `index` of a parallel sweep labelled
/// `label`.
///
/// This is the per-task split used by [`crate::pool::parallel_map`]
/// loops: every cell of a sweep gets its own decorrelated RNG stream,
/// a pure function of `(root, label, index)` — never a position in a
/// shared sequential stream — so results are independent of execution
/// order and thread count.
///
/// ```
/// use mtia_core::seed::{derive_indexed, DEFAULT_SEED};
/// let t0 = derive_indexed(DEFAULT_SEED, "rollout/trial", 0);
/// let t1 = derive_indexed(DEFAULT_SEED, "rollout/trial", 1);
/// assert_ne!(t0, t1);
/// assert_eq!(t0, derive_indexed(DEFAULT_SEED, "rollout/trial", 0));
/// ```
pub fn derive_indexed(root: u64, label: &str, index: u64) -> u64 {
    // The index-th output of a SplitMix64 stream whose state starts at
    // the label-derived seed: same finalizer as `derive`, with the
    // golden-ratio increment scaled by the task index.
    let base = derive(root, label);
    let mut z = base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random permutation of `0..n`.
///
/// Fisher–Yates driven by the same per-index SplitMix64 stream as
/// [`derive_indexed`], so the permutation is a pure function of
/// `(root, label, n)` — independent of thread count, execution order,
/// and platform. Samplers that draw "random" subsets (e.g. the
/// design-space explorer's generation seeding) take a prefix of this
/// permutation instead of consuming a shared sequential RNG.
///
/// ```
/// use mtia_core::seed::{shuffled_indices, DEFAULT_SEED};
/// let a = shuffled_indices(DEFAULT_SEED, "explore/gen", 8);
/// let b = shuffled_indices(DEFAULT_SEED, "explore/gen", 8);
/// assert_eq!(a, b);
/// let mut sorted = a.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<_>>());
/// ```
pub fn shuffled_indices(root: u64, label: &str, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let r = derive_indexed(root, label, i as u64);
        let j = (r % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable_and_label_sensitive() {
        assert_eq!(derive(DEFAULT_SEED, "a"), derive(DEFAULT_SEED, "a"));
        assert_ne!(derive(DEFAULT_SEED, "a"), derive(DEFAULT_SEED, "b"));
        assert_ne!(derive(1, "a"), derive(2, "a"));
    }

    #[test]
    fn derived_streams_differ_from_root() {
        assert_ne!(derive(DEFAULT_SEED, "fault-plan"), DEFAULT_SEED);
    }

    #[test]
    fn indexed_derivation_is_stable_and_collision_free_in_practice() {
        let seeds: Vec<u64> = (0..10_000)
            .map(|i| derive_indexed(DEFAULT_SEED, "sweep", i))
            .collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "indexed seeds must not collide");
        assert_eq!(seeds[17], derive_indexed(DEFAULT_SEED, "sweep", 17));
        assert_ne!(
            derive_indexed(DEFAULT_SEED, "sweep", 0),
            derive_indexed(DEFAULT_SEED, "other", 0)
        );
    }

    #[test]
    fn shuffle_is_a_stable_label_sensitive_permutation() {
        let a = shuffled_indices(DEFAULT_SEED, "gen", 100);
        assert_eq!(a, shuffled_indices(DEFAULT_SEED, "gen", 100));
        assert_ne!(a, shuffled_indices(DEFAULT_SEED, "other", 100));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(shuffled_indices(DEFAULT_SEED, "gen", 0).is_empty());
        assert_eq!(shuffled_indices(DEFAULT_SEED, "gen", 1), vec![0]);
    }
}
