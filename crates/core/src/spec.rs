//! Hardware specifications for MTIA 1, MTIA 2i, the GPU comparator, and the
//! Grand-Teton-style servers that host them.
//!
//! Every number in [`chips::mtia2i`] and [`chips::mtia1`] comes straight from
//! Table 2 of the paper (plus §3 prose for the NoC, Control Core, and host
//! interface). Peak compute rates are *derived* from the microarchitecture
//! (MAC tiles × PEs × frequency) and unit-tested against the table, so the
//! simulator cannot silently drift from the published specification.
//!
//! # Examples
//!
//! ```
//! use mtia_core::spec::chips;
//! use mtia_core::dtype::DType;
//!
//! let chip = chips::mtia2i();
//! let fp16 = chip.gemm_peak(DType::Fp16, false);
//! assert!((fp16.as_tflops() - 177.0).abs() / 177.0 < 0.01);
//! ```

use std::fmt;

use crate::dtype::DType;
use crate::units::{Bandwidth, Bytes, FlopRate, Hertz, Watts};

/// A value carried per element data type (e.g. SIMD lanes per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerDtype<T> {
    /// Value for [`DType::Int8`].
    pub int8: T,
    /// Value for [`DType::Fp16`].
    pub fp16: T,
    /// Value for [`DType::Bf16`].
    pub bf16: T,
    /// Value for [`DType::Fp32`].
    pub fp32: T,
}

impl<T: Copy> PerDtype<T> {
    /// Creates a table with the same value for every data type.
    pub fn splat(v: T) -> Self {
        PerDtype {
            int8: v,
            fp16: v,
            bf16: v,
            fp32: v,
        }
    }

    /// Looks up the value for `dtype`.
    pub fn get(&self, dtype: DType) -> T {
        match dtype {
            DType::Int8 => self.int8,
            DType::Fp16 => self.fp16,
            DType::Bf16 => self.bf16,
            DType::Fp32 => self.fp32,
        }
    }
}

/// Optional hardware features, several of which were added in MTIA 2i
/// specifically to remove the instruction-issue bottleneck (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipFeature {
    /// Reduction-Engine min/max + SIMD row-wise scaling for dynamic INT8.
    DynamicInt8,
    /// Lossless ANS weight compression.
    AnsCompression,
    /// 2:4 structured weight sparsity in the DPE.
    Sparsity2To4,
    /// Hardware-accelerated eager-mode job launch (WQ broadcast + WQE).
    FastEagerMode,
    /// Multi-context GEMM custom instructions (avoid re-writing custom regs).
    MultiContextGemm,
    /// Auto-increment offsets for matmul instructions in tight loops.
    AutoIncrementOffset,
    /// `DMA_IN` taking an index and computing the address (TBE acceleration).
    IndexedDma,
    /// Unaligned DMA addresses (absent in MTIA 1).
    UnalignedDma,
    /// SIMD accumulation of up to 128 embedding rows per instruction.
    Accum128Rows,
    /// GZIP decompression engine on the PCIe path (up to 25 GB/s).
    GzipPcie,
    /// NoC broadcast-read support (one DRAM read feeds all PE columns).
    BroadcastRead,
    /// DMA prefetch from DRAM into SRAM ahead of Local Memory loads.
    DmaPrefetch,
}

/// Per-processing-element microarchitecture (Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PeSpec {
    /// Fast Local Memory per PE (384 KB on MTIA 2i, 128 KB on MTIA 1).
    pub local_memory: Bytes,
    /// Local Memory bandwidth available to the fixed-function units.
    pub local_memory_bw: Bandwidth,
    /// Number of MAC tiles in the Dot Product Engine (2 on MTIA 2i).
    pub dpe_mac_tiles: u32,
    /// MACs per tile (32 × 32 = 1024).
    pub dpe_macs_per_tile: u32,
    /// INT8 MACs run at full rate; FP16/BF16 at half rate.
    pub dpe_fp16_rate_factor: f64,
    /// SIMD-engine lanes (ops/cycle) per data type.
    pub simd_engine_lanes: PerDtype<u32>,
    /// RISC-V vector-extension lanes (ops/cycle) per data type (64 B regs).
    pub vector_lanes: PerDtype<u32>,
    /// Custom instructions the scalar core can issue per cycle.
    pub scalar_issue_per_cycle: f64,
    /// Maximum embedding rows accumulated per SIMD instruction.
    pub max_accum_rows: u32,
}

impl PeSpec {
    /// MAC operations per cycle for `dtype` (each MAC is 2 ops).
    pub fn dpe_ops_per_cycle(&self, dtype: DType) -> f64 {
        let macs = (self.dpe_mac_tiles * self.dpe_macs_per_tile) as f64;
        let rate = if dtype.is_integer() {
            1.0
        } else {
            self.dpe_fp16_rate_factor
        };
        macs * 2.0 * rate
    }
}

/// The shared on-chip SRAM (§3.6): partitioned at a fixed granularity into a
/// hardware-managed cache (LLC) and software-managed scratch (LLS).
#[derive(Debug, Clone, PartialEq)]
pub struct SramSpec {
    /// Total capacity (256 MB on MTIA 2i).
    pub capacity: Bytes,
    /// Aggregate bandwidth (2.7 TB/s on MTIA 2i).
    pub bandwidth: Bandwidth,
    /// Partition granularity between LLC and LLS (32 MB).
    pub partition_granule: Bytes,
}

impl SramSpec {
    /// Number of partition granules.
    pub fn granules(&self) -> u32 {
        (self.capacity.as_u64() / self.partition_granule.as_u64()) as u32
    }
}

/// Off-chip LPDDR5 DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct DramSpec {
    /// Capacity (64–128 GB on MTIA 2i; we model the base 64 GB SKU unless
    /// overridden).
    pub capacity: Bytes,
    /// Raw bandwidth before any ECC penalty (204.8 GB/s on MTIA 2i).
    pub bandwidth: Bandwidth,
    /// Whether the DRAM devices provide built-in ECC (LPDDR does not; the
    /// memory controller must compute it, costing bandwidth — §5.1).
    pub inline_ecc: bool,
}

/// Network-on-chip parameters (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct NocSpec {
    /// Aggregate bisection bandwidth. The paper gives only the 3.3× ratio
    /// over MTIA 1; absolute values are anchored so the SRAM's 2.7 TB/s can
    /// be delivered with headroom.
    pub bisection_bw: Bandwidth,
    /// Leaky-bucket traffic-shaping burst allowance per initiator.
    pub shaper_burst: Bytes,
    /// Maximum packet (fragment) size used to smooth traffic.
    pub max_fragment: Bytes,
    /// Whether a single read can be broadcast to all PE columns.
    pub broadcast_read: bool,
}

/// Host interface: PCIe, DMA, decompression (§3.1, §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct HostIfSpec {
    /// PCIe bandwidth per direction (8 × Gen5 = 32 GB/s on MTIA 2i).
    pub pcie_bw: Bandwidth,
    /// GZIP decompression throughput, if the engine is present.
    pub decompress_bw: Option<Bandwidth>,
}

/// Control core: coordinates job launch across the PE grid (§3.1, §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSpec {
    /// Number of control cores (4 RISC-V cores on MTIA 2i, 1 ARM on MTIA 1).
    pub cores: u32,
    /// Whether WQ descriptors can be broadcast to PEs (vs sent one by one).
    pub wq_broadcast: bool,
    /// Whether PEs have a Work Queue Engine that DMAs WQ requests.
    pub pe_wqe: bool,
}

/// Complete chip specification (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Marketing name, e.g. `"MTIA 2i"`.
    pub name: String,
    /// Process node, e.g. `"TSMC 5nm"`.
    pub process: String,
    /// Operating frequency (1.35 GHz deployed for MTIA 2i after the §5.2
    /// overclocking study; the design point was 1.1 GHz).
    pub frequency: Hertz,
    /// Original design frequency, before any overclocking.
    pub design_frequency: Hertz,
    /// PE grid rows.
    pub pe_rows: u32,
    /// PE grid columns.
    pub pe_cols: u32,
    /// Per-PE microarchitecture.
    pub pe: PeSpec,
    /// Shared on-chip SRAM.
    pub sram: SramSpec,
    /// Off-chip DRAM.
    pub dram: DramSpec,
    /// Network-on-chip.
    pub noc: NocSpec,
    /// Host interface.
    pub host_if: HostIfSpec,
    /// Control core.
    pub control: ControlSpec,
    /// Thermal design power.
    pub tdp: Watts,
    /// Typical power under production load.
    pub typical_power: Watts,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Optional feature set.
    features: Vec<ChipFeature>,
}

impl ChipSpec {
    /// Total number of PEs.
    pub fn pe_count(&self) -> u32 {
        self.pe_rows * self.pe_cols
    }

    /// Whether the chip implements `feature`.
    pub fn has_feature(&self, feature: ChipFeature) -> bool {
        self.features.contains(&feature)
    }

    /// All features the chip implements.
    pub fn features(&self) -> &[ChipFeature] {
        &self.features
    }

    /// Peak GEMM rate for `dtype`, optionally with 2:4 sparsity (which
    /// doubles effective throughput when supported).
    pub fn gemm_peak(&self, dtype: DType, sparsity: bool) -> FlopRate {
        let per_pe = self.pe.dpe_ops_per_cycle(dtype);
        let raw = per_pe * self.pe_count() as f64 * self.frequency.as_hz();
        let factor = if sparsity && self.has_feature(ChipFeature::Sparsity2To4) {
            2.0
        } else {
            1.0
        };
        FlopRate::from_flops_per_s(raw * factor)
    }

    /// Peak SIMD-engine rate for `dtype` across the whole chip.
    pub fn simd_engine_peak(&self, dtype: DType) -> FlopRate {
        let lanes = self.pe.simd_engine_lanes.get(dtype) as f64;
        FlopRate::from_flops_per_s(lanes * self.pe_count() as f64 * self.frequency.as_hz())
    }

    /// Peak RISC-V vector-extension rate for `dtype` across the whole chip.
    pub fn vector_peak(&self, dtype: DType) -> FlopRate {
        let lanes = self.pe.vector_lanes.get(dtype) as f64;
        FlopRate::from_flops_per_s(lanes * self.pe_count() as f64 * self.frequency.as_hz())
    }

    /// Combined non-GEMM vector rate (SIMD engine + vector core can be
    /// pipelined on distinct kernel phases; the better of the two is the
    /// realistic per-kernel peak).
    pub fn simd_best_peak(&self, dtype: DType) -> FlopRate {
        let a = self.simd_engine_peak(dtype);
        let b = self.vector_peak(dtype);
        if a.as_flops_per_s() >= b.as_flops_per_s() {
            a
        } else {
            b
        }
    }

    /// Aggregate Local Memory bandwidth across all PEs.
    pub fn total_local_memory_bw(&self) -> Bandwidth {
        self.pe.local_memory_bw * self.pe_count() as f64
    }

    /// Returns a copy of this spec clocked at `frequency`, scaling the
    /// frequency-proportional rates (compute, SRAM, NoC, Local Memory) but
    /// leaving the DRAM and PCIe interfaces untouched — exactly what chip
    /// overclocking (§5.2) changes.
    #[must_use]
    pub fn at_frequency(&self, frequency: Hertz) -> ChipSpec {
        let ratio = frequency.ratio(self.frequency);
        let mut spec = self.clone();
        spec.frequency = frequency;
        spec.sram.bandwidth = spec.sram.bandwidth.scale(ratio);
        spec.noc.bisection_bw = spec.noc.bisection_bw.scale(ratio);
        spec.pe.local_memory_bw = spec.pe.local_memory_bw.scale(ratio);
        spec
    }

    /// Effective DRAM bandwidth under `ecc`, applying the controller-based
    /// ECC penalty from §5.1 when enabled on DRAM without inline ECC.
    pub fn effective_dram_bw(&self, ecc: EccMode) -> Bandwidth {
        self.dram
            .bandwidth
            .scale(ecc.bandwidth_factor(self.dram.inline_ecc))
    }

    /// A hypothetical variant with a different shared-SRAM capacity —
    /// for the §3.6 design-choice ablation.
    #[must_use]
    pub fn with_sram_capacity(&self, capacity: Bytes) -> ChipSpec {
        let mut spec = self.clone();
        spec.sram.capacity = capacity;
        spec
    }

    /// A hypothetical variant with different off-chip memory (e.g. an HBM
    /// stack instead of LPDDR) — for the §3.6 design-choice ablation.
    /// HBM carries inline ECC, so the §5.1 controller penalty vanishes.
    #[must_use]
    pub fn with_hbm(&self, bandwidth: Bandwidth, capacity: Bytes) -> ChipSpec {
        let mut spec = self.clone();
        spec.dram = DramSpec {
            capacity,
            bandwidth,
            inline_ecc: true,
        };
        spec
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} PEs @ {}, SRAM {} @ {}, DRAM {} @ {})",
            self.name,
            self.process,
            self.pe_count(),
            self.frequency,
            self.sram.capacity,
            self.sram.bandwidth,
            self.dram.capacity,
            self.dram.bandwidth,
        )
    }
}

/// ECC configuration for the LPDDR controller (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccMode {
    /// No ECC: full bandwidth, memory errors flow into the model.
    Disabled,
    /// Controller-computed ECC: read-modify-write overhead costs 10–15 % of
    /// throughput. We model the midpoint, 12.5 %.
    #[default]
    ControllerEcc,
}

impl EccMode {
    /// Fraction of raw DRAM bandwidth that remains usable.
    pub fn bandwidth_factor(self, inline_ecc: bool) -> f64 {
        match self {
            EccMode::Disabled => 1.0,
            // Inline (on-die) ECC would be free; controller ECC is not.
            EccMode::ControllerEcc if inline_ecc => 1.0,
            EccMode::ControllerEcc => 1.0 - crate::calib::CONTROLLER_ECC_PENALTY,
        }
    }
}

/// A GPU comparator used for all relative Perf/TCO and Perf/Watt results.
///
/// The paper never names its GPU; this is a parametric HBM-class inference
/// GPU whose headline numbers are typical of the A100 generation the MTIA 2i
/// deployment overlapped with. See [`crate::calib`] for how the TCO anchors
/// are backed out of the paper's published ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Dense FP16 tensor-core peak.
    pub fp16_peak: FlopRate,
    /// Dense INT8 tensor-core peak.
    pub int8_peak: FlopRate,
    /// HBM bandwidth.
    pub hbm_bw: Bandwidth,
    /// HBM capacity.
    pub hbm_capacity: Bytes,
    /// On-chip L2 cache.
    pub l2_capacity: Bytes,
    /// L2 bandwidth.
    pub l2_bw: Bandwidth,
    /// Board TDP.
    pub tdp: Watts,
    /// Typical production power.
    pub typical_power: Watts,
    /// Kernel-launch overhead per kernel (host-driven launch path).
    pub kernel_launch_overhead: crate::units::SimTime,
}

/// A server platform hosting accelerators (§3.4: Grand Teton).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Platform name.
    pub name: String,
    /// CPU sockets.
    pub cpu_sockets: u32,
    /// Cores per CPU socket.
    pub cores_per_socket: u32,
    /// Host DRAM per socket.
    pub host_dram_per_socket: Bytes,
    /// Host DRAM bandwidth per socket.
    pub host_dram_bw_per_socket: Bandwidth,
    /// Ethernet NIC bandwidth per socket.
    pub nic_bw_per_socket: Bandwidth,
    /// Accelerators per server.
    pub accelerators: u32,
    /// Accelerators sharing one PCIe switch (sharding locality domain).
    pub accels_per_pcie_switch: u32,
    /// Non-accelerator power draw (CPUs, DRAM, fans, NICs, motherboard).
    pub host_power: Watts,
}

impl ServerSpec {
    /// CPU cores available per accelerator.
    pub fn cores_per_accel(&self) -> f64 {
        (self.cpu_sockets * self.cores_per_socket) as f64 / self.accelerators as f64
    }

    /// Host DRAM bandwidth available per accelerator when all accelerators
    /// are drawing on it simultaneously — the §3.4 bottleneck.
    pub fn host_dram_bw_per_accel(&self) -> Bandwidth {
        (self.host_dram_bw_per_socket * self.cpu_sockets as f64) / self.accelerators as f64
    }

    /// NIC bandwidth available per accelerator.
    pub fn nic_bw_per_accel(&self) -> Bandwidth {
        (self.nic_bw_per_socket * self.cpu_sockets as f64) / self.accelerators as f64
    }
}

/// Canonical chip and server instances.
pub mod chips {
    use super::*;
    use crate::units::SimTime;

    /// MTIA 2i as deployed (Table 2, right column; 1.35 GHz after the §5.2
    /// overclocking study).
    pub fn mtia2i() -> ChipSpec {
        ChipSpec {
            name: "MTIA 2i".to_string(),
            process: "TSMC 5nm".to_string(),
            frequency: Hertz::from_ghz(1.35),
            design_frequency: Hertz::from_ghz(1.1),
            pe_rows: 8,
            pe_cols: 8,
            pe: PeSpec {
                local_memory: Bytes::from_kib(384),
                local_memory_bw: Bandwidth::from_tb_per_s(1.0),
                dpe_mac_tiles: 2,
                dpe_macs_per_tile: 32 * 32,
                dpe_fp16_rate_factor: 0.5,
                // The SIMD Engine sustains 64 lanes for every dtype (5.5
                // TOPS chip-wide): 2× FP16 and 4× BF16/FP32 vs the vector
                // core (§3.2).
                simd_engine_lanes: PerDtype::splat(64),
                // 64 B vector registers: 64/size_bytes lanes.
                vector_lanes: PerDtype {
                    int8: 64,
                    fp16: 32,
                    bf16: 16,
                    fp32: 16,
                },
                scalar_issue_per_cycle: 0.5,
                max_accum_rows: 128,
            },
            sram: SramSpec {
                capacity: Bytes::from_mib(256),
                bandwidth: Bandwidth::from_tb_per_s(2.7),
                partition_granule: Bytes::from_mib(32),
            },
            dram: DramSpec {
                capacity: Bytes::from_gib(64),
                bandwidth: Bandwidth::from_gb_per_s(204.8),
                inline_ecc: false,
            },
            noc: NocSpec {
                bisection_bw: Bandwidth::from_tb_per_s(3.0),
                shaper_burst: Bytes::from_kib(64),
                max_fragment: Bytes::from_kib(4),
                broadcast_read: true,
            },
            host_if: HostIfSpec {
                pcie_bw: Bandwidth::from_gb_per_s(32.0),
                decompress_bw: Some(Bandwidth::from_gb_per_s(25.0)),
            },
            control: ControlSpec {
                cores: 4,
                wq_broadcast: true,
                pe_wqe: true,
            },
            tdp: Watts::new(85.0),
            typical_power: Watts::new(65.0),
            die_area_mm2: 25.6 * 16.4,
            features: vec![
                ChipFeature::DynamicInt8,
                ChipFeature::AnsCompression,
                ChipFeature::Sparsity2To4,
                ChipFeature::FastEagerMode,
                ChipFeature::MultiContextGemm,
                ChipFeature::AutoIncrementOffset,
                ChipFeature::IndexedDma,
                ChipFeature::UnalignedDma,
                ChipFeature::Accum128Rows,
                ChipFeature::GzipPcie,
                ChipFeature::BroadcastRead,
                ChipFeature::DmaPrefetch,
            ],
        }
    }

    /// MTIA 2i with the 128 GB LPDDR SKU (Table 2 lists 64–128 GB; the
    /// larger SKU serves the big-embedding ranking models).
    pub fn mtia2i_128gb() -> ChipSpec {
        let mut spec = mtia2i();
        spec.dram.capacity = Bytes::from_gib(128);
        spec
    }

    /// MTIA 2i at its original 1.1 GHz design frequency (pre-overclocking).
    pub fn mtia2i_design_freq() -> ChipSpec {
        let spec = mtia2i();
        let design = spec.design_frequency;
        spec.at_frequency(design)
    }

    /// MTIA 2i with the §3.3 instruction-issue enhancements removed —
    /// the "initial kernel implementation" baseline that was bottlenecked by
    /// the custom-instruction issue rate.
    pub fn mtia2i_without_issue_enhancements() -> ChipSpec {
        let mut spec = mtia2i();
        spec.name = "MTIA 2i (no issue enhancements)".to_string();
        spec.features.retain(|f| {
            !matches!(
                f,
                ChipFeature::MultiContextGemm
                    | ChipFeature::AutoIncrementOffset
                    | ChipFeature::IndexedDma
                    | ChipFeature::Accum128Rows
                    | ChipFeature::DmaPrefetch
            )
        });
        spec.pe.max_accum_rows = 32;
        spec
    }

    /// MTIA 1 (Table 2, left column).
    pub fn mtia1() -> ChipSpec {
        ChipSpec {
            name: "MTIA 1".to_string(),
            process: "TSMC 7nm".to_string(),
            frequency: Hertz::from_mhz(800.0),
            design_frequency: Hertz::from_mhz(800.0),
            pe_rows: 8,
            pe_cols: 8,
            pe: PeSpec {
                local_memory: Bytes::from_kib(128),
                local_memory_bw: Bandwidth::from_gb_per_s(400.0),
                dpe_mac_tiles: 1,
                dpe_macs_per_tile: 32 * 32,
                dpe_fp16_rate_factor: 0.5,
                // MTIA 1's SIMD engine matches its vector core widths.
                simd_engine_lanes: PerDtype {
                    int8: 64,
                    fp16: 32,
                    bf16: 16,
                    fp32: 16,
                },
                vector_lanes: PerDtype {
                    int8: 64,
                    fp16: 32,
                    bf16: 16,
                    fp32: 16,
                },
                scalar_issue_per_cycle: 0.5,
                max_accum_rows: 32,
            },
            sram: SramSpec {
                capacity: Bytes::from_mib(128),
                bandwidth: Bandwidth::from_gb_per_s(800.0),
                partition_granule: Bytes::from_mib(16),
            },
            dram: DramSpec {
                capacity: Bytes::from_gib(32),
                bandwidth: Bandwidth::from_gb_per_s(176.0),
                inline_ecc: false,
            },
            noc: NocSpec {
                bisection_bw: Bandwidth::from_gb_per_s(900.0),
                shaper_burst: Bytes::from_kib(64),
                max_fragment: Bytes::from_kib(4),
                broadcast_read: false,
            },
            host_if: HostIfSpec {
                pcie_bw: Bandwidth::from_gb_per_s(16.0),
                decompress_bw: None,
            },
            control: ControlSpec {
                cores: 1,
                wq_broadcast: false,
                pe_wqe: false,
            },
            tdp: Watts::new(35.0),
            typical_power: Watts::new(25.0),
            die_area_mm2: 19.3 * 19.1,
            features: vec![],
        }
    }

    /// The parametric GPU comparator: an H100-generation inference GPU,
    /// the contemporary of the 2024 MTIA 2i deployment.
    pub fn gpu_baseline() -> GpuSpec {
        GpuSpec {
            name: "GPU baseline".to_string(),
            fp16_peak: FlopRate::from_tflops(989.0),
            int8_peak: FlopRate::from_tflops(1979.0),
            hbm_bw: Bandwidth::from_tb_per_s(3.35),
            hbm_capacity: Bytes::from_gib(80),
            l2_capacity: Bytes::from_mib(50),
            l2_bw: Bandwidth::from_tb_per_s(12.0),
            tdp: Watts::new(700.0),
            typical_power: Watts::new(560.0),
            kernel_launch_overhead: SimTime::from_micros(2),
        }
    }

    /// An A100-generation comparator, for sensitivity analysis of the
    /// GPU-baseline calibration.
    pub fn gpu_a100() -> GpuSpec {
        GpuSpec {
            name: "GPU baseline (A100-class)".to_string(),
            fp16_peak: FlopRate::from_tflops(312.0),
            int8_peak: FlopRate::from_tflops(624.0),
            hbm_bw: Bandwidth::from_tb_per_s(2.0),
            hbm_capacity: Bytes::from_gib(80),
            l2_capacity: Bytes::from_mib(40),
            l2_bw: Bandwidth::from_tb_per_s(6.0),
            tdp: Watts::new(400.0),
            typical_power: Watts::new(330.0),
            kernel_launch_overhead: SimTime::from_micros(2),
        }
    }

    /// Grand-Teton-style MTIA 2i server: 2 CPUs, 24 accelerators (§3.4).
    pub fn mtia_server() -> ServerSpec {
        ServerSpec {
            name: "Grand Teton (MTIA 2i)".to_string(),
            cpu_sockets: 2,
            cores_per_socket: 96,
            host_dram_per_socket: Bytes::from_gib(12 * 96),
            host_dram_bw_per_socket: Bandwidth::from_gb_per_s(460.0),
            nic_bw_per_socket: Bandwidth::from_gb_per_s(50.0),
            accelerators: 24,
            accels_per_pcie_switch: 12,
            host_power: Watts::new(crate::calib::MTIA_SERVER_HOST_POWER_W),
        }
    }

    /// Grand-Teton-style GPU server: 2 CPUs, 8 GPUs.
    pub fn gpu_server() -> ServerSpec {
        ServerSpec {
            name: "Grand Teton (GPU)".to_string(),
            cpu_sockets: 2,
            cores_per_socket: 96,
            host_dram_per_socket: Bytes::from_gib(12 * 96),
            host_dram_bw_per_socket: Bandwidth::from_gb_per_s(460.0),
            nic_bw_per_socket: Bandwidth::from_gb_per_s(50.0),
            accelerators: 8,
            accels_per_pcie_switch: 4,
            host_power: Watts::new(crate::calib::GPU_SERVER_HOST_POWER_W),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::chips::*;
    use super::*;

    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected.abs() <= tol
    }

    #[test]
    fn mtia2i_gemm_peaks_match_table2() {
        let chip = mtia2i();
        // 354 TOPS INT8, 177 TFLOPS FP16/BF16 (Table 2), derived from
        // 64 PEs × 2 tiles × 1024 MACs × 2 ops × 1.35 GHz.
        assert!(close(
            chip.gemm_peak(DType::Int8, false).as_tflops(),
            354.0,
            0.01
        ));
        assert!(close(
            chip.gemm_peak(DType::Fp16, false).as_tflops(),
            177.0,
            0.01
        ));
        assert!(close(
            chip.gemm_peak(DType::Bf16, false).as_tflops(),
            177.0,
            0.01
        ));
        // 2:4 sparsity doubles: 708 / 354.
        assert!(close(
            chip.gemm_peak(DType::Int8, true).as_tflops(),
            708.0,
            0.01
        ));
        assert!(close(
            chip.gemm_peak(DType::Fp16, true).as_tflops(),
            354.0,
            0.01
        ));
    }

    #[test]
    fn mtia2i_simd_peaks_match_table2() {
        let chip = mtia2i();
        // Vector core: 5.5 INT8, 2.8 FP16, 1.4 BF16/FP32 TOPS.
        assert!(close(chip.vector_peak(DType::Int8).as_tflops(), 5.5, 0.01));
        assert!(close(chip.vector_peak(DType::Fp16).as_tflops(), 2.8, 0.02));
        assert!(close(chip.vector_peak(DType::Fp32).as_tflops(), 1.4, 0.02));
        // SIMD engine: 5.5 TOPS for all dtypes.
        for dt in DType::ALL {
            assert!(close(chip.simd_engine_peak(dt).as_tflops(), 5.5, 0.01));
        }
    }

    #[test]
    fn mtia2i_gemm_to_simd_ratio_is_32() {
        let chip = mtia2i();
        let ratio = chip.gemm_peak(DType::Fp16, false).as_flops_per_s()
            / chip.simd_engine_peak(DType::Fp32).as_flops_per_s();
        assert!(close(ratio, 32.0, 0.01), "GEMM:SIMD ratio was {ratio}");
    }

    #[test]
    fn mtia1_peaks_match_table2() {
        let chip = mtia1();
        // Table 2 lists 102.4 INT8 / 51.2 FP16 TOPS for MTIA 1; the derived
        // value 64 × 1024 × 2 × 0.8 GHz = 104.9 is within rounding of that.
        assert!(close(
            chip.gemm_peak(DType::Int8, false).as_tflops(),
            102.4,
            0.03
        ));
        assert!(close(
            chip.gemm_peak(DType::Fp16, false).as_tflops(),
            51.2,
            0.03
        ));
        assert!(close(chip.vector_peak(DType::Int8).as_tflops(), 3.2, 0.03));
        assert!(close(chip.vector_peak(DType::Fp16).as_tflops(), 1.6, 0.03));
        assert!(!chip.has_feature(ChipFeature::Sparsity2To4));
    }

    #[test]
    fn generational_ratios_match_paper() {
        // §1: >3× peak FLOPS, >3× SRAM bandwidth, >3× NoC bandwidth,
        // 2× DRAM capacity, ~1.4× DRAM bandwidth, 3× local memory.
        let gen1 = mtia1();
        let gen2 = mtia2i();
        let flops_ratio = gen2.gemm_peak(DType::Int8, false).as_flops_per_s()
            / gen1.gemm_peak(DType::Int8, false).as_flops_per_s();
        assert!(flops_ratio > 3.0, "FLOPS ratio {flops_ratio}");
        let sram_bw_ratio =
            gen2.sram.bandwidth.as_bytes_per_s() / gen1.sram.bandwidth.as_bytes_per_s();
        assert!(sram_bw_ratio > 3.0, "SRAM BW ratio {sram_bw_ratio}");
        let noc_ratio =
            gen2.noc.bisection_bw.as_bytes_per_s() / gen1.noc.bisection_bw.as_bytes_per_s();
        assert!(close(noc_ratio, 3.3, 0.05), "NoC ratio {noc_ratio}");
        assert_eq!(gen2.dram.capacity.as_u64(), gen1.dram.capacity.as_u64() * 2);
        let dram_bw_ratio =
            gen2.dram.bandwidth.as_bytes_per_s() / gen1.dram.bandwidth.as_bytes_per_s();
        assert!(close(dram_bw_ratio, 204.8 / 176.0, 0.01));
        assert_eq!(
            gen2.pe.local_memory.as_u64(),
            gen1.pe.local_memory.as_u64() * 3
        );
    }

    #[test]
    fn sram_to_dram_bandwidth_gap_is_13x() {
        // §3.6: "2.7 TB/s ... whereas LPDDR offers just 204 GB/s — a 13×
        // difference".
        let chip = mtia2i();
        let gap = chip.sram.bandwidth.as_bytes_per_s() / chip.dram.bandwidth.as_bytes_per_s();
        assert!(close(gap, 13.2, 0.02), "gap {gap}");
    }

    #[test]
    fn sram_partitions_into_eight_granules() {
        assert_eq!(mtia2i().sram.granules(), 8);
    }

    #[test]
    fn at_frequency_scales_core_rates_only() {
        let base = mtia2i_design_freq();
        assert!(close(base.frequency.as_ghz(), 1.1, 1e-9));
        let oc = base.at_frequency(Hertz::from_ghz(1.35));
        let ratio = 1.35 / 1.1;
        assert!(close(
            oc.gemm_peak(DType::Fp16, false).as_flops_per_s()
                / base.gemm_peak(DType::Fp16, false).as_flops_per_s(),
            ratio,
            1e-6
        ));
        assert!(close(
            oc.sram.bandwidth.as_bytes_per_s() / base.sram.bandwidth.as_bytes_per_s(),
            ratio,
            1e-6
        ));
        // DRAM and PCIe are unchanged by overclocking the core.
        assert_eq!(oc.dram.bandwidth, base.dram.bandwidth);
        assert_eq!(oc.host_if.pcie_bw, base.host_if.pcie_bw);
    }

    #[test]
    fn ecc_penalty_only_applies_without_inline_ecc() {
        let chip = mtia2i();
        let raw = chip.effective_dram_bw(EccMode::Disabled);
        let ecc = chip.effective_dram_bw(EccMode::ControllerEcc);
        let penalty = 1.0 - ecc.as_bytes_per_s() / raw.as_bytes_per_s();
        // §5.1: 10–15 % throughput penalty.
        assert!((0.10..=0.15).contains(&penalty), "penalty {penalty}");

        let mut inline = chip.clone();
        inline.dram.inline_ecc = true;
        assert_eq!(
            inline.effective_dram_bw(EccMode::ControllerEcc),
            inline.effective_dram_bw(EccMode::Disabled)
        );
    }

    #[test]
    fn issue_enhancement_stripping() {
        let full = mtia2i();
        let bare = mtia2i_without_issue_enhancements();
        assert!(full.has_feature(ChipFeature::AutoIncrementOffset));
        assert!(!bare.has_feature(ChipFeature::AutoIncrementOffset));
        assert!(!bare.has_feature(ChipFeature::IndexedDma));
        assert_eq!(bare.pe.max_accum_rows, 32);
        // Non-issue features are retained.
        assert!(bare.has_feature(ChipFeature::Sparsity2To4));
    }

    #[test]
    fn server_per_accel_resources_match_section_3_4() {
        // §3.4: 8 cores, 96 GB host DRAM at 38 GB/s, 4.17 GB/s NIC per
        // accelerator.
        let server = mtia_server();
        assert!(close(server.cores_per_accel(), 8.0, 1e-9));
        assert!(close(
            server.host_dram_bw_per_accel().as_gb_per_s(),
            38.3,
            0.01
        ));
        assert!(close(server.nic_bw_per_accel().as_gb_per_s(), 4.17, 0.01));
        assert_eq!(server.accelerators, 24);
        assert_eq!(server.accels_per_pcie_switch, 12);
    }

    #[test]
    fn per_dtype_lookup() {
        let t = PerDtype {
            int8: 1,
            fp16: 2,
            bf16: 3,
            fp32: 4,
        };
        assert_eq!(t.get(DType::Int8), 1);
        assert_eq!(t.get(DType::Fp16), 2);
        assert_eq!(t.get(DType::Bf16), 3);
        assert_eq!(t.get(DType::Fp32), 4);
        assert_eq!(PerDtype::splat(7).get(DType::Bf16), 7);
    }

    #[test]
    fn chip_display_mentions_name() {
        let s = mtia2i().to_string();
        assert!(s.contains("MTIA 2i"));
        assert!(s.contains("64 PEs"));
    }
}
