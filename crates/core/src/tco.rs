//! Total-cost-of-ownership accounting.
//!
//! The paper's headline result is a 44 % average TCO reduction versus GPUs
//! (§1), reported per model as relative **Perf/TCO** and **Perf/Watt**
//! (Fig. 4, Fig. 6). This module turns a server population and a measured
//! throughput into those two relatives.
//!
//! # Examples
//!
//! ```
//! use mtia_core::tco::{ServerCost, PlatformMetrics};
//! use mtia_core::units::Watts;
//!
//! let gpu = PlatformMetrics::new(ServerCost::gpu_server(), 1000.0);
//! let mtia = PlatformMetrics::new(ServerCost::mtia_server(), 780.0);
//! let rel = mtia.relative_to(&gpu);
//! assert!(rel.perf_per_tco > 1.5); // MTIA wins on Perf/TCO
//! ```

use std::fmt;

use crate::calib;
use crate::units::{CostUnits, Watts};

/// Capex + lifetime-energy cost of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCost {
    /// One-time hardware cost.
    pub capex: CostUnits,
    /// Provisioned power for the whole server.
    pub power: Watts,
}

impl ServerCost {
    /// Builds a server cost from platform parts.
    pub fn new(capex: CostUnits, power: Watts) -> Self {
        ServerCost { capex, power }
    }

    /// The calibrated 24-accelerator MTIA 2i server.
    pub fn mtia_server() -> Self {
        let capex = CostUnits::new(calib::SERVER_BASE_COST + 24.0 * calib::MTIA_MODULE_COST);
        let power = Watts::new(calib::MTIA_SERVER_HOST_POWER_W) + Watts::new(24.0 * 65.0);
        ServerCost { capex, power }
    }

    /// The calibrated 8-GPU server (H100-class comparator).
    pub fn gpu_server() -> Self {
        Self::gpu_server_with(calib::GPU_MODULE_COST, Watts::new(560.0))
    }

    /// An 8-GPU server with explicit per-module cost and typical power —
    /// for comparator-generation sensitivity studies.
    pub fn gpu_server_with(module_cost: f64, typical_power: Watts) -> Self {
        let capex = CostUnits::new(calib::SERVER_BASE_COST + 8.0 * module_cost);
        let power = Watts::new(calib::GPU_SERVER_HOST_POWER_W) + typical_power.scale(8.0);
        ServerCost { capex, power }
    }

    /// An MTIA server whose accelerators draw `per_chip_power` (used by the
    /// §5.3 provisioned-power study and the §5.2 overclocking study).
    pub fn mtia_server_at_power(per_chip_power: Watts) -> Self {
        let capex = CostUnits::new(calib::SERVER_BASE_COST + 24.0 * calib::MTIA_MODULE_COST);
        let power = Watts::new(calib::MTIA_SERVER_HOST_POWER_W) + per_chip_power.scale(24.0);
        ServerCost { capex, power }
    }

    /// Total cost of ownership: capex plus lifetime energy.
    pub fn tco(&self) -> CostUnits {
        self.capex + CostUnits::new(self.power.as_f64() * calib::POWER_COST_PER_WATT)
    }
}

/// Throughput achieved on a platform together with what the platform costs.
///
/// Throughput units are arbitrary (requests/s, samples/s) but must match
/// between the two sides of a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformMetrics {
    /// Server cost basis.
    pub cost: ServerCost,
    /// Sustained throughput per server, in caller-chosen units.
    pub throughput: f64,
}

impl PlatformMetrics {
    /// Creates platform metrics.
    ///
    /// # Panics
    ///
    /// Panics if `throughput` is negative or non-finite.
    pub fn new(cost: ServerCost, throughput: f64) -> Self {
        assert!(
            throughput.is_finite() && throughput >= 0.0,
            "throughput must be finite and non-negative"
        );
        PlatformMetrics { cost, throughput }
    }

    /// Throughput per cost unit.
    pub fn perf_per_tco(&self) -> f64 {
        self.throughput / self.cost.tco().as_f64()
    }

    /// Throughput per provisioned watt.
    pub fn perf_per_watt(&self) -> f64 {
        self.throughput / self.cost.power.as_f64()
    }

    /// Both efficiency metrics relative to a `baseline` platform
    /// (the GPU server in all of the paper's figures).
    pub fn relative_to(&self, baseline: &PlatformMetrics) -> RelativeEfficiency {
        RelativeEfficiency {
            perf: self.throughput / baseline.throughput,
            perf_per_tco: self.perf_per_tco() / baseline.perf_per_tco(),
            perf_per_watt: self.perf_per_watt() / baseline.perf_per_watt(),
        }
    }
}

/// Perf, Perf/TCO, and Perf/Watt of one platform relative to a baseline.
///
/// A `perf_per_tco` of 1.8 reads as "180 % of the GPU baseline", the way
/// Fig. 4 and Fig. 6 are labelled. The TCO *reduction* of §1 is
/// `1 - 1/perf_per_tco`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeEfficiency {
    /// Raw throughput ratio.
    pub perf: f64,
    /// Perf/TCO ratio.
    pub perf_per_tco: f64,
    /// Perf/Watt ratio.
    pub perf_per_watt: f64,
}

impl RelativeEfficiency {
    /// The equivalent TCO reduction, e.g. `0.44` for a 1.79× Perf/TCO gain.
    pub fn tco_reduction(&self) -> f64 {
        1.0 - 1.0 / self.perf_per_tco
    }
}

impl fmt::Display for RelativeEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perf {:.0}%, perf/TCO {:.0}%, perf/W {:.0}%",
            self.perf * 100.0,
            self.perf_per_tco * 100.0,
            self.perf_per_watt * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_server_tco_composition() {
        let gpu = ServerCost::gpu_server();
        assert_eq!(gpu.capex.as_f64(), 1000.0);
        // Energy should be a meaningful but non-dominant share (~25 %).
        let energy = gpu.tco().as_f64() - gpu.capex.as_f64();
        let share = energy / gpu.tco().as_f64();
        assert!(share > 0.15 && share < 0.35, "energy share {share}");
    }

    #[test]
    fn mtia_server_is_cheaper_and_lower_power() {
        let mtia = ServerCost::mtia_server();
        let gpu = ServerCost::gpu_server();
        assert!(mtia.tco().as_f64() < gpu.tco().as_f64());
        assert!(mtia.power.as_f64() < gpu.power.as_f64());
    }

    #[test]
    fn headline_tco_reduction_band() {
        // With the calibrated costs, an MTIA server at ~70 % of GPU-server
        // throughput (the simulator's average across the Fig. 6 zoo) lands
        // at the paper's 44 % average TCO reduction.
        let gpu = PlatformMetrics::new(ServerCost::gpu_server(), 1.0);
        let mtia = PlatformMetrics::new(ServerCost::mtia_server(), 0.70);
        let rel = mtia.relative_to(&gpu);
        assert!(
            (rel.tco_reduction() - 0.44).abs() < 0.05,
            "tco reduction {}",
            rel.tco_reduction()
        );
        // Perf/Watt clearly smaller than Perf/TCO (§7: "easier to
        // outperform GPUs in Perf/TCO than in Perf/Watt").
        assert!(rel.perf_per_watt > 0.9 && rel.perf_per_watt < 1.6);
        assert!(rel.perf_per_tco > rel.perf_per_watt);
    }

    #[test]
    fn relative_to_identity() {
        let gpu = PlatformMetrics::new(ServerCost::gpu_server(), 5.0);
        let rel = gpu.relative_to(&gpu);
        assert_eq!(rel.perf, 1.0);
        assert_eq!(rel.perf_per_tco, 1.0);
        assert_eq!(rel.perf_per_watt, 1.0);
        assert!(rel.tco_reduction().abs() < 1e-12);
    }

    #[test]
    fn display_formats_percentages() {
        let rel = RelativeEfficiency {
            perf: 0.5,
            perf_per_tco: 1.8,
            perf_per_watt: 1.02,
        };
        assert_eq!(rel.to_string(), "perf 50%, perf/TCO 180%, perf/W 102%");
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn negative_throughput_panics() {
        let _ = PlatformMetrics::new(ServerCost::gpu_server(), -1.0);
    }

    #[test]
    fn power_study_server_cost() {
        let low = ServerCost::mtia_server_at_power(Watts::new(50.0));
        let high = ServerCost::mtia_server_at_power(Watts::new(85.0));
        assert!(low.tco().as_f64() < high.tco().as_f64());
        assert_eq!(low.capex, high.capex);
    }
}
