//! Export to the Chrome `trace_event` JSON format.
//!
//! The output loads directly in `chrome://tracing` and in Perfetto's
//! "Open with legacy UI" path. Spans become `ph:"X"` complete events
//! (timestamps in microseconds, as the format requires), instant
//! events become `ph:"i"`, and the metrics registry rides along in the
//! top-level `otherData` object, which trace viewers ignore.

use super::json::Json;
use super::trace::Tracer;
use super::Telemetry;
use crate::units::SimTime;

/// Picoseconds → the microsecond float the trace_event format expects.
fn micros(t: SimTime) -> Json {
    Json::Num(t.as_picos() as f64 / 1e6)
}

fn args_object(attrs: &[(String, Json)], path: Option<&str>) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(attrs.len() + 1);
    if let Some(p) = path {
        pairs.push(("path".into(), Json::Str(p.to_string())));
    }
    pairs.extend(attrs.iter().cloned());
    Json::Obj(pairs)
}

fn span_events(tracer: &Tracer, out: &mut Vec<Json>) {
    for (path, span) in tracer.flatten() {
        out.push(Json::obj(vec![
            ("name".into(), Json::Str(span.name.clone())),
            ("cat".into(), Json::Str(span.cat.clone())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), micros(span.start)),
            ("dur".into(), micros(span.duration())),
            ("pid".into(), Json::UInt(1)),
            ("tid".into(), Json::UInt(1)),
            ("args".into(), args_object(&span.attrs, Some(&path))),
        ]));
    }
    for event in tracer.events() {
        out.push(Json::obj(vec![
            ("name".into(), Json::Str(event.name.clone())),
            ("cat".into(), Json::Str(event.cat.clone())),
            ("ph".into(), Json::Str("i".into())),
            ("ts".into(), micros(event.ts)),
            ("s".into(), Json::Str("t".into())),
            ("pid".into(), Json::UInt(1)),
            ("tid".into(), Json::UInt(1)),
            ("args".into(), args_object(&event.attrs, None)),
        ]));
    }
}

/// Builds the full Chrome trace document for a telemetry capture.
pub(crate) fn chrome_document(telemetry: &Telemetry) -> Json {
    let mut events = Vec::new();
    span_events(&telemetry.tracer, &mut events);
    let (counters, gauges, hists) = telemetry.metrics.to_json_records(false);
    Json::obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("traceEvents".into(), Json::Arr(events)),
        (
            "otherData".into(),
            Json::obj(vec![
                ("counters".into(), Json::Arr(counters)),
                ("gauges".into(), Json::Arr(gauges)),
                ("histograms".into(), Json::Arr(hists)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::super::json;
    use super::*;

    #[test]
    fn chrome_export_is_valid_json_with_complete_events() {
        let mut tel = Telemetry::new_enabled();
        tel.begin_span("run", "sim", SimTime::ZERO);
        tel.begin_span("node0", "sim", SimTime::ZERO);
        tel.end_span(SimTime::from_micros(5));
        tel.end_span(SimTime::from_micros(7));
        tel.instant("halt", "fleet", SimTime::from_micros(6), vec![]);
        tel.counter_add("chip.nodes", 1);

        let text = tel.to_chrome_json();
        let doc = json::parse(&text).expect("valid json");
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(events[1].get("dur"), Some(&Json::Num(5.0)));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("path")),
            Some(&Json::Str("run/node0".into()))
        );
        assert_eq!(events[2].get("ph"), Some(&Json::Str("i".into())));
        // Round trip: parse(render(x)) re-renders identically.
        assert_eq!(doc.render(), json::parse(&doc.render()).unwrap().render());
    }
}
