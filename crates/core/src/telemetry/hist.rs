//! Streaming latency statistics with log-spaced buckets.
//!
//! Production serving is judged at the 99th percentile (§6: "the 99th
//! percentile (P99) latency SLO of 100 ms"), so every simulation here
//! tracks full latency distributions, not just means. The histogram
//! lives in `core::telemetry` so both the serving simulators and the
//! metrics registry can share one mergeable implementation;
//! `mtia_serving::latency` re-exports it for backward compatibility.

use std::fmt;

use crate::units::SimTime;

/// Number of buckets per decade of latency.
const BUCKETS_PER_DECADE: usize = 20;
/// Lowest representable latency (1 µs).
const FLOOR_PICOS: f64 = 1e6;
/// Decades covered (1 µs … 1000 s).
const DECADES: usize = 9;

/// A fixed-memory latency histogram with ~12 % relative bucket resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_picos: u128,
    max: SimTime,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS_PER_DECADE * DECADES + 2],
            total: 0,
            sum_picos: 0,
            max: SimTime::ZERO,
        }
    }

    fn bucket_of(latency: SimTime) -> usize {
        let ps = latency.as_picos() as f64;
        if ps < FLOOR_PICOS {
            return 0;
        }
        let pos = (ps / FLOOR_PICOS).log10() * BUCKETS_PER_DECADE as f64;
        (pos as usize + 1).min(BUCKETS_PER_DECADE * DECADES + 1)
    }

    fn bucket_upper(index: usize) -> SimTime {
        if index == 0 {
            return SimTime::from_picos(FLOOR_PICOS as u64);
        }
        let exp = index as f64 / BUCKETS_PER_DECADE as f64;
        SimTime::from_picos((FLOOR_PICOS * 10f64.powf(exp)) as u64)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.counts[Self::bucket_of(latency)] += 1;
        self.total += 1;
        self.sum_picos += latency.as_picos() as u128;
        self.max = self.max.max(latency);
    }

    /// Folds another histogram's samples into this one.
    ///
    /// The merge is *exact*: both histograms share the same fixed bucket
    /// edges, so elementwise count addition yields the histogram that
    /// recording all samples into one instance would have produced —
    /// every quantile, the mean, the max, and the count are identical.
    /// This is what lets parallel Monte-Carlo replicas keep per-shard
    /// histograms and combine them after the fork-join, instead of
    /// serializing on one shared histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_picos += other.sum_picos;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency; zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.total == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_picos((self.sum_picos / self.total as u128) as u64)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// The `q`-quantile (e.g. 0.99 for P99), as the upper edge of the
    /// containing bucket.
    ///
    /// **Empty-histogram contract:** with no recorded samples this
    /// returns [`SimTime::ZERO`] rather than panicking — convenient for
    /// reports that print before warmup has produced data, but easy to
    /// mistake for "the P99 is zero". Callers that need to distinguish
    /// "no data" from "zero latency" should use
    /// [`checked_quantile`](Self::checked_quantile).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            return SimTime::ZERO;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Like [`quantile`](Self::quantile), but `None` when the histogram
    /// is empty instead of the ambiguous `SimTime::ZERO`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn checked_quantile(&self, q: f64) -> Option<SimTime> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            None
        } else {
            Some(self.quantile(q))
        }
    }

    /// P99 shorthand. Empty histograms report `SimTime::ZERO` (see
    /// [`quantile`](Self::quantile) for the contract).
    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }

    /// P50 shorthand.
    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p99={} max={}",
            self.total,
            self.p50(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
    }

    #[test]
    fn checked_quantile_distinguishes_empty_from_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.checked_quantile(0.99), None);
        h.record(SimTime::ZERO); // a genuine zero-latency sample
        assert_eq!(h.checked_quantile(0.99), Some(SimTime::ZERO));
        h.record(SimTime::from_millis(3));
        assert_eq!(h.checked_quantile(0.99), Some(h.p99()));
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(5));
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), SimTime::from_millis(5)); // clamped to max
        assert_eq!(h.p99(), SimTime::from_millis(5));
    }

    #[test]
    fn uniform_distribution_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 100)); // 0.1 .. 100 ms
        }
        let p50 = h.p50().as_millis_f64();
        let p99 = h.p99().as_millis_f64();
        assert!((p50 - 50.0).abs() / 50.0 < 0.15, "p50 {p50}");
        assert!((p99 - 99.0).abs() / 99.0 < 0.15, "p99 {p99}");
        assert!(h.p99() >= h.p50());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(10));
        h.record(SimTime::from_millis(30));
        assert_eq!(h.mean(), SimTime::from_millis(20));
    }

    #[test]
    fn sub_floor_latencies_land_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_nanos(10));
        assert_eq!(h.count(), 1);
        assert!(h.p99() <= SimTime::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn merge_equals_single_run() {
        let samples: Vec<SimTime> = (1..=500u64)
            .map(|i| SimTime::from_micros(i * i % 90_000 + 1))
            .collect();
        let mut single = LatencyHistogram::new();
        for s in &samples {
            single.record(*s);
        }
        // Shard round-robin into 3, then merge.
        let mut shards = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        for (i, s) in samples.iter().enumerate() {
            shards[i % 3].record(*s);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.mean(), single.mean());
        assert_eq!(merged.max(), single.max());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(5));
        let before = (h.count(), h.p99(), h.mean(), h.max());
        h.merge(&LatencyHistogram::new());
        assert_eq!(before, (h.count(), h.p99(), h.mean(), h.max()));
    }

    #[test]
    fn bucket_resolution_is_within_12_percent() {
        // Adjacent bucket edges differ by 10^(1/20) ≈ 1.122.
        let a = LatencyHistogram::bucket_upper(40);
        let b = LatencyHistogram::bucket_upper(41);
        let ratio = b.as_picos() as f64 / a.as_picos() as f64;
        assert!((ratio - 1.122).abs() < 0.01);
    }
}
