//! A minimal JSON document model with a writer and a parser.
//!
//! The workspace vendors no serde, so telemetry exports are built on
//! this hand-rolled serializer. It exists for three reasons:
//!
//! 1. **Canonical output.** Objects preserve insertion order and the
//!    writer is deterministic, so two byte-identical [`Json`] values
//!    always render to byte-identical text — the property the
//!    golden-trace harness diffs against.
//! 2. **Round-tripping.** [`parse`] inverts [`Json::render`] exactly
//!    (a property test pins `parse(render(v)) == v`), so exported
//!    Chrome traces can be re-read and re-emitted without drift.
//! 3. **Precision.** Simulated timestamps are u64 picoseconds and can
//!    exceed 2^53; [`Json::UInt`] keeps them exact instead of routing
//!    them through `f64`.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no sorting, no
/// deduplication) so rendering is canonical by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (picosecond timestamps
    /// overflow the f64 mantissa).
    UInt(u64),
    /// Any other number. Rendered via Rust's shortest-round-trip
    /// `f64` formatting, so distinct values render distinctly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Looks up a key in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace). Deterministic: equal values
    /// produce equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` omits ".0" for integral floats; keep the value
                    // re-parseable as Num (not UInt) by appending it.
                    if x.fract() == 0.0 && x.abs() < 1e15 && !out.ends_with('.') {
                        let tail: String = out
                            .chars()
                            .rev()
                            .take_while(|c| c.is_ascii_digit() || *c == '-')
                            .collect();
                        if !tail.is_empty() && !out.ends_with("inf") {
                            out.push_str(".0");
                        }
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document produced by [`Json::render`] (or any plain
/// JSON text using the same subset: no exotic escapes beyond
/// `\" \\ \n \r \t \uXXXX`).
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the
/// first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_canonical_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3.0");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("ts".into(), Json::UInt(9_007_199_254_740_993)), // > 2^53
            (
                "spans".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("chip/run".into())),
                    ("frac".into(), Json::Num(0.125)),
                    ("ok".into(), Json::Bool(false)),
                    ("none".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn u64_precision_survives() {
        let big = 1_550_000_000_000_000_123u64; // 18 days in picoseconds
        let text = Json::UInt(big).render();
        assert_eq!(parse(&text).unwrap(), Json::UInt(big));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::UInt(1),
                Json::Num(2.5),
                Json::Str("xA".into())
            ]))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
