//! A mergeable metrics registry: counters, gauges, and latency
//! histograms keyed by dotted names.
//!
//! Registries are plain values, not globals. A simulation owns one,
//! records into it, and — when work was sharded across
//! [`crate::pool`] workers — merges the per-shard registries after the
//! fork-join. Merging is **associative and commutative** (a property
//! test pins this): counters add, gauges take the max, and histograms
//! use [`LatencyHistogram::merge`], which is exact. Any shard/merge
//! tree therefore produces the same registry as serial recording.
//!
//! # Naming convention
//!
//! Dotted lowercase paths, subsystem first: `chip.occupancy.dpe_ps`,
//! `serving.shed`, `fleet.rollout.impacted`. Names prefixed with
//! `nondet.` are *excluded from canonical trace exports*: they carry
//! useful-but-scheduling-dependent values (e.g. process-global
//! cost-cache hit counts, which depend on what else ran in the same
//! process) and must not participate in golden-trace comparisons.

use std::collections::BTreeMap;

use super::hist::LatencyHistogram;
use super::json::Json;
use crate::units::SimTime;

/// Prefix marking metrics that are real but not schedule-independent;
/// canonical exports skip them.
pub const NONDET_PREFIX: &str = "nondet.";

/// A set of named counters, gauges, and histograms.
///
/// Backed by `BTreeMap` so iteration (and therefore every export) is
/// name-ordered and deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value` if it exceeds the current value
    /// (creating it otherwise). Max semantics keep the merge
    /// commutative: a gauge records the high-water mark, not the last
    /// write.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records one sample into the named histogram (creating it empty).
    pub fn hist_record(&mut self, name: &str, sample: SimTime) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Reads a counter; zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge; `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram; `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the max, histograms merge exactly. Associative and commutative.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(f64::MIN);
            if *value > *slot {
                *slot = *value;
            }
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the registry as ordered JSON records, skipping
    /// `nondet.`-prefixed names when `canonical` is set.
    pub(crate) fn to_json_records(&self, canonical: bool) -> (Vec<Json>, Vec<Json>, Vec<Json>) {
        let keep = |name: &str| !canonical || !name.starts_with(NONDET_PREFIX);
        let counters = self
            .counters
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, v)| {
                Json::obj(vec![
                    ("name".into(), Json::Str(k.clone())),
                    ("value".into(), Json::UInt(*v)),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, v)| {
                Json::obj(vec![
                    ("name".into(), Json::Str(k.clone())),
                    ("value".into(), Json::Num(*v)),
                ])
            })
            .collect();
        let hists = self
            .histograms
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, h)| {
                Json::obj(vec![
                    ("name".into(), Json::Str(k.clone())),
                    ("count".into(), Json::UInt(h.count())),
                    ("mean_ps".into(), Json::UInt(h.mean().as_picos())),
                    ("p50_ps".into(), Json::UInt(h.p50().as_picos())),
                    ("p99_ps".into(), Json::UInt(h.p99().as_picos())),
                    ("max_ps".into(), Json::UInt(h.max().as_picos())),
                ])
            })
            .collect();
        (counters, gauges, hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("a"), 0);
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        assert_eq!(m.counter("a"), 5);
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let mut m = MetricsRegistry::new();
        m.gauge_max("depth", 4.0);
        m.gauge_max("depth", 2.0);
        assert_eq!(m.gauge("depth"), Some(4.0));
        m.gauge_max("depth", 9.5);
        assert_eq!(m.gauge("depth"), Some(9.5));
    }

    #[test]
    fn merge_matches_serial_recording() {
        let mut serial = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for i in 0..100u64 {
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            serial.counter_add("n", 1);
            shard.counter_add("n", 1);
            serial.gauge_max("g", i as f64);
            shard.gauge_max("g", i as f64);
            serial.hist_record("h", SimTime::from_micros(i * 37 + 1));
            shard.hist_record("h", SimTime::from_micros(i * 37 + 1));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial); // commutative
    }

    #[test]
    fn canonical_records_skip_nondet_names() {
        let mut m = MetricsRegistry::new();
        m.counter_add("nondet.costcache.hits", 7);
        m.counter_add("chip.nodes", 3);
        let (canon, _, _) = m.to_json_records(true);
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].get("name"), Some(&Json::Str("chip.nodes".into())));
        let (all, _, _) = m.to_json_records(false);
        assert_eq!(all.len(), 2);
    }
}
