//! Deterministic observability: sim-time tracing + mergeable metrics.
//!
//! The paper's productionization loop (§5–§6) depends on being able to
//! *see* the system — per-request latency breakdowns, device-health
//! transitions, rollout progress. This module is that substrate for
//! the reproduction, built around one rule:
//!
//! > **Determinism contract.** Telemetry never reads the wall clock.
//! > Every timestamp is a [`SimTime`] supplied by the instrumented
//! > simulation, every container iterates in a fixed order, and every
//! > exporter is a pure function of the recorded data. Two runs of the
//! > same `(config, seed)` therefore produce byte-identical traces —
//! > which turns observability into a regression oracle (the
//! > golden-trace harness in `tests/golden_traces.rs`).
//!
//! The one escape hatch: metric names prefixed `nondet.` (see
//! [`NONDET_PREFIX`]) may carry scheduling-dependent values such as
//! process-global cost-cache hit counts. They appear in human-facing
//! exports but are excluded from [`Telemetry::to_canonical_json`], the
//! representation golden tests compare.
//!
//! # Shape
//!
//! - [`MetricsRegistry`] — counters / gauges / [`LatencyHistogram`]s
//!   with an associative, commutative [`MetricsRegistry::merge`] so
//!   per-shard registries from [`crate::pool`] fan-ins combine exactly.
//! - [`Tracer`] — hierarchical spans (stack API) plus flat completed
//!   spans and instant events, all on the simulated clock.
//! - [`Telemetry`] — the handle instrumented code takes. Created
//!   [`Telemetry::disabled`], every call is a cheap no-op, so hot
//!   paths stay untraced by default; [`Telemetry::new_enabled`] turns
//!   recording on.
//! - Exporters: [`Telemetry::to_canonical_json`] (line-oriented, for
//!   golden diffs) and [`Telemetry::to_chrome_json`]
//!   (`chrome://tracing` / Perfetto).

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;

pub use hist::LatencyHistogram;
pub use json::Json;
pub use metrics::{MetricsRegistry, NONDET_PREFIX};
pub use trace::{InstantEvent, Span, Tracer};

use crate::units::SimTime;

/// The observability handle instrumented simulations accept.
///
/// Disabled handles make every recording call a no-op (one branch), so
/// `run(...)` and `run_traced(...)` can share one code path without
/// measurable overhead in the untraced case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    enabled: bool,
    /// Recorded spans and instant events.
    pub tracer: Tracer,
    /// Recorded counters, gauges, and histograms.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A recording handle.
    pub fn new_enabled() -> Self {
        Telemetry {
            enabled: true,
            ..Default::default()
        }
    }

    /// A no-op handle: all recording calls return immediately.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span (no-op when disabled). See [`Tracer::begin`].
    pub fn begin_span(&mut self, name: impl Into<String>, cat: impl Into<String>, start: SimTime) {
        if self.enabled {
            self.tracer.begin(name, cat, start);
        }
    }

    /// Closes the innermost span (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics if enabled and no span is open.
    pub fn end_span(&mut self, end: SimTime) {
        if self.enabled {
            self.tracer.end(end);
        }
    }

    /// Attributes the innermost open span (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics if enabled and no span is open.
    pub fn span_attr(&mut self, key: impl Into<String>, value: Json) {
        if self.enabled {
            self.tracer.attr(key, value);
        }
    }

    /// Attaches a finished span built with [`Span::complete`] (no-op
    /// when disabled).
    pub fn complete_span(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(String, Json)>,
    ) {
        if self.enabled {
            self.tracer
                .complete(Span::complete(name, cat, start, end, attrs));
        }
    }

    /// Records an instant event (no-op when disabled).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts: SimTime,
        attrs: Vec<(String, Json)>,
    ) {
        if self.enabled {
            self.tracer.instant(name, cat, ts, attrs);
        }
    }

    /// Adds to a counter (no-op when disabled).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.counter_add(name, delta);
        }
    }

    /// Raises a high-water-mark gauge (no-op when disabled).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.gauge_max(name, value);
        }
    }

    /// Records a histogram sample (no-op when disabled).
    pub fn hist_record(&mut self, name: &str, sample: SimTime) {
        if self.enabled {
            self.metrics.hist_record(name, sample);
        }
    }

    /// Folds a shard's capture into this one: spans/events append,
    /// metrics merge exactly. A disabled `other` contributes nothing.
    pub fn merge(&mut self, other: Telemetry) {
        self.tracer.merge(other.tracer);
        self.metrics.merge(&other.metrics);
    }

    /// Renders the canonical, golden-diffable representation.
    ///
    /// Line-oriented valid JSON: one record per line (spans flattened
    /// to `path` strings, then instant events, then name-ordered
    /// metrics), so a plain line diff localizes drift to a span path.
    /// `nondet.`-prefixed metrics are excluded — they are real but not
    /// schedule-independent, and must not fail golden comparisons.
    pub fn to_canonical_json(&self) -> String {
        let mut spans = Vec::new();
        for (path, span) in self.tracer.flatten() {
            spans.push(Json::obj(vec![
                ("path".into(), Json::Str(path)),
                ("cat".into(), Json::Str(span.cat.clone())),
                ("start_ps".into(), Json::UInt(span.start.as_picos())),
                ("end_ps".into(), Json::UInt(span.end.as_picos())),
                ("attrs".into(), Json::Obj(span.attrs.clone())),
            ]));
        }
        let events: Vec<Json> = self
            .tracer
            .events()
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("name".into(), Json::Str(e.name.clone())),
                    ("cat".into(), Json::Str(e.cat.clone())),
                    ("ts_ps".into(), Json::UInt(e.ts.as_picos())),
                    ("attrs".into(), Json::Obj(e.attrs.clone())),
                ])
            })
            .collect();
        let (counters, gauges, hists) = self.metrics.to_json_records(true);

        fn section(out: &mut String, name: &str, records: Vec<Json>, last: bool) {
            out.push('"');
            out.push_str(name);
            out.push_str("\":[");
            if !records.is_empty() {
                out.push('\n');
                let lines: Vec<String> = records.iter().map(Json::render).collect();
                out.push_str(&lines.join(",\n"));
                out.push('\n');
            }
            out.push(']');
            if !last {
                out.push(',');
            }
            out.push('\n');
        }

        let mut out = String::from("{\"version\":1,\n");
        section(&mut out, "spans", spans, false);
        section(&mut out, "events", events, false);
        section(&mut out, "counters", counters, false);
        section(&mut out, "gauges", gauges, false);
        section(&mut out, "histograms", hists, true);
        out.push_str("}\n");
        out
    }

    /// Renders a Chrome `trace_event` document for `chrome://tracing`
    /// or Perfetto. Includes `nondet.` metrics (human-facing export).
    pub fn to_chrome_json(&self) -> String {
        chrome::chrome_document(self).render()
    }
}

/// Compares two canonical traces line-by-line; `None` when identical.
///
/// On mismatch, returns a readable report naming the line number, the
/// nearest span path (the `"path"`/`"name"` on or before the differing
/// line), and the expected/actual lines — what the golden-trace
/// harness prints when behavior drifts.
pub fn diff_canonical(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    let mut i = 0;
    while i < exp_lines.len() && i < act_lines.len() && exp_lines[i] == act_lines[i] {
        i += 1;
    }

    fn context_path(lines: &[&str], upto: usize) -> Option<String> {
        for line in lines[..=upto.min(lines.len().saturating_sub(1))]
            .iter()
            .rev()
        {
            for key in ["\"path\":\"", "\"name\":\""] {
                if let Some(start) = line.find(key) {
                    let rest = &line[start + key.len()..];
                    if let Some(end) = rest.find('"') {
                        return Some(rest[..end].to_string());
                    }
                }
            }
        }
        None
    }

    let path = context_path(&exp_lines, i)
        .or_else(|| context_path(&act_lines, i))
        .unwrap_or_else(|| "<document>".to_string());
    let mut report = format!("trace diverges at line {} (near span `{}`)\n", i + 1, path);
    let window = 3usize;
    for j in i..(i + window) {
        match (exp_lines.get(j), act_lines.get(j)) {
            (Some(e), Some(a)) if e == a => break,
            (e, a) => {
                report.push_str(&format!(
                    "- expected: {}\n+ actual:   {}\n",
                    e.copied().unwrap_or("<end of trace>"),
                    a.copied().unwrap_or("<end of trace>")
                ));
            }
        }
    }
    if exp_lines.len() != act_lines.len() {
        report.push_str(&format!(
            "(expected {} lines, got {})\n",
            exp_lines.len(),
            act_lines.len()
        ));
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sample() -> Telemetry {
        let mut tel = Telemetry::new_enabled();
        tel.begin_span("run", "sim", t(0));
        tel.span_attr("nodes", Json::UInt(1));
        tel.begin_span("gemm0", "sim", t(0));
        tel.end_span(t(4));
        tel.end_span(t(5));
        tel.instant("halt", "fleet", t(3), vec![("stage".into(), Json::UInt(1))]);
        tel.counter_add("chip.nodes", 1);
        tel.counter_add("nondet.costcache.hits", 9);
        tel.gauge_max("queue.depth", 4.0);
        tel.hist_record("req.latency", t(1000));
        tel
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let mut tel = Telemetry::disabled();
        tel.begin_span("x", "y", t(0));
        tel.end_span(t(1)); // no panic: no-op
        tel.counter_add("c", 5);
        tel.hist_record("h", t(9));
        assert!(tel.tracer.is_empty());
        assert!(tel.metrics.is_empty());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn canonical_export_is_deterministic_and_line_oriented() {
        let a = sample().to_canonical_json();
        let b = sample().to_canonical_json();
        assert_eq!(a, b);
        assert!(a.contains("\"path\":\"run/gemm0\""));
        // nondet metrics are excluded from the canonical form...
        assert!(!a.contains("nondet.costcache.hits"));
        // ...but present in the chrome export.
        assert!(sample().to_chrome_json().contains("nondet.costcache.hits"));
        // The document is valid JSON despite being line-oriented.
        json::parse(&a).expect("canonical trace parses");
    }

    #[test]
    fn diff_reports_span_path_context() {
        let golden = sample().to_canonical_json();
        let mut drifted = sample();
        drifted.tracer = {
            let mut tr = Tracer::new();
            tr.begin("run", "sim", t(0));
            tr.attr("nodes", Json::UInt(1));
            tr.begin("gemm0", "sim", t(0));
            tr.end(t(6)); // perturbed duration
            tr.end(t(7));
            tr
        };
        drifted.instant("halt", "fleet", t(3), vec![("stage".into(), Json::UInt(1))]);
        let report = diff_canonical(&golden, &drifted.to_canonical_json()).expect("drift detected");
        assert!(report.contains("run/gemm0"), "{report}");
        assert!(report.contains("- expected"), "{report}");
        assert!(diff_canonical(&golden, &golden).is_none());
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = sample();
        let b = sample();
        a.merge(b);
        assert_eq!(a.metrics.counter("chip.nodes"), 2);
        assert_eq!(a.tracer.roots().len(), 2);
        assert_eq!(a.tracer.events().len(), 2);
    }
}
