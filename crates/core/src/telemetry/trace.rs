//! Hierarchical trace spans and instant events on the simulated clock.
//!
//! A [`Tracer`] records two kinds of records:
//!
//! - **Spans** — named intervals `[start, end]` in sim-time with
//!   structured attributes, forming a tree. The *stack API*
//!   ([`Tracer::begin`] / [`Tracer::end`]) builds well-nested trees
//!   (children are always contained in their parent); the *flat API*
//!   ([`Tracer::complete`]) attaches an already-finished span to the
//!   innermost open span (or the root), which is how overlapping
//!   request lifecycles are recorded without pretending they nest.
//! - **Instant events** — point-in-time markers (a health transition,
//!   a rollout halt) with attributes.
//!
//! Nothing here reads `std::time`: every timestamp is a [`SimTime`]
//! supplied by the caller, which is what makes traces replayable and
//! byte-deterministic.

use super::json::Json;
use crate::units::SimTime;

/// A named sim-time interval with attributes and child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (stable across runs; no interned ids).
    pub name: String,
    /// Category, e.g. `"sim"`, `"serving"`, `"fleet"`.
    pub cat: String,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated end time (`>= start`).
    pub end: SimTime,
    /// Structured attributes in insertion order.
    pub attrs: Vec<(String, Json)>,
    /// Child spans in creation order.
    pub children: Vec<Span>,
}

impl Span {
    /// Creates a finished span with no children.
    pub fn complete(
        name: impl Into<String>,
        cat: impl Into<String>,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(String, Json)>,
    ) -> Span {
        let (start, end) = (start.min(end), start.max(end));
        Span {
            name: name.into(),
            cat: cat.into(),
            start,
            end,
            attrs,
            children: Vec::new(),
        }
    }

    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A point-in-time marker with attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Simulated timestamp.
    pub ts: SimTime,
    /// Structured attributes in insertion order.
    pub attrs: Vec<(String, Json)>,
}

/// Records spans and instant events against the simulated clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tracer {
    roots: Vec<Span>,
    stack: Vec<Span>,
    events: Vec<InstantEvent>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span at sim-time `start`. Must be balanced by
    /// [`end`](Self::end).
    pub fn begin(&mut self, name: impl Into<String>, cat: impl Into<String>, start: SimTime) {
        self.stack.push(Span {
            name: name.into(),
            cat: cat.into(),
            start,
            end: start,
            attrs: Vec::new(),
            children: Vec::new(),
        });
    }

    /// Closes the innermost open span at sim-time `end`.
    ///
    /// # Panics
    ///
    /// Panics if no span is open. An `end` earlier than the span's
    /// start is clamped to the start (zero-duration span) rather than
    /// producing a negative interval.
    pub fn end(&mut self, end: SimTime) {
        let mut span = self.stack.pop().expect("Tracer::end with no open span");
        span.end = end.max(span.start);
        self.attach(span);
    }

    /// Sets an attribute on the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn attr(&mut self, key: impl Into<String>, value: Json) {
        let span = self
            .stack
            .last_mut()
            .expect("Tracer::attr with no open span");
        span.attrs.push((key.into(), value));
    }

    /// Attaches an already-finished span (flat API; see module docs).
    pub fn complete(&mut self, span: Span) {
        self.attach(span);
    }

    /// Records an instant event.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts: SimTime,
        attrs: Vec<(String, Json)>,
    ) {
        self.events.push(InstantEvent {
            name: name.into(),
            cat: cat.into(),
            ts,
            attrs,
        });
    }

    fn attach(&mut self, span: Span) {
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Number of currently open (unbalanced) spans.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Finished root spans in creation order.
    pub fn roots(&self) -> &[Span] {
        &self.roots
    }

    /// Instant events in creation order.
    pub fn events(&self) -> &[InstantEvent] {
        &self.events
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.stack.is_empty() && self.events.is_empty()
    }

    /// Moves another tracer's finished roots and events into this one
    /// (shard merge). Open spans in `other` are dropped.
    pub fn merge(&mut self, other: Tracer) {
        self.roots.extend(other.roots);
        self.events.extend(other.events);
    }

    /// Checks that every child interval is contained in its parent's
    /// interval, recursively. Returns the path of the first violation.
    ///
    /// Spans built via the stack API are well-nested by construction
    /// (when timestamps are monotone); this validator is the oracle the
    /// property tests run against, and a cheap sanity check for traces
    /// assembled through the flat API.
    pub fn validate_nesting(&self) -> Result<(), String> {
        fn check(path: &str, span: &Span) -> Result<(), String> {
            if span.end < span.start {
                return Err(format!(
                    "{path}: end {} before start {}",
                    span.end, span.start
                ));
            }
            for child in &span.children {
                let child_path = format!("{path}/{}", child.name);
                if child.start < span.start || child.end > span.end {
                    return Err(format!(
                        "{child_path}: [{}, {}] escapes parent [{}, {}]",
                        child.start, child.end, span.start, span.end
                    ));
                }
                check(&child_path, child)?;
            }
            Ok(())
        }
        for root in &self.roots {
            check(&root.name, root)?;
        }
        Ok(())
    }

    /// Flattens the span tree depth-first into `(path, span)` pairs,
    /// where `path` joins ancestor names with `/`. Children follow
    /// their parent; order is deterministic (creation order).
    pub fn flatten(&self) -> Vec<(String, &Span)> {
        fn walk<'a>(prefix: &str, span: &'a Span, out: &mut Vec<(String, &'a Span)>) {
            let path = if prefix.is_empty() {
                span.name.clone()
            } else {
                format!("{prefix}/{}", span.name)
            };
            out.push((path.clone(), span));
            for child in &span.children {
                walk(&path, child, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            walk("", root, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn stack_api_builds_a_nested_tree() {
        let mut tr = Tracer::new();
        tr.begin("run", "sim", t(0));
        tr.attr("nodes", Json::UInt(2));
        tr.begin("node0", "sim", t(0));
        tr.end(t(5));
        tr.begin("node1", "sim", t(5));
        tr.end(t(9));
        tr.end(t(10));
        assert_eq!(tr.open_depth(), 0);
        assert_eq!(tr.roots().len(), 1);
        let run = &tr.roots()[0];
        assert_eq!(run.children.len(), 2);
        assert_eq!(run.children[1].name, "node1");
        assert_eq!(run.duration(), t(10));
        tr.validate_nesting().expect("well nested");
        let flat = tr.flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["run", "run/node0", "run/node1"]);
    }

    #[test]
    fn flat_spans_may_overlap_under_one_parent() {
        let mut tr = Tracer::new();
        tr.begin("serve", "serving", t(0));
        tr.complete(Span::complete("req0", "serving", t(0), t(10), vec![]));
        tr.complete(Span::complete("req1", "serving", t(5), t(15), vec![]));
        tr.end(t(20));
        tr.validate_nesting().expect("contained in parent");
    }

    #[test]
    fn validate_catches_escaping_children() {
        let mut tr = Tracer::new();
        tr.begin("parent", "x", t(5));
        tr.complete(Span::complete("escapee", "x", t(0), t(3), vec![]));
        tr.end(t(10));
        let err = tr.validate_nesting().unwrap_err();
        assert!(err.contains("parent/escapee"), "{err}");
    }

    #[test]
    fn end_clamps_to_start() {
        let mut tr = Tracer::new();
        tr.begin("s", "x", t(10));
        tr.end(t(3));
        assert_eq!(tr.roots()[0].start, t(10));
        assert_eq!(tr.roots()[0].end, t(10));
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_end_panics() {
        Tracer::new().end(t(0));
    }

    #[test]
    fn instants_and_merge() {
        let mut a = Tracer::new();
        a.instant("halt", "fleet", t(7), vec![("stage".into(), Json::UInt(1))]);
        let mut b = Tracer::new();
        b.begin("r", "x", t(0));
        b.end(t(1));
        b.merge(a);
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.roots().len(), 1);
    }
}
