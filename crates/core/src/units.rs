//! Strongly-typed physical and logical units used throughout the workspace.
//!
//! Simulation results are only as trustworthy as their unit discipline, so
//! every quantity that crosses a module boundary is a newtype
//! ([`Bytes`], [`Bandwidth`], [`SimTime`], [`FlopCount`], [`FlopRate`],
//! [`Hertz`], [`Watts`], [`Joules`], [`CostUnits`]) rather than a bare
//! number. Conversions between them are explicit methods such as
//! [`Bandwidth::time_to_move`] so that dimensional errors are caught at
//! compile time.
//!
//! Time is stored in integer **picoseconds**: the fastest event the simulator
//! models is a single 1.35 GHz cycle (≈ 740 ps), and u64 picoseconds covers
//! ~213 days of simulated time, far beyond any experiment here.
//!
//! # Examples
//!
//! ```
//! use mtia_core::units::{Bytes, Bandwidth, SimTime};
//!
//! let weights = Bytes::from_mib(109);
//! let lpddr = Bandwidth::from_gb_per_s(204.8);
//! let t = lpddr.time_to_move(weights);
//! assert!(t > SimTime::from_micros(500) && t < SimTime::from_micros(600));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte count (capacity or traffic volume).
///
/// ```
/// use mtia_core::units::Bytes;
/// assert_eq!(Bytes::from_kib(384).as_u64(), 384 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count from a raw number of bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte count from binary kilobytes (1024 B).
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from binary megabytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte count from binary gigabytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for ratio arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Byte count in binary megabytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Byte count in binary gigabytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction: never underflows.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Returns `self` scaled by a dimensionless factor, rounding to nearest.
    pub fn scale(self, factor: f64) -> Bytes {
        debug_assert!(factor >= 0.0, "byte scale factor must be non-negative");
        Bytes((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two byte counts.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// The larger of two byte counts.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if b >= 1024 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A data-transfer rate in bytes per second.
///
/// The paper quotes bandwidths in decimal units (GB/s = 1e9 B/s), and this
/// type follows that convention.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from bytes/second.
    pub const fn from_bytes_per_s(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from decimal gigabytes/second (1 GB = 1e9 B).
    pub const fn from_gb_per_s(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9)
    }

    /// Creates a bandwidth from decimal terabytes/second.
    pub const fn from_tb_per_s(tbps: f64) -> Self {
        Bandwidth(tbps * 1e12)
    }

    /// Bandwidth in bytes/second.
    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    /// Bandwidth in decimal GB/s.
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Time needed to move `bytes` at this bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero (moving data over a zero-bandwidth
    /// link has no finite completion time).
    pub fn time_to_move(self, bytes: Bytes) -> SimTime {
        assert!(self.0 > 0.0, "cannot move data over zero bandwidth");
        SimTime::from_secs_f64(bytes.as_f64() / self.0)
    }

    /// Bytes movable in `time` at this bandwidth.
    pub fn bytes_in(self, time: SimTime) -> Bytes {
        Bytes::new((self.0 * time.as_secs_f64()).round() as u64)
    }

    /// Returns `self` scaled by a dimensionless factor (e.g. an efficiency).
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }

    /// The smaller of two bandwidths.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TB/s", self.0 / 1e12)
        } else {
            write!(f, "{:.1} GB/s", self.0 / 1e9)
        }
    }
}

/// A point in simulated time, or a duration, in integer picoseconds.
///
/// ```
/// use mtia_core::units::SimTime;
/// let cycle = SimTime::from_secs_f64(1.0 / 1.35e9);
/// assert_eq!(cycle.as_picos(), 741); // one 1.35 GHz cycle
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds (fractional).
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in microseconds (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in milliseconds (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time in seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: never underflows.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns `self` scaled by a dimensionless factor.
    pub fn scale(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0, "time scale factor must be non-negative");
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Dimensionless ratio `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimTime) -> f64 {
        assert!(other.0 > 0, "division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        const DAY: u64 = 86_400_000_000_000_000;
        const HOUR: u64 = 3_600_000_000_000_000;
        const MINUTE: u64 = 60_000_000_000_000;
        if ps >= DAY {
            write!(f, "{:.1} days", self.as_secs_f64() / 86_400.0)
        } else if ps >= 2 * HOUR {
            write!(f, "{:.1} h", self.as_secs_f64() / 3_600.0)
        } else if ps >= 10 * MINUTE {
            write!(f, "{:.1} min", self.as_secs_f64() / 60.0)
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} µs", self.as_micros_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", self.as_nanos_f64())
        } else {
            write!(f, "{ps} ps")
        }
    }
}

/// A count of floating-point (or INT8 MAC) operations.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct FlopCount(f64);

impl FlopCount {
    /// Zero operations.
    pub const ZERO: FlopCount = FlopCount(0.0);

    /// Creates an operation count.
    pub const fn new(flops: f64) -> Self {
        FlopCount(flops)
    }

    /// Creates an operation count from megaflops (1e6).
    pub const fn from_mflops(m: f64) -> Self {
        FlopCount(m * 1e6)
    }

    /// Creates an operation count from gigaflops (1e9).
    pub const fn from_gflops(g: f64) -> Self {
        FlopCount(g * 1e9)
    }

    /// Raw operation count.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Operation count in megaflops.
    pub fn as_mflops(self) -> f64 {
        self.0 / 1e6
    }

    /// Operation count in gigaflops.
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }
}

impl Add for FlopCount {
    type Output = FlopCount;
    fn add(self, rhs: FlopCount) -> FlopCount {
        FlopCount(self.0 + rhs.0)
    }
}

impl AddAssign for FlopCount {
    fn add_assign(&mut self, rhs: FlopCount) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for FlopCount {
    type Output = FlopCount;
    fn mul(self, rhs: f64) -> FlopCount {
        FlopCount(self.0 * rhs)
    }
}

impl Sum for FlopCount {
    fn sum<I: Iterator<Item = FlopCount>>(iter: I) -> FlopCount {
        iter.fold(FlopCount::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for FlopCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TFLOP", self.0 / 1e12)
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} GFLOP", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MFLOP", self.0 / 1e6)
        } else {
            write!(f, "{:.0} FLOP", self.0)
        }
    }
}

/// A compute rate in operations per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct FlopRate(f64);

impl FlopRate {
    /// Zero rate.
    pub const ZERO: FlopRate = FlopRate(0.0);

    /// Creates a rate from operations/second.
    pub const fn from_flops_per_s(f: f64) -> Self {
        FlopRate(f)
    }

    /// Creates a rate from teraops/second.
    pub const fn from_tflops(t: f64) -> Self {
        FlopRate(t * 1e12)
    }

    /// Rate in operations/second.
    pub fn as_flops_per_s(self) -> f64 {
        self.0
    }

    /// Rate in teraops/second.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Time needed to execute `flops` operations at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn time_to_compute(self, flops: FlopCount) -> SimTime {
        assert!(self.0 > 0.0, "cannot compute at zero FLOP rate");
        SimTime::from_secs_f64(flops.as_f64() / self.0)
    }

    /// Returns `self` scaled by a dimensionless factor (e.g. an efficiency).
    pub fn scale(self, factor: f64) -> FlopRate {
        FlopRate(self.0 * factor)
    }
}

impl Add for FlopRate {
    type Output = FlopRate;
    fn add(self, rhs: FlopRate) -> FlopRate {
        FlopRate(self.0 + rhs.0)
    }
}

impl Mul<f64> for FlopRate {
    type Output = FlopRate;
    fn mul(self, rhs: f64) -> FlopRate {
        FlopRate(self.0 * rhs)
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} TFLOPS", self.0 / 1e12)
    }
}

/// A clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from hertz.
    pub const fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub const fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Duration of one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn cycle_time(self) -> SimTime {
        assert!(self.0 > 0.0, "zero frequency has no cycle time");
        SimTime::from_secs_f64(1.0 / self.0)
    }

    /// Time to execute `cycles` clock cycles.
    pub fn time_for_cycles(self, cycles: f64) -> SimTime {
        assert!(self.0 > 0.0, "zero frequency has no cycle time");
        SimTime::from_secs_f64(cycles / self.0)
    }

    /// Dimensionless ratio `self / other`.
    pub fn ratio(self, other: Hertz) -> f64 {
        assert!(other.0 > 0.0, "division by zero frequency");
        self.0 / other.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.0 / 1e9)
    }
}

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value.
    pub const fn new(w: f64) -> Self {
        Watts(w)
    }

    /// Power in watts.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Energy consumed at this power over `time`.
    pub fn energy_over(self, time: SimTime) -> Joules {
        Joules::new(self.0 * time.as_secs_f64())
    }

    /// Returns `self` scaled by a dimensionless factor (e.g. utilization).
    pub fn scale(self, factor: f64) -> Watts {
        Watts(self.0 * factor)
    }

    /// The larger of two powers.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} kW", self.0 / 1000.0)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy value.
    pub const fn new(j: f64) -> Self {
        Joules(j)
    }

    /// Energy in joules.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.0)
    }
}

/// Abstract cost units for TCO accounting.
///
/// The paper reports only *relative* Perf/TCO, so costs here are arbitrary
/// units: the GPU baseline server is defined as cost 1000 in
/// [`crate::calib`], and everything else is expressed against it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CostUnits(f64);

impl CostUnits {
    /// Zero cost.
    pub const ZERO: CostUnits = CostUnits(0.0);

    /// Creates a cost value.
    pub const fn new(c: f64) -> Self {
        CostUnits(c)
    }

    /// Cost as a raw number.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Dimensionless ratio `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: CostUnits) -> f64 {
        assert!(other.0 != 0.0, "division by zero cost");
        self.0 / other.0
    }
}

impl Add for CostUnits {
    type Output = CostUnits;
    fn add(self, rhs: CostUnits) -> CostUnits {
        CostUnits(self.0 + rhs.0)
    }
}

impl AddAssign for CostUnits {
    fn add_assign(&mut self, rhs: CostUnits) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for CostUnits {
    type Output = CostUnits;
    fn mul(self, rhs: f64) -> CostUnits {
        CostUnits(self.0 * rhs)
    }
}

impl Div<f64> for CostUnits {
    type Output = CostUnits;
    fn div(self, rhs: f64) -> CostUnits {
        CostUnits(self.0 / rhs)
    }
}

impl Sum for CostUnits {
    fn sum<I: Iterator<Item = CostUnits>>(iter: I) -> CostUnits {
        iter.fold(CostUnits::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for CostUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} cu", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_accessors() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(2).as_gib(), 2.0);
        assert_eq!(Bytes::ZERO.as_u64(), 0);
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::from_kib(3);
        let b = Bytes::from_kib(1);
        assert_eq!(a + b, Bytes::from_kib(4));
        assert_eq!(a - b, Bytes::from_kib(2));
        assert_eq!(a * 2, Bytes::from_kib(6));
        assert_eq!(a / 3, Bytes::from_kib(1));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
    }

    #[test]
    fn bytes_display_scales() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(Bytes::from_mib(256).to_string(), "256.00 MiB");
        assert_eq!(Bytes::from_gib(64).to_string(), "64.00 GiB");
    }

    #[test]
    fn bandwidth_moves_bytes() {
        let bw = Bandwidth::from_gb_per_s(100.0);
        let t = bw.time_to_move(Bytes::new(1_000_000_000));
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(
            bw.bytes_in(SimTime::from_millis(10)).as_u64(),
            1_000_000_000
        );
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::ZERO.time_to_move(Bytes::new(1));
    }

    #[test]
    fn simtime_conversions_roundtrip() {
        let t = SimTime::from_micros(123);
        assert_eq!(t.as_micros_f64(), 123.0);
        assert_eq!(SimTime::from_secs_f64(t.as_secs_f64()), t);
        assert_eq!(SimTime::from_millis(1).as_picos(), 1_000_000_000);
    }

    #[test]
    fn simtime_display_scales() {
        assert_eq!(SimTime::from_picos(500).to_string(), "500 ps");
        assert_eq!(SimTime::from_nanos(5).to_string(), "5.000 ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000 µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000 ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000 s");
        assert_eq!(SimTime::from_secs(1800).to_string(), "30.0 min");
        assert_eq!(SimTime::from_secs(3 * 3600).to_string(), "3.0 h");
        assert_eq!(SimTime::from_secs(18 * 86_400).to_string(), "18.0 days");
    }

    #[test]
    fn floprate_computes_time() {
        // 177 TFLOPS executing 177 GFLOP takes 1 ms.
        let rate = FlopRate::from_tflops(177.0);
        let t = rate.time_to_compute(FlopCount::from_gflops(177.0));
        assert_eq!(t, SimTime::from_millis(1));
    }

    #[test]
    fn hertz_cycle_time() {
        let f = Hertz::from_ghz(1.0);
        assert_eq!(f.cycle_time(), SimTime::from_nanos(1));
        assert_eq!(Hertz::from_ghz(1.35).ratio(Hertz::from_ghz(1.35)), 1.0);
        // One 1.35 GHz cycle rounds to 741 ps.
        assert_eq!(Hertz::from_ghz(1.35).cycle_time().as_picos(), 741);
    }

    #[test]
    fn watts_energy() {
        let p = Watts::new(85.0);
        let e = p.energy_over(SimTime::from_secs(2));
        assert!((e.as_f64() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn cost_ratio() {
        let gpu = CostUnits::new(1000.0);
        let mtia = CostUnits::new(250.0);
        assert_eq!(mtia.ratio(gpu), 0.25);
    }

    #[test]
    fn sums_work() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Bytes::new(6));
        let t: SimTime = [SimTime::from_nanos(1), SimTime::from_nanos(2)]
            .into_iter()
            .sum();
        assert_eq!(t, SimTime::from_nanos(3));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Bytes::new(10).scale(0.55), Bytes::new(6));
        assert_eq!(SimTime::from_picos(10).scale(1.5), SimTime::from_picos(15));
    }
}
