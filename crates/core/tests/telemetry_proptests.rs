//! Property tests for [`mtia_core::telemetry`]: the merge algebra the
//! sharded Monte-Carlo replicas rely on, well-nestedness of the stack
//! span API, and lossless JSON round-tripping (including u64 timestamps
//! past 2^53, where f64 would silently round).

use mtia_core::pool;
use mtia_core::telemetry::json::{self, Json};
use mtia_core::telemetry::metrics::MetricsRegistry;
use mtia_core::telemetry::Telemetry;
use mtia_core::SimTime;
use proptest::collection::vec;
use proptest::prelude::*;

/// A deterministic splitmix64 stream, so a single `u64` seed drives
/// arbitrarily shaped structured inputs without needing recursive
/// strategies.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One metric operation, decoded from the stream.
#[derive(Clone, Debug)]
enum Op {
    Counter(String, u64),
    Gauge(String, f64),
    Hist(String, SimTime),
}

fn decode_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut s = Stream(seed);
    (0..n)
        .map(|_| {
            let name = format!("m{}", s.below(5));
            match s.below(3) {
                0 => Op::Counter(name, s.below(1_000_000)),
                1 => Op::Gauge(name, s.below(1_000_000) as f64 / 7.0),
                _ => Op::Hist(name, SimTime::from_picos(1 + s.below(200_000_000_000_000))),
            }
        })
        .collect()
}

fn apply(reg: &mut MetricsRegistry, op: &Op) {
    match op {
        Op::Counter(name, v) => reg.counter_add(name, *v),
        Op::Gauge(name, v) => reg.gauge_max(name, *v),
        Op::Hist(name, t) => reg.hist_record(name, *t),
    }
}

/// Decodes an arbitrary `Json` document (bounded depth/width) from the
/// stream; `budget` caps total node count.
fn decode_json(s: &mut Stream, depth: usize, budget: &mut usize) -> Json {
    *budget = budget.saturating_sub(1);
    let leaf_only = depth == 0 || *budget == 0;
    match if leaf_only { s.below(5) } else { s.below(7) } {
        0 => Json::Null,
        1 => Json::Bool(s.below(2) == 0),
        2 => Json::UInt(s.next()),
        3 => {
            // Finite f64 with a fractional part; keep magnitudes sane.
            Json::Num(s.below(1_000_000_000) as f64 / 64.0 - 1000.0)
        }
        4 => Json::Str(match s.below(4) {
            0 => String::new(),
            1 => "plain".to_string(),
            2 => "esc \"quote\" \\ back \n tab\t".to_string(),
            _ => format!("u{:x}\u{1}\u{7f}", s.next()),
        }),
        5 => {
            let n = s.below(4) as usize;
            Json::Arr((0..n).map(|_| decode_json(s, depth - 1, budget)).collect())
        }
        _ => {
            let n = s.below(4) as usize;
            Json::obj(
                (0..n)
                    .map(|i| (format!("k{i}"), decode_json(s, depth - 1, budget)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sharding a metric-op stream across the worker pool and merging
    /// the per-shard registries (in any grouping) equals applying every
    /// op serially: merge is associative, commutative, and agrees with
    /// the serial fold.
    #[test]
    fn registry_merge_is_shard_invariant(
        seed in any::<u64>(),
        n in 1usize..200,
        shards in 1usize..8,
        threads in 1usize..5,
    ) {
        let ops = decode_ops(seed, n);
        let mut serial = MetricsRegistry::default();
        for op in &ops {
            apply(&mut serial, op);
        }

        // Round-robin shard assignment, built concurrently on the pool.
        let chunks: Vec<Vec<Op>> = (0..shards)
            .map(|k| ops.iter().skip(k).step_by(shards).cloned().collect())
            .collect();
        let parts: Vec<MetricsRegistry> = pool::parallel_map_with(threads, chunks, |_, chunk| {
            let mut reg = MetricsRegistry::default();
            for op in &chunk {
                apply(&mut reg, op);
            }
            reg
        });

        // Left fold (a ∪ b) ∪ c ...
        let mut left = MetricsRegistry::default();
        for part in &parts {
            left.merge(part);
        }
        // Right fold a ∪ (b ∪ (c ∪ ...)), then reversed order.
        let mut right = MetricsRegistry::default();
        for part in parts.iter().rev() {
            let mut tmp = part.clone();
            tmp.merge(&right);
            right = tmp;
        }
        prop_assert_eq!(&left, &serial);
        prop_assert_eq!(&right, &serial);
    }

    /// Any begin/end sequence the stack API accepts yields a
    /// well-nested span forest: every child interval is contained in
    /// its parent's, even under arbitrary interleavings and time gaps.
    #[test]
    fn stack_api_spans_are_well_nested(
        seed in any::<u64>(),
        steps in 1usize..120,
    ) {
        let mut s = Stream(seed);
        let mut tel = Telemetry::new_enabled();
        let mut now = 0u64;
        let mut depth = 0usize;
        for i in 0..steps {
            now += s.below(1_000_000);
            // Bias toward opening so trees get a few levels deep.
            if depth > 0 && s.below(3) == 0 {
                tel.end_span(SimTime::from_picos(now));
                depth -= 1;
            } else {
                tel.begin_span(format!("s{i}"), "prop", SimTime::from_picos(now));
                if s.below(2) == 0 {
                    tel.span_attr("i", Json::UInt(i as u64));
                }
                depth += 1;
            }
        }
        while depth > 0 {
            now += s.below(1_000_000);
            tel.end_span(SimTime::from_picos(now));
            depth -= 1;
        }
        prop_assert_eq!(tel.tracer.open_depth(), 0);
        prop_assert_eq!(tel.tracer.validate_nesting(), Ok(()));
    }

    /// `render → parse → render` is a fixpoint for arbitrary documents,
    /// and u64 values (beyond f64's 2^53 integer range) survive exactly.
    #[test]
    fn json_render_parse_round_trip(
        seed in any::<u64>(),
        extremes in vec(any::<u64>(), 0..8),
    ) {
        let mut s = Stream(seed);
        let mut budget = 64usize;
        let mut doc = decode_json(&mut s, 4, &mut budget);
        // Splice in adversarial u64s at the top level.
        if let Json::Obj(pairs) = &mut doc {
            for (i, v) in extremes.iter().enumerate() {
                pairs.push((format!("x{i}"), Json::UInt(*v)));
            }
        }
        let rendered = doc.render();
        let reparsed = json::parse(&rendered)
            .map_err(|e| TestCaseError::Fail(format!("{e}: {rendered}")))?;
        prop_assert_eq!(reparsed.render(), rendered);
    }

    /// Both exporters emit parseable JSON for arbitrary recorded
    /// telemetry, and the canonical export is insensitive to metric
    /// recording order (BTreeMap canonicalization).
    #[test]
    fn exports_parse_and_canonicalize(
        seed in any::<u64>(),
        n in 1usize..60,
    ) {
        let ops = decode_ops(seed, n);
        let mut tel = Telemetry::new_enabled();
        tel.begin_span("root", "prop", SimTime::ZERO);
        for op in &ops {
            apply(&mut tel.metrics, op);
        }
        tel.instant("tick", "prop", SimTime::from_picos(5), vec![]);
        tel.end_span(SimTime::from_picos(10));

        let mut shuffled = Telemetry::new_enabled();
        shuffled.begin_span("root", "prop", SimTime::ZERO);
        let mut s = Stream(seed ^ 0xdead_beef);
        let mut reordered = ops.clone();
        for i in (1..reordered.len()).rev() {
            reordered.swap(i, s.below(i as u64 + 1) as usize);
        }
        for op in &reordered {
            apply(&mut shuffled.metrics, op);
        }
        shuffled.instant("tick", "prop", SimTime::from_picos(5), vec![]);
        shuffled.end_span(SimTime::from_picos(10));

        let canonical = tel.to_canonical_json();
        prop_assert_eq!(&canonical, &shuffled.to_canonical_json());
        json::parse(&canonical)
            .map_err(|e| TestCaseError::Fail(format!("canonical: {e}")))?;
        json::parse(&tel.to_chrome_json())
            .map_err(|e| TestCaseError::Fail(format!("chrome: {e}")))?;
    }
}
