//! The firmware continuous-deployment pipeline (§5.5).
//!
//! "We use Meta's continuous deployment tool to regularly test and deploy
//! firmware across the fleet. The tool builds firmware three times daily
//! and subjects each build to stress testing on Meta's testing platform,
//! where the issue described above was automatically detected. Not all
//! builds are deployed to production. A typical rollout takes 18 days ...
//! In 2024, we deployed 23 firmware-bundle releases fleet-wide."

use mtia_core::SimTime;
use rand::Rng;

use crate::firmware::{simulate_rollout, FirmwareBundle, Rollout};

/// Pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdConfig {
    /// Builds per day.
    pub builds_per_day: u32,
    /// Probability a build carries a production-relevant defect.
    pub defect_rate: f64,
    /// Probability pre-production stress testing catches a defect.
    pub stress_catch_rate: f64,
    /// Fleet size in servers.
    pub fleet_servers: u32,
}

impl CdConfig {
    /// The calibrated production pipeline.
    pub fn production() -> Self {
        CdConfig {
            builds_per_day: 3,
            defect_rate: 0.04,
            stress_catch_rate: 0.95,
            fleet_servers: 50_000,
        }
    }
}

/// One year of pipeline operation.
#[derive(Debug, Clone, PartialEq)]
pub struct YearReport {
    /// Builds produced.
    pub builds: u32,
    /// Builds rejected by pre-production stress testing.
    pub rejected_by_stress: u32,
    /// Fleet-wide releases shipped.
    pub releases: u32,
    /// Defective builds that escaped stress testing into a rollout.
    pub escaped_defects: u32,
    /// Escaped defects halted by the staged rollout before full fleet.
    pub contained_by_staging: u32,
    /// Total servers that hit an escaped defect before containment.
    pub servers_impacted: u32,
}

impl YearReport {
    /// Fraction of escaped defects the staged rollout contained.
    pub fn containment_rate(&self) -> f64 {
        if self.escaped_defects == 0 {
            1.0
        } else {
            self.contained_by_staging as f64 / self.escaped_defects as f64
        }
    }
}

/// Simulates one year: builds accumulate; whenever the rollout pipeline is
/// idle, the latest stress-green build ships through the standard staged
/// rollout. A rollout halted by a detected defect restarts the pipeline
/// immediately with the next green build.
pub fn simulate_year<R: Rng + ?Sized>(config: CdConfig, rng: &mut R) -> YearReport {
    let rollout = Rollout::standard();
    let rollout_days = rollout.duration().as_secs_f64() / 86_400.0;

    let mut report = YearReport {
        builds: 0,
        rejected_by_stress: 0,
        releases: 0,
        escaped_defects: 0,
        contained_by_staging: 0,
        servers_impacted: 0,
    };

    let mut day = 0.0f64;
    while day < 365.0 {
        // Builds since the last rollout slot: take the newest green one.
        let builds_in_window = ((rollout_days * config.builds_per_day as f64) as u32).max(1);
        report.builds += builds_in_window;

        // Walk candidates newest-first until one passes stress testing.
        let mut candidate_defective = false;
        let mut found = false;
        for _ in 0..builds_in_window {
            let defective = rng.gen_bool(config.defect_rate);
            if defective {
                if rng.gen_bool(config.stress_catch_rate) {
                    report.rejected_by_stress += 1;
                    continue; // try an older build
                }
                // Defect escaped stress testing.
                candidate_defective = true;
            }
            found = true;
            break;
        }
        if !found {
            // Every build in the window was rejected; wait for the next.
            day += 1.0 / config.builds_per_day as f64;
            continue;
        }

        let bundle = if candidate_defective {
            report.escaped_defects += 1;
            FirmwareBundle::original() // carries the §5.5-class defect
        } else {
            FirmwareBundle::mitigated()
        };
        let outcome = simulate_rollout(&rollout, &bundle, config.fleet_servers, rng);
        if candidate_defective {
            report.servers_impacted += outcome.servers_impacted;
            if outcome
                .detected_at_stage
                .map(|s| s < rollout.stages.len() - 1)
                .unwrap_or(false)
            {
                report.contained_by_staging += 1;
                // Halted: the slot is spent on the partial rollout + a
                // replacement release.
                report.releases += 1;
            }
        } else {
            report.releases += 1;
        }
        day += rollout_days;
    }
    report
}

/// Emergency deployment timing check: the 3-hour and 1-hour paths.
pub fn emergency_paths() -> (SimTime, SimTime) {
    (
        Rollout::emergency().duration(),
        Rollout::extreme().duration(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn a_year_ships_about_23_releases() {
        // §5.5: "In 2024, we deployed 23 firmware-bundle releases
        // fleet-wide" — i.e. roughly one per 18-day rollout slot.
        let mut rng = StdRng::seed_from_u64(101);
        let report = simulate_year(CdConfig::production(), &mut rng);
        assert!(
            (18..=26).contains(&report.releases),
            "releases {} (paper: 23)",
            report.releases
        );
        assert!(report.builds > 1000, "3/day × 365 ≈ 1095 builds");
    }

    #[test]
    fn stress_testing_rejects_most_defects() {
        let mut rng = StdRng::seed_from_u64(102);
        let mut rejected = 0;
        let mut escaped = 0;
        for seed in 0..20 {
            let _ = seed;
            let r = simulate_year(CdConfig::production(), &mut rng);
            rejected += r.rejected_by_stress;
            escaped += r.escaped_defects;
        }
        assert!(
            rejected as f64 > 5.0 * escaped as f64,
            "stress testing must catch most defects: {rejected} vs {escaped}"
        );
    }

    #[test]
    fn escaped_defects_are_contained_by_staging() {
        let mut config = CdConfig::production();
        config.defect_rate = 0.5; // force escapes for the statistic
        config.stress_catch_rate = 0.5;
        let mut rng = StdRng::seed_from_u64(103);
        let mut escaped = 0;
        let mut contained = 0;
        let mut impacted = 0;
        for _ in 0..10 {
            let r = simulate_year(config, &mut rng);
            escaped += r.escaped_defects;
            contained += r.contained_by_staging;
            impacted += r.servers_impacted;
        }
        assert!(escaped > 0);
        assert!(
            contained as f64 >= 0.9 * escaped as f64,
            "containment {contained}/{escaped}"
        );
        // Blast radius far below fleet-wide exposure per escape.
        assert!(
            (impacted as f64) < 10.0 * escaped as f64,
            "impacted {impacted} over {escaped} escapes"
        );
    }

    #[test]
    fn emergency_paths_match_the_paper() {
        let (emergency, extreme) = emergency_paths();
        assert_eq!(emergency, SimTime::from_secs(3 * 3600));
        assert_eq!(extreme, SimTime::from_secs(3600));
    }
}
