//! The §5.4 chip-sizing study: why smaller chips win for inference.
//!
//! Two effects are modelled. First, **allocation granularity**: capacity is
//! provisioned in whole devices per model, and 24 small chips quantize a
//! model's peak demand far more tightly than 8 big ones. Second,
//! **peak buffering under variable load**: production reserves capacity
//! for peak demand, so the average utilization of the provisioned fleet is
//! `avg/peak × (demand/provisioned)`; oversized devices strand more of it.
//! Together these produce the paper's "additional gain of 5 % to 90 % in
//! Perf/TCO and Perf/Watt in production compared to offline traffic
//! replay".

use rand::Rng;

/// A device-size option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceOption {
    /// Name.
    pub name: &'static str,
    /// Throughput of one device for a reference model, in arbitrary
    /// capacity units.
    pub device_throughput: f64,
    /// Devices per server.
    pub per_server: u32,
}

impl DeviceOption {
    /// The small-chip option (MTIA-like: 24 per server).
    pub fn small_chip() -> Self {
        DeviceOption {
            name: "small (24/server)",
            device_throughput: 1.0,
            per_server: 24,
        }
    }

    /// The big-chip option (GPU-like: 8 per server, ~3× the per-device
    /// throughput so server totals are comparable).
    pub fn big_chip() -> Self {
        DeviceOption {
            name: "big (8/server)",
            device_throughput: 3.0,
            per_server: 8,
        }
    }
}

/// One model's serving demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelDemand {
    /// Peak demand in capacity units.
    pub peak: f64,
    /// Average/peak ratio (diurnal valley depth).
    pub avg_to_peak: f64,
}

/// Samples a production-like model portfolio: demand spans two orders of
/// magnitude, with most models needing only a handful of devices (§5.4:
/// "Meta has many models with small to medium capacity demands").
pub fn sample_portfolio<R: Rng + ?Sized>(models: u32, rng: &mut R) -> Vec<ModelDemand> {
    (0..models)
        .map(|_| {
            // Log-uniform peak demand from 0.3 to 30 device-units.
            let log: f64 = rng.gen_range(0.3f64.ln()..30f64.ln());
            ModelDemand {
                peak: log.exp(),
                avg_to_peak: rng.gen_range(0.45..0.75),
            }
        })
        .collect()
}

/// Provisioning outcome for one option over a portfolio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisionReport {
    /// Total devices provisioned.
    pub devices: u32,
    /// Total provisioned throughput (devices × per-device).
    pub provisioned: f64,
    /// Sum of average demands actually served.
    pub served_avg: f64,
    /// Mean utilization of the provisioned capacity.
    pub utilization: f64,
}

/// Provisions `option` for every model: enough whole devices to cover the
/// model's peak.
pub fn provision(option: DeviceOption, portfolio: &[ModelDemand]) -> ProvisionReport {
    let mut devices = 0u32;
    let mut served_avg = 0.0;
    for m in portfolio {
        let need = (m.peak / option.device_throughput).ceil().max(1.0) as u32;
        devices += need;
        served_avg += m.peak * m.avg_to_peak;
    }
    let provisioned = devices as f64 * option.device_throughput;
    ProvisionReport {
        devices,
        provisioned,
        served_avg,
        utilization: served_avg / provisioned,
    }
}

/// The §5.4 comparison: production efficiency gain of small over big
/// chips, normalized to their offline-replay (peak-rate) equality.
///
/// Offline replay measures per-device peak throughput, where the two
/// options are equivalent per provisioned unit. Production pays for
/// *provisioned* capacity; the efficiency ratio of the options equals the
/// ratio of their achieved utilizations.
pub fn production_gain_over_replay(portfolio: &[ModelDemand]) -> f64 {
    let small = provision(DeviceOption::small_chip(), portfolio);
    let big = provision(DeviceOption::big_chip(), portfolio);
    small.utilization / big.utilization - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_chips_quantize_demand_tighter() {
        // A model needing 1.2 units: small chips provision 2 devices (2.0),
        // big chips 1 device (3.0) — 50 % more stranded capacity.
        let demand = [ModelDemand {
            peak: 1.2,
            avg_to_peak: 0.6,
        }];
        let small = provision(DeviceOption::small_chip(), &demand);
        let big = provision(DeviceOption::big_chip(), &demand);
        assert_eq!(small.devices, 2);
        assert_eq!(big.devices, 1);
        assert!(small.utilization > big.utilization);
    }

    #[test]
    fn production_gain_in_paper_band() {
        // §5.4: "an additional gain of 5% to 90%" for individual
        // portfolios; the fleet-level mean sits inside that band.
        let mut rng = StdRng::seed_from_u64(81);
        let mut gains = Vec::new();
        for _ in 0..50 {
            let portfolio = sample_portfolio(40, &mut rng);
            gains.push(production_gain_over_replay(&portfolio));
        }
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!((0.05..=0.90).contains(&mean), "mean gain {mean}");
        // Individual portfolios span a wide range but stay positive.
        assert!(gains.iter().all(|&g| g > 0.0), "small chips never lose");
    }

    #[test]
    fn small_model_portfolios_show_the_largest_gains() {
        // Fleets dominated by sub-device models are where big chips waste
        // the most.
        let tiny: Vec<ModelDemand> = (0..30)
            .map(|i| ModelDemand {
                peak: 0.4 + 0.05 * i as f64,
                avg_to_peak: 0.6,
            })
            .collect();
        let gain = production_gain_over_replay(&tiny);
        assert!(gain > 0.4, "tiny-model gain {gain}");
    }

    #[test]
    fn huge_models_equalize_the_options() {
        // A model needing 300 units amortizes quantization on both.
        let huge = [ModelDemand {
            peak: 300.0,
            avg_to_peak: 0.6,
        }];
        let gain = production_gain_over_replay(&huge);
        assert!(gain.abs() < 0.05, "huge-model gain {gain}");
    }

    #[test]
    fn utilization_bounded_by_avg_to_peak() {
        let mut rng = StdRng::seed_from_u64(82);
        let portfolio = sample_portfolio(100, &mut rng);
        for option in [DeviceOption::small_chip(), DeviceOption::big_chip()] {
            let r = provision(option, &portfolio);
            assert!(r.utilization <= 0.75);
            assert!(r.utilization > 0.1);
        }
    }
}
