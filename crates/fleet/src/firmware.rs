//! Firmware-bundle releases and rollout (§5.5).
//!
//! Firmware, drivers, and runtime libraries deploy atomically as a
//! *firmware bundle*. Builds happen three times daily and are stress-tested
//! pre-production (where the §5.5 deadlock was caught: ~1 % of servers
//! under 100 % PE-utilization stress lost PCIe connectivity). A standard
//! rollout takes 18 days through staged populations; emergencies deploy
//! fleet-wide in 3 hours (1 hour with safety overrides). 23 bundles shipped
//! fleet-wide in 2024, versus 1–2 firmware updates for third-party GPUs.

use mtia_core::telemetry::{Json, Telemetry};
use mtia_core::SimTime;
use mtia_sim::noc::deadlock::{
    deadlock_possible, DeadlockConfig, PRODUCTION_TRIGGER_PROBABILITY, STRESS_TRIGGER_PROBABILITY,
};
use rand::Rng;

/// A firmware bundle version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareBundle {
    /// Version string.
    pub version: String,
    /// Whether the Control-Core working memory lives in device SRAM (the
    /// deadlock mitigation) or host memory (the original design).
    pub control_memory_in_sram: bool,
}

impl FirmwareBundle {
    /// The bundle as originally shipped (deadlock-prone under load).
    pub fn original() -> Self {
        FirmwareBundle {
            version: "fw-2024.01".to_string(),
            control_memory_in_sram: false,
        }
    }

    /// The mitigated bundle.
    pub fn mitigated() -> Self {
        FirmwareBundle {
            version: "fw-2024.02".to_string(),
            control_memory_in_sram: true,
        }
    }

    /// The NoC deadlock configuration this bundle produces under load.
    pub fn deadlock_config_under_load(&self) -> DeadlockConfig {
        if self.control_memory_in_sram {
            DeadlockConfig::post_mitigation_under_load()
        } else {
            DeadlockConfig::pre_mitigation_under_load()
        }
    }

    /// Whether one stress-test run (PE utilization at 100 %) hangs a
    /// server running this bundle.
    pub fn stress_run_hangs<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        deadlock_possible(self.deadlock_config_under_load())
            && rng.gen_bool(STRESS_TRIGGER_PROBABILITY)
    }

    /// Whether a production server serving an affected model hangs in the
    /// observation window.
    pub fn production_server_hangs<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        deadlock_possible(self.deadlock_config_under_load())
            && rng.gen_bool(PRODUCTION_TRIGGER_PROBABILITY)
    }
}

/// One rollout stage: a fleet fraction and a soak duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutStage {
    /// Cumulative fleet fraction after this stage.
    pub fleet_fraction: f64,
    /// Soak time at this stage.
    pub soak: SimTime,
}

/// A rollout schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollout {
    /// Ordered stages.
    pub stages: Vec<RolloutStage>,
}

impl Rollout {
    /// The standard 18-day staged rollout.
    pub fn standard() -> Self {
        let day = SimTime::from_secs(86_400);
        Rollout {
            stages: vec![
                RolloutStage {
                    fleet_fraction: 0.01,
                    soak: day * 2,
                }, // staging
                RolloutStage {
                    fleet_fraction: 0.05,
                    soak: day * 3,
                },
                RolloutStage {
                    fleet_fraction: 0.25,
                    soak: day * 5,
                },
                RolloutStage {
                    fleet_fraction: 1.00,
                    soak: day * 8,
                },
            ],
        }
    }

    /// The 3-hour emergency rollout (safety policies still limit
    /// simultaneous restarts).
    pub fn emergency() -> Self {
        let hour = SimTime::from_secs(3600);
        Rollout {
            stages: vec![
                RolloutStage {
                    fleet_fraction: 0.1,
                    soak: hour,
                },
                RolloutStage {
                    fleet_fraction: 0.5,
                    soak: hour,
                },
                RolloutStage {
                    fleet_fraction: 1.0,
                    soak: hour,
                },
            ],
        }
    }

    /// The 1-hour extreme rollout (restart policies overridden).
    pub fn extreme() -> Self {
        Rollout {
            stages: vec![RolloutStage {
                fleet_fraction: 1.0,
                soak: SimTime::from_secs(3600),
            }],
        }
    }

    /// Total duration.
    pub fn duration(&self) -> SimTime {
        self.stages.iter().map(|s| s.soak).sum()
    }
}

/// Result of simulating a rollout of a *defective* bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutOutcome {
    /// Stage index at which the defect was detected (None = never).
    pub detected_at_stage: Option<usize>,
    /// Servers that hit the defect before detection halted the rollout.
    pub servers_impacted: u32,
    /// Time until detection.
    pub time_to_detection: Option<SimTime>,
}

/// Simulates rolling out `bundle` across a fleet of `fleet_servers`,
/// halting as soon as a hung server is detected during a stage's soak.
/// `per_server_hang_probability` is evaluated once per server per stage.
pub fn simulate_rollout<R: Rng + ?Sized>(
    rollout: &Rollout,
    bundle: &FirmwareBundle,
    fleet_servers: u32,
    rng: &mut R,
) -> RolloutOutcome {
    simulate_rollout_traced(
        rollout,
        bundle,
        fleet_servers,
        rng,
        &mut Telemetry::disabled(),
    )
}

/// [`simulate_rollout`] with observability: when `tel` is enabled,
/// records a `fleet.rollout` root span with one child span per staged
/// soak (sim-time placed on the cumulative rollout clock), a
/// `rollout.halted` instant event when detection stops the rollout,
/// and coverage/impact counters. The returned outcome is byte-identical
/// to the untraced run (the RNG is consumed identically).
pub fn simulate_rollout_traced<R: Rng + ?Sized>(
    rollout: &Rollout,
    bundle: &FirmwareBundle,
    fleet_servers: u32,
    rng: &mut R,
    tel: &mut Telemetry,
) -> RolloutOutcome {
    let mut covered = 0u32;
    let mut impacted = 0u32;
    let mut elapsed = SimTime::ZERO;
    // One simulated event per staged soak plus one per server evaluated
    // in it, flushed to `perfcount` so firmware experiments show up in
    // `reproduce --bench-perf`'s events/sec column.
    let mut events = 0u64;
    // The deadlock predicate is a property of the bundle, not of a server:
    // evaluate the wait-for graph once.
    let hazardous = deadlock_possible(bundle.deadlock_config_under_load());
    tel.begin_span("fleet.rollout", "fleet", SimTime::ZERO);
    tel.span_attr("bundle", Json::Str(bundle.version.clone()));
    tel.span_attr("fleet_servers", Json::UInt(fleet_servers as u64));
    tel.span_attr("stages", Json::UInt(rollout.stages.len() as u64));
    for (i, stage) in rollout.stages.iter().enumerate() {
        let target = ((fleet_servers as f64) * stage.fleet_fraction).round() as u32;
        let newly = target.saturating_sub(covered);
        covered = target;
        let stage_start = elapsed;
        elapsed += stage.soak;
        events += 1 + newly as u64;
        let mut detected = false;
        let impacted_before = impacted;
        if hazardous {
            for _ in 0..newly {
                if rng.gen_bool(PRODUCTION_TRIGGER_PROBABILITY) {
                    impacted += 1;
                    detected = true;
                }
            }
        }
        tel.complete_span(
            format!("stage{i}"),
            "fleet",
            stage_start,
            elapsed,
            vec![
                ("fleet_fraction".into(), Json::Num(stage.fleet_fraction)),
                ("servers_added".into(), Json::UInt(newly as u64)),
                (
                    "servers_impacted".into(),
                    Json::UInt((impacted - impacted_before) as u64),
                ),
            ],
        );
        tel.counter_add("fleet.rollout.servers_covered", newly as u64);
        tel.counter_add(
            "fleet.rollout.servers_impacted",
            (impacted - impacted_before) as u64,
        );
        if detected {
            tel.instant(
                "rollout.halted",
                "fleet",
                elapsed,
                vec![
                    ("stage".into(), Json::UInt(i as u64)),
                    ("servers_impacted".into(), Json::UInt(impacted as u64)),
                ],
            );
            tel.end_span(elapsed);
            mtia_core::perfcount::add_events(events);
            return RolloutOutcome {
                detected_at_stage: Some(i),
                servers_impacted: impacted,
                time_to_detection: Some(elapsed),
            };
        }
    }
    tel.end_span(elapsed);
    mtia_core::perfcount::add_events(events);
    RolloutOutcome {
        detected_at_stage: None,
        servers_impacted: impacted,
        time_to_detection: None,
    }
}

/// Runs `trials` independent rollout simulations on the
/// [`mtia_core::pool`] workers, returning outcomes in trial order.
///
/// Trial `i` draws from its own RNG stream,
/// `derive_indexed(root_seed, "firmware/rollout-trial", i)` — a pure
/// function of the trial index rather than a position in one shared
/// sequential stream — so the outcome vector is byte-identical at any
/// thread count and any scheduling order.
pub fn simulate_rollout_replicas(
    rollout: &Rollout,
    bundle: &FirmwareBundle,
    fleet_servers: u32,
    root_seed: u64,
    trials: u32,
) -> Vec<RolloutOutcome> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    mtia_core::pool::parallel_map((0..trials).collect(), |i, _| {
        let seed = mtia_core::seed::derive_indexed(root_seed, "firmware/rollout-trial", i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_rollout(rollout, bundle, fleet_servers, &mut rng)
    })
}

/// Continuous-deployment cadence facts (§5.5).
pub mod cadence {
    /// Firmware builds per day on the CI pipeline.
    pub const BUILDS_PER_DAY: u32 = 3;
    /// Fleet-wide bundle releases shipped in 2024.
    pub const RELEASES_2024: u32 = 23;
    /// Third-party GPU firmware updates achievable per year.
    pub const GPU_RELEASES_PER_YEAR: u32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn original_bundle_hangs_under_stress_at_one_percent() {
        let bundle = FirmwareBundle::original();
        let mut rng = StdRng::seed_from_u64(71);
        let hangs = (0..20_000)
            .filter(|_| bundle.stress_run_hangs(&mut rng))
            .count();
        let rate = hangs as f64 / 20_000.0;
        assert!((rate - 0.01).abs() < 0.004, "stress hang rate {rate}");
    }

    #[test]
    fn mitigated_bundle_never_hangs() {
        let bundle = FirmwareBundle::mitigated();
        let mut rng = StdRng::seed_from_u64(72);
        assert!((0..50_000).all(|_| !bundle.stress_run_hangs(&mut rng)));
        assert!(!deadlock_possible(bundle.deadlock_config_under_load()));
    }

    #[test]
    fn standard_rollout_is_18_days() {
        let r = Rollout::standard();
        let days = r.duration().as_secs_f64() / 86_400.0;
        assert_eq!(days, 18.0);
        // Fractions are monotone and end at 1.0.
        assert!(r
            .stages
            .windows(2)
            .all(|w| w[1].fleet_fraction > w[0].fleet_fraction));
        assert_eq!(r.stages.last().unwrap().fleet_fraction, 1.0);
    }

    #[test]
    fn emergency_rollouts_are_fast() {
        assert_eq!(
            Rollout::emergency().duration(),
            SimTime::from_secs(3 * 3600)
        );
        assert_eq!(Rollout::extreme().duration(), SimTime::from_secs(3600));
    }

    #[test]
    fn rollout_replicas_are_thread_count_invariant() {
        let rollout = Rollout::standard();
        let bundle = FirmwareBundle::original();
        let run = |threads: usize| {
            mtia_core::pool::set_threads(threads);
            let outcomes = simulate_rollout_replicas(&rollout, &bundle, 50_000, 73, 12);
            mtia_core::pool::set_threads(0);
            outcomes
        };
        let serial = run(1);
        let threaded = run(4);
        assert_eq!(serial, threaded);
        assert_eq!(serial.len(), 12);
        // The defective bundle is caught in most trials.
        let caught = serial
            .iter()
            .filter(|o| o.detected_at_stage.is_some())
            .count();
        assert!(caught >= 10, "caught {caught}/12");
    }

    #[test]
    fn staged_rollout_catches_the_defect_early() {
        // §5.5: the 0.1 %-of-servers defect is caught by incremental
        // rollout before reaching the whole fleet.
        let rollout = Rollout::standard();
        let bundle = FirmwareBundle::original();
        let fleet = 50_000u32;
        let mut rng = StdRng::seed_from_u64(73);
        let mut detections_before_full = 0;
        let mut total_impacted = 0u32;
        for _ in 0..50 {
            let outcome = simulate_rollout(&rollout, &bundle, fleet, &mut rng);
            if let Some(stage) = outcome.detected_at_stage {
                if stage < rollout.stages.len() - 1 {
                    detections_before_full += 1;
                }
            }
            total_impacted += outcome.servers_impacted;
        }
        // With 0.1 % incidence, the 5 % stage (2500 servers) almost always
        // surfaces it.
        assert!(
            detections_before_full >= 45,
            "only {detections_before_full}/50 caught before full fleet"
        );
        // Blast radius stays far below fleet-wide exposure.
        assert!((total_impacted as f64) / 50.0 < 0.001 * fleet as f64 * 0.3);
    }

    #[test]
    fn traced_rollout_matches_untraced() {
        let rollout = Rollout::standard();
        let bundle = FirmwareBundle::original();
        let untraced = simulate_rollout(&rollout, &bundle, 50_000, &mut StdRng::seed_from_u64(75));
        let mut tel = Telemetry::new_enabled();
        let traced = simulate_rollout_traced(
            &rollout,
            &bundle,
            50_000,
            &mut StdRng::seed_from_u64(75),
            &mut tel,
        );
        assert_eq!(untraced, traced);
        tel.tracer
            .validate_nesting()
            .expect("stage spans contained");
        let root = &tel.tracer.roots()[0];
        // Halted rollouts record exactly the stages that ran, plus the
        // halt marker at the detection time.
        let stage = traced.detected_at_stage.expect("defective bundle caught");
        assert_eq!(root.children.len(), stage + 1);
        assert_eq!(root.end, traced.time_to_detection.unwrap());
        let halt = tel
            .tracer
            .events()
            .iter()
            .find(|e| e.name == "rollout.halted")
            .expect("halt event");
        assert_eq!(halt.ts, traced.time_to_detection.unwrap());
        assert_eq!(
            tel.metrics.counter("fleet.rollout.servers_impacted"),
            traced.servers_impacted as u64
        );
    }

    #[test]
    fn mitigated_rollout_completes_cleanly() {
        let rollout = Rollout::standard();
        let bundle = FirmwareBundle::mitigated();
        let mut rng = StdRng::seed_from_u64(74);
        let outcome = simulate_rollout(&rollout, &bundle, 50_000, &mut rng);
        assert_eq!(outcome.detected_at_stage, None);
        assert_eq!(outcome.servers_impacted, 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn release_cadence_dwarfs_gpus() {
        assert!(cadence::RELEASES_2024 > 10 * cadence::GPU_RELEASES_PER_YEAR);
    }
}
