//! Fleet-scale productionization studies (§5 of the paper): the memory-
//! error/ECC decision, the 3,000-chip overclocking study, P90-based power
//! provisioning, firmware-bundle rollout with the NoC deadlock case, and
//! the small-vs-big chip-sizing analysis.
//!
//! # Quick tour
//!
//! ```
//! use mtia_fleet::overclock::{run_study, paper_frequencies, SiliconMargin};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let study = run_study(
//!     SiliconMargin::production(), 500, &paper_frequencies(), &mut rng);
//! assert!(study.fallout_increase() < 0.02); // negligible at 1.35 GHz
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cd;
pub mod chipsize;
pub mod firmware;
pub mod memerr;
pub mod overclock;
pub mod power;
pub mod quarantine;
pub mod rollout_serving;
pub mod topology;

pub use cd::{simulate_year, CdConfig, YearReport};
pub use chipsize::{production_gain_over_replay, provision, DeviceOption, ModelDemand};
pub use firmware::{
    simulate_rollout, simulate_rollout_traced, FirmwareBundle, Rollout, RolloutOutcome,
};
pub use memerr::{evaluate_mitigations, run_sensitivity, run_survey, Mitigation};
pub use overclock::{run_study, OverclockStudy, SiliconMargin};
pub use power::{initial_rack_budget, PowerStudy, RackConfig};
pub use quarantine::{
    run_defended_fleet, DefendedFleetReport, DeviceRepairLog, QuarantineConfig, QuarantineManager,
    RepairState,
};
pub use rollout_serving::{
    maintenance_schedule, simulate_rollout_serving, RolloutServingConfig, RolloutServingReport,
};
pub use topology::{
    DomainLevel, FleetTopology, GlobalLevel, GlobalTopology, GlobalTopologyConfig, TopologyConfig,
};
