//! The §5.1 memory-error study and the ECC decision.
//!
//! LPDDR has no inline ECC, and controller-computed ECC costs 10–15 % of
//! throughput, so MTIA 2i initially shipped with the decision deferred.
//! The paper's three-pronged evaluation — a fleet survey, an
//! error-injection campaign, and a product-impact assessment — concluded
//! ECC must be enabled. This module reproduces all three prongs and the
//! final trade-off.

use mtia_core::spec::{chips, EccMode};
use mtia_core::tco::{PlatformMetrics, ServerCost};
use mtia_model::error_inject::{
    index_injection_campaign, weight_injection_campaign, CampaignReport, InjectionTarget,
};
use mtia_model::tensor::DenseTensor;
use mtia_sim::mem::lpddr::MemoryErrorModel;
use rand::Rng;

/// Prong 1: the fleet survey.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyReport {
    /// Servers sampled.
    pub servers: u32,
    /// Fraction of servers with at least one error-prone card.
    pub affected_rate: f64,
    /// Among affected servers, fraction with exactly one bad card.
    pub single_card_fraction: f64,
}

/// Samples the survey over `servers` 24-card servers.
pub fn run_survey<R: Rng + ?Sized>(servers: u32, rng: &mut R) -> SurveyReport {
    let model = MemoryErrorModel::production();
    let mut affected = 0u32;
    let mut single = 0u32;
    for _ in 0..servers {
        match model.sample_error_cards(24, rng) {
            0 => {}
            1 => {
                affected += 1;
                single += 1;
            }
            _ => affected += 1,
        }
    }
    SurveyReport {
        servers,
        affected_rate: affected as f64 / servers as f64,
        single_card_fraction: if affected > 0 {
            single as f64 / affected as f64
        } else {
            1.0
        },
    }
}

/// Prong 2: per-region sensitivity from the injection tool.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// (region, observed failure rate per single bit flip).
    pub regions: Vec<(InjectionTarget, f64)>,
}

impl SensitivityReport {
    /// Failure rate of a region.
    pub fn rate_of(&self, target: InjectionTarget) -> f64 {
        self.regions
            .iter()
            .find(|(t, _)| *t == target)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    }
}

/// Runs the injection campaigns against representative model data.
pub fn run_sensitivity<R: Rng + ?Sized>(trials: u32, rng: &mut R) -> SensitivityReport {
    // Dense FC weights (FP32 bit flips).
    let x = DenseTensor::gaussian(16, 64, 1.0, rng);
    let w = DenseTensor::gaussian(64, 32, 0.1, rng);
    let weights: CampaignReport = weight_injection_campaign(&x, &w, trials, rng);

    // TBE indices into 10M-row tables.
    let indices: Vec<u32> = (0..512).map(|_| rng.gen_range(0..10_000_000)).collect();
    let idx_report = index_injection_campaign(&indices, 10_000_000, trials, rng);

    // Embedding rows: numerically like weights but pooled — silent
    // corruption dominates; approximate with the weight campaign on a
    // pooling-shaped matmul.
    let pool = DenseTensor::from_data(1, 16, vec![1.0; 16]);
    let rows = DenseTensor::gaussian(16, 64, 1.0, rng);
    let row_report = weight_injection_campaign(&pool, &rows, trials, rng);

    SensitivityReport {
        regions: vec![
            (InjectionTarget::DenseWeights, weights.failure_rate()),
            (InjectionTarget::TbeIndices, idx_report.failure_rate()),
            (InjectionTarget::EmbeddingRows, row_report.failure_rate()),
        ],
    }
}

/// The mitigation options §5.1 weighs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mitigation {
    /// No protection: rely on product-level anomaly detection.
    NoEcc,
    /// Region-based ECC over the most sensitive regions only.
    RegionEcc,
    /// Software hashing integrity checks.
    SoftwareHashing,
    /// Full controller-based ECC (the shipped decision).
    ControllerEcc,
}

/// Evaluation of one mitigation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationOutcome {
    /// The option.
    pub mitigation: Mitigation,
    /// Throughput multiplier vs unprotected (≤ 1).
    pub throughput_factor: f64,
    /// Residual model-visible error events per affected card per day.
    pub residual_errors_per_day: f64,
    /// Whether the option is operationally viable (§5.1's judgement).
    pub viable: bool,
}

/// Operator threshold: product teams can absorb at most this many
/// model-visible corruption events per day fleet-wide per thousand cards
/// before anomaly response overwhelms them.
pub const OPERATOR_TOLERANCE_PER_DAY_PER_1K_CARDS: f64 = 1.0;

/// Evaluates all four options against the survey and sensitivity data.
pub fn evaluate_mitigations(
    survey: SurveyReport,
    sensitivity: &SensitivityReport,
) -> Vec<MitigationOutcome> {
    let model = MemoryErrorModel::production();
    // Model-visible events per affected card per day without protection:
    // flips × the probability a flip lands somewhere sensitive. Weight +
    // index + row regions cover most of DRAM (90 % of model bytes are
    // embeddings).
    let blended_sensitivity = 0.05 * sensitivity.rate_of(InjectionTarget::DenseWeights)
        + 0.05 * sensitivity.rate_of(InjectionTarget::TbeIndices)
        + 0.90 * sensitivity.rate_of(InjectionTarget::EmbeddingRows);
    let raw_events = model.flips_per_day * blended_sensitivity;
    // Events per day per 1000 cards.
    let per_1k = raw_events * model.per_card_rate * 1000.0;

    let ecc_penalty = 1.0 - mtia_core::calib::CONTROLLER_ECC_PENALTY;
    vec![
        MitigationOutcome {
            mitigation: Mitigation::NoEcc,
            throughput_factor: 1.0,
            residual_errors_per_day: per_1k,
            viable: per_1k <= OPERATOR_TOLERANCE_PER_DAY_PER_1K_CARDS
                && survey.affected_rate < 0.05,
        },
        MitigationOutcome {
            mitigation: Mitigation::RegionEcc,
            // Protecting the hot regions costs most of the full-ECC
            // penalty (the protected regions carry most of the traffic)
            // while still leaving the bulk of DRAM exposed.
            throughput_factor: 1.0 - mtia_core::calib::CONTROLLER_ECC_PENALTY * 0.8,
            residual_errors_per_day: per_1k * 0.9,
            viable: false, // "a difficult trade-off between performance and protection"
        },
        MitigationOutcome {
            mitigation: Mitigation::SoftwareHashing,
            // Hashing every tensor read in software costs far more than
            // controller ECC ("the overhead too high").
            throughput_factor: 0.6,
            residual_errors_per_day: per_1k * 0.05,
            viable: false,
        },
        MitigationOutcome {
            mitigation: Mitigation::ControllerEcc,
            throughput_factor: ecc_penalty,
            residual_errors_per_day: 0.01,
            viable: true,
        },
    ]
}

/// The final §5.1 check: even with the ECC penalty, MTIA 2i keeps a clear
/// Perf/TCO advantage over the GPU baseline. `mtia_vs_gpu_perf` is the
/// ECC-free MTIA-server/GPU-server throughput ratio from the simulator.
pub fn ecc_keeps_tco_advantage(mtia_vs_gpu_perf: f64) -> bool {
    let ecc_factor = 1.0 - mtia_core::calib::CONTROLLER_ECC_PENALTY;
    let gpu = PlatformMetrics::new(ServerCost::gpu_server(), 1.0);
    let mtia = PlatformMetrics::new(ServerCost::mtia_server(), mtia_vs_gpu_perf * ecc_factor);
    mtia.relative_to(&gpu).perf_per_tco > 1.0
}

/// The chosen production ECC mode.
pub fn production_decision(outcomes: &[MitigationOutcome]) -> EccMode {
    let best = outcomes
        .iter()
        .filter(|o| o.viable)
        .max_by(|a, b| {
            a.throughput_factor
                .partial_cmp(&b.throughput_factor)
                .expect("finite")
        })
        .expect("at least one viable mitigation");
    match best.mitigation {
        Mitigation::NoEcc => EccMode::Disabled,
        _ => EccMode::ControllerEcc,
    }
}

/// Convenience: the spec-level bandwidth cost of the decision.
pub fn decision_bandwidth_cost() -> f64 {
    let chip = chips::mtia2i();
    let with = chip
        .effective_dram_bw(EccMode::ControllerEcc)
        .as_bytes_per_s();
    let without = chip.effective_dram_bw(EccMode::Disabled).as_bytes_per_s();
    1.0 - with / without
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survey_reproduces_24_percent() {
        let mut rng = StdRng::seed_from_u64(61);
        let survey = run_survey(1700, &mut rng);
        assert!((survey.affected_rate - 0.24).abs() < 0.04, "{survey:?}");
        assert!(survey.single_card_fraction > 0.75, "{survey:?}");
    }

    #[test]
    fn indices_are_the_most_sensitive_region() {
        let mut rng = StdRng::seed_from_u64(62);
        let s = run_sensitivity(300, &mut rng);
        let idx = s.rate_of(InjectionTarget::TbeIndices);
        let w = s.rate_of(InjectionTarget::DenseWeights);
        assert!(idx > 0.5, "index flips almost always corrupt: {idx}");
        assert!(
            w > 0.1,
            "weight flips corrupt with meaningful probability: {w}"
        );
        assert!(idx > w);
    }

    #[test]
    fn controller_ecc_is_the_only_viable_choice() {
        let mut rng = StdRng::seed_from_u64(63);
        let survey = run_survey(1700, &mut rng);
        let sensitivity = run_sensitivity(300, &mut rng);
        let outcomes = evaluate_mitigations(survey, &sensitivity);
        let viable: Vec<_> = outcomes.iter().filter(|o| o.viable).collect();
        assert_eq!(viable.len(), 1);
        assert_eq!(viable[0].mitigation, Mitigation::ControllerEcc);
        assert_eq!(production_decision(&outcomes), EccMode::ControllerEcc);
    }

    #[test]
    fn no_ecc_overwhelms_operators() {
        let mut rng = StdRng::seed_from_u64(64);
        let survey = run_survey(1700, &mut rng);
        let sensitivity = run_sensitivity(300, &mut rng);
        let outcomes = evaluate_mitigations(survey, &sensitivity);
        let no_ecc = outcomes
            .iter()
            .find(|o| o.mitigation == Mitigation::NoEcc)
            .unwrap();
        assert!(!no_ecc.viable);
        assert!(no_ecc.residual_errors_per_day > OPERATOR_TOLERANCE_PER_DAY_PER_1K_CARDS);
    }

    #[test]
    fn ecc_penalty_preserves_tco_win() {
        // §5.1: "even with this penalty, MTIA 2i still delivers significant
        // Perf/TCO gains over GPUs". The simulator's per-model server perf
        // ratios run ≈ 0.5–1.25.
        for ratio in [0.5, 0.7, 1.1] {
            assert!(ecc_keeps_tco_advantage(ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn bandwidth_cost_matches_spec() {
        let c = decision_bandwidth_cost();
        assert!((0.10..=0.15).contains(&c), "cost {c}");
    }
}
