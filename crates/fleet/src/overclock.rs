//! The §5.2 overclocking study.
//!
//! "To assess the impact of overclocking, we conducted a large-scale study
//! on the correlation between clock frequency, performance, and
//! reliability, involving approximately 3,000 chips. For each chip, we
//! conducted 10 tests ... We compared the test results at three different
//! frequencies (1.1 GHz, 1.25 GHz, and 1.35 GHz) and observed negligible
//! decreases in the test pass rate." The outcome: MTIA 2i ships at
//! 1.35 GHz, 23 % above its design point, for 5–20 % end-to-end gains.

use mtia_core::units::Hertz;
use rand::Rng;

/// The ten qualification tests of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualTest {
    /// Sustained-throughput performance test.
    Performance,
    /// Peak-power stress.
    Power,
    /// Memory (SRAM/LPDDR) pattern test.
    Memory,
    /// Production-kernel correctness.
    Kernels,
    /// Module manufacturing test.
    Manufacturing,
    /// Functional PCIe test.
    Pcie,
    /// Thermal cycling.
    Thermal,
    /// Voltage-droop resilience.
    VoltageDroop,
    /// NoC pattern test.
    Noc,
    /// Long-duration soak.
    Soak,
}

impl QualTest {
    /// All ten tests.
    pub const ALL: [QualTest; 10] = [
        QualTest::Performance,
        QualTest::Power,
        QualTest::Memory,
        QualTest::Kernels,
        QualTest::Manufacturing,
        QualTest::Pcie,
        QualTest::Thermal,
        QualTest::VoltageDroop,
        QualTest::Noc,
        QualTest::Soak,
    ];

    /// Frequency guard band the test effectively adds (GHz): stress tests
    /// probe closer to the silicon limit than functional tests.
    fn guard_band_ghz(self) -> f64 {
        match self {
            QualTest::Performance | QualTest::Soak => 0.06,
            QualTest::Power | QualTest::Thermal | QualTest::VoltageDroop => 0.08,
            QualTest::Memory | QualTest::Kernels | QualTest::Noc => 0.04,
            QualTest::Manufacturing | QualTest::Pcie => 0.02,
        }
    }
}

/// One chip's silicon capability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSample {
    /// Maximum stable frequency of this die (process variation).
    pub fmax: Hertz,
}

/// Process-variation model for the sampled population.
///
/// TSMC-5nm-class dies targeted at a 1.1 GHz design point carry a large
/// frequency margin; the study's finding (negligible fallout at 1.35 GHz)
/// pins the population mean well above 1.5 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiliconMargin {
    /// Mean fmax in GHz.
    pub mean_ghz: f64,
    /// Standard deviation in GHz.
    pub std_ghz: f64,
}

impl SiliconMargin {
    /// The calibrated production population.
    pub fn production() -> Self {
        SiliconMargin {
            mean_ghz: 1.72,
            std_ghz: 0.09,
        }
    }

    /// Samples one chip.
    pub fn sample_chip<R: Rng + ?Sized>(&self, rng: &mut R) -> ChipSample {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let fmax = (self.mean_ghz + z * self.std_ghz).max(0.8);
        ChipSample {
            fmax: Hertz::from_ghz(fmax),
        }
    }
}

/// Whether `chip` passes `test` at `frequency` (a small per-run noise term
/// models test flakiness).
pub fn passes<R: Rng + ?Sized>(
    chip: ChipSample,
    test: QualTest,
    frequency: Hertz,
    rng: &mut R,
) -> bool {
    let noise: f64 = rng.gen_range(-0.01..0.01);
    chip.fmax.as_ghz() - test.guard_band_ghz() + noise >= frequency.as_ghz()
}

/// Pass rates of one frequency across the population.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResult {
    /// The tested frequency.
    pub frequency: Hertz,
    /// Pass rate over all chip × test runs.
    pub pass_rate: f64,
    /// Fraction of chips passing all ten tests.
    pub chips_fully_passing: f64,
}

/// The complete study result.
#[derive(Debug, Clone, PartialEq)]
pub struct OverclockStudy {
    /// Chips sampled.
    pub chips: u32,
    /// Per-frequency results, in ascending frequency order.
    pub results: Vec<FrequencyResult>,
}

impl OverclockStudy {
    /// Drop in full-pass rate from the lowest to the highest frequency.
    pub fn fallout_increase(&self) -> f64 {
        let first = self.results.first().expect("non-empty study");
        let last = self.results.last().expect("non-empty study");
        first.chips_fully_passing - last.chips_fully_passing
    }
}

/// Runs the study: `chips` dies × 10 tests × the given frequencies.
pub fn run_study<R: Rng + ?Sized>(
    margin: SiliconMargin,
    chips: u32,
    frequencies: &[Hertz],
    rng: &mut R,
) -> OverclockStudy {
    let population: Vec<ChipSample> = (0..chips).map(|_| margin.sample_chip(rng)).collect();
    let mut results = Vec::with_capacity(frequencies.len());
    for &frequency in frequencies {
        let mut passes_count = 0u64;
        let mut full_pass = 0u32;
        for &chip in &population {
            let mut all = true;
            for test in QualTest::ALL {
                if passes(chip, test, frequency, rng) {
                    passes_count += 1;
                } else {
                    all = false;
                }
            }
            if all {
                full_pass += 1;
            }
        }
        results.push(FrequencyResult {
            frequency,
            pass_rate: passes_count as f64 / (chips as u64 * 10) as f64,
            chips_fully_passing: full_pass as f64 / chips as f64,
        });
    }
    OverclockStudy { chips, results }
}

/// The paper's frequency ladder.
pub fn paper_frequencies() -> [Hertz; 3] {
    [
        Hertz::from_ghz(1.1),
        Hertz::from_ghz(1.25),
        Hertz::from_ghz(1.35),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn study() -> OverclockStudy {
        let mut rng = StdRng::seed_from_u64(52);
        run_study(
            SiliconMargin::production(),
            3000,
            &paper_frequencies(),
            &mut rng,
        )
    }

    #[test]
    fn negligible_fallout_up_to_1_35() {
        // §5.2: "negligible decreases in the test pass rate as the
        // frequency increased from 1.1GHz to 1.35GHz".
        let s = study();
        assert_eq!(s.chips, 3000);
        for r in &s.results {
            assert!(
                r.pass_rate > 0.995,
                "{}: pass rate {}",
                r.frequency,
                r.pass_rate
            );
        }
        assert!(
            s.fallout_increase() < 0.01,
            "fallout {}",
            s.fallout_increase()
        );
    }

    #[test]
    fn pass_rate_monotonically_decreases_with_frequency() {
        let s = study();
        for w in s.results.windows(2) {
            assert!(w[1].pass_rate <= w[0].pass_rate + 1e-6);
        }
    }

    #[test]
    fn much_higher_frequencies_do_fail() {
        let mut rng = StdRng::seed_from_u64(53);
        let s = run_study(
            SiliconMargin::production(),
            1000,
            &[
                Hertz::from_ghz(1.35),
                Hertz::from_ghz(1.7),
                Hertz::from_ghz(1.9),
            ],
            &mut rng,
        );
        let at_19 = s.results.last().unwrap();
        assert!(at_19.chips_fully_passing < 0.1, "1.9 GHz must fall out");
    }

    #[test]
    fn stress_tests_are_stricter_than_functional() {
        let chip = ChipSample {
            fmax: Hertz::from_ghz(1.40),
        };
        let mut rng = StdRng::seed_from_u64(54);
        // At 1.35, the 0.08 guard-band power test fails this die (1.40 −
        // 0.08 < 1.35); the 0.02 guard-band PCIe test passes.
        let mut power_fails = 0;
        let mut pcie_passes = 0;
        for _ in 0..100 {
            if !passes(chip, QualTest::Power, Hertz::from_ghz(1.35), &mut rng) {
                power_fails += 1;
            }
            if passes(chip, QualTest::Pcie, Hertz::from_ghz(1.35), &mut rng) {
                pcie_passes += 1;
            }
        }
        assert!(power_fails > 90);
        assert!(pcie_passes > 90);
    }

    #[test]
    fn deployed_frequency_is_23_percent_above_design() {
        let f = paper_frequencies();
        let ratio = f[2].ratio(f[0]);
        assert!((ratio - 1.227).abs() < 0.01);
    }
}
