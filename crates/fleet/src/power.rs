//! The §5.3 provisioned-power study.
//!
//! "After six months in production, we reduced the rack power budget by
//! nearly 40 % compared to initial estimates." The method: (1) subject all
//! 24 accelerators to the P90 of per-model peak throughput for the two
//! largest models and measure; (2) take the P90 power of fully utilized
//! production servers; provision the larger of the two.

use mtia_core::power::PowerModel;
use mtia_core::units::Watts;
use rand::Rng;

/// Rack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackConfig {
    /// Servers per rack.
    pub servers: u32,
    /// Accelerators per server.
    pub accelerators_per_server: u32,
    /// Host power per server.
    pub host_power: Watts,
}

impl RackConfig {
    /// The production MTIA rack: 4 Grand Teton servers of 24 chips.
    pub fn production() -> Self {
        RackConfig {
            servers: 4,
            accelerators_per_server: 24,
            host_power: Watts::new(mtia_core::calib::MTIA_SERVER_HOST_POWER_W),
        }
    }
}

/// The initial (pre-production) rack budget: every accelerator at TDP plus
/// a transient/inrush margin, hosts at a conservative estimate — the
/// standard posture for immature hardware whose models are not yet
/// optimized (§5.3).
pub fn initial_rack_budget(rack: &RackConfig, power: &PowerModel) -> Watts {
    const STRESS_MARGIN: f64 = 1.25;
    const HOST_MARGIN: f64 = 1.2;
    let per_server = power
        .at_utilization(1.0)
        .scale(rack.accelerators_per_server as f64 * STRESS_MARGIN)
        + rack.host_power.scale(HOST_MARGIN);
    per_server.scale(rack.servers as f64)
}

/// Samples a per-accelerator *utilization* trace for production serving:
/// a diurnal envelope (mean ≈ 0.55) plus per-chip noise, clipped to [0, 1].
pub fn sample_utilization<R: Rng + ?Sized>(hour_of_day: f64, rng: &mut R) -> f64 {
    let diurnal = 0.55 + 0.25 * (2.0 * std::f64::consts::PI * (hour_of_day - 15.0) / 24.0).cos();
    let noise: f64 = rng.gen_range(-0.12..0.12);
    (diurnal + noise).clamp(0.02, 1.0)
}

/// P90 of a sample set.
///
/// # Panics
///
/// Panics on an empty sample set.
pub fn p90(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let idx = ((samples.len() as f64) * 0.9).ceil() as usize - 1;
    samples[idx.min(samples.len() - 1)]
}

/// The measured inputs to the §5.3 methodology.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerStudy {
    /// Experiment: server power with all 24 accelerators pinned at the P90
    /// of the two largest models' peak per-chip throughput.
    pub experiment_server_power: Watts,
    /// Analysis: P90 of fully-utilized production server power.
    pub analysis_server_power: Watts,
}

impl PowerStudy {
    /// Runs the study.
    ///
    /// `peak_compute_utilization` is the DPE utilization the two largest
    /// models reach at *peak* throughput (memory-bound production models
    /// leave the compute engines well below 100 % — the key reason the
    /// initial all-TDP budget was so conservative).
    pub fn run<R: Rng + ?Sized>(
        rack: &RackConfig,
        power: &PowerModel,
        peak_compute_utilization: f64,
        rng: &mut R,
    ) -> PowerStudy {
        // Experiment: every chip at the P90 of peak model throughput.
        let mut peak_samples: Vec<f64> = (0..1000)
            .map(|_| {
                let jitter: f64 = rng.gen_range(0.85..1.15);
                (peak_compute_utilization * jitter).min(1.0)
            })
            .collect();
        let p90_util = p90(&mut peak_samples);
        let experiment_server_power = power
            .at_utilization(p90_util)
            .scale(rack.accelerators_per_server as f64)
            + rack.host_power;

        // Analysis: P90 across simulated "fully utilized" production
        // servers — chips follow the diurnal envelope near its peak hours.
        let mut server_samples = Vec::with_capacity(2000);
        for _ in 0..2000 {
            let hour = rng.gen_range(12.0..18.0); // peak window
            let total: f64 = (0..rack.accelerators_per_server)
                .map(|_| {
                    // Normalize so the diurnal envelope's peak (≈ 0.80)
                    // maps to the models' peak compute utilization.
                    let u = sample_utilization(hour, rng) * peak_compute_utilization / 0.80;
                    power.at_utilization(u.min(1.0)).as_f64()
                })
                .sum();
            server_samples.push(total + rack.host_power.as_f64());
        }
        let analysis_server_power = Watts::new(p90(&mut server_samples));

        PowerStudy {
            experiment_server_power,
            analysis_server_power,
        }
    }

    /// The new rack budget: the larger of the two measurements, per server,
    /// times servers per rack.
    pub fn new_rack_budget(&self, rack: &RackConfig) -> Watts {
        self.experiment_server_power
            .max(self.analysis_server_power)
            .scale(rack.servers as f64)
    }
}

/// Fraction of simulated production intervals in which a rack at
/// `budget` would have been capped (power draw above budget).
pub fn capping_probability<R: Rng + ?Sized>(
    rack: &RackConfig,
    power: &PowerModel,
    peak_compute_utilization: f64,
    budget: Watts,
    intervals: u32,
    rng: &mut R,
) -> f64 {
    let mut capped = 0u32;
    for _ in 0..intervals {
        let hour = rng.gen_range(0.0..24.0);
        let mut total = 0.0;
        for _ in 0..rack.servers {
            let server: f64 = (0..rack.accelerators_per_server)
                .map(|_| {
                    let u = sample_utilization(hour, rng) * peak_compute_utilization / 0.80;
                    power.at_utilization(u.min(1.0)).as_f64()
                })
                .sum();
            total += server + rack.host_power.as_f64();
        }
        if total > budget.as_f64() {
            capped += 1;
        }
    }
    capped as f64 / intervals as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Production models at peak throughput keep the DPE around 45 %
    /// busy (DRAM-bound ranking models).
    const PEAK_UTIL: f64 = 0.45;

    #[test]
    fn budget_reduction_is_about_40_percent() {
        let rack = RackConfig::production();
        let power = PowerModel::mtia2i();
        let mut rng = StdRng::seed_from_u64(53);
        let study = PowerStudy::run(&rack, &power, PEAK_UTIL, &mut rng);
        let initial = initial_rack_budget(&rack, &power);
        let new = study.new_rack_budget(&rack);
        let reduction = 1.0 - new.as_f64() / initial.as_f64();
        assert!(
            (0.33..=0.47).contains(&reduction),
            "reduction {reduction:.3} (initial {initial}, new {new})"
        );
    }

    #[test]
    fn new_budget_takes_the_larger_measurement() {
        let study = PowerStudy {
            experiment_server_power: Watts::new(2000.0),
            analysis_server_power: Watts::new(2400.0),
        };
        let rack = RackConfig::production();
        assert_eq!(study.new_rack_budget(&rack).as_f64(), 2400.0 * 4.0);
    }

    #[test]
    fn reduced_budget_is_robust_in_production() {
        // §5.3: "Although this approach led to a drastic reduction ... it
        // has proven robust in production."
        let rack = RackConfig::production();
        let power = PowerModel::mtia2i();
        let mut rng = StdRng::seed_from_u64(54);
        let study = PowerStudy::run(&rack, &power, PEAK_UTIL, &mut rng);
        let budget = study.new_rack_budget(&rack);
        let p_cap = capping_probability(&rack, &power, PEAK_UTIL, budget, 5000, &mut rng);
        assert!(p_cap < 0.005, "capping probability {p_cap}");
    }

    #[test]
    fn p90_helper() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p90(&mut v), 90.0);
        let mut one = vec![7.0];
        assert_eq!(p90(&mut one), 7.0);
    }

    #[test]
    fn utilization_envelope_is_diurnal() {
        let mut rng = StdRng::seed_from_u64(55);
        let afternoon: f64 = (0..500)
            .map(|_| sample_utilization(15.0, &mut rng))
            .sum::<f64>()
            / 500.0;
        let night: f64 = (0..500)
            .map(|_| sample_utilization(3.0, &mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(
            afternoon > night + 0.3,
            "afternoon {afternoon} night {night}"
        );
    }
}
