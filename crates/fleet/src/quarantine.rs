//! Fleet quarantine/repair workflow for SDC-suspect devices (§5.1).
//!
//! `mtia-serving::sdc` raises per-device suspicion from inline guards,
//! canary fingerprints, and shadow votes; when a device crosses the
//! quarantine threshold the serving loop hands it here. The workflow is
//! a small, strictly-ordered repair state machine layered *on top of*
//! the PR-1 health machine (which handles the drain):
//!
//! ```text
//!   InService → Quarantined → MemTest → InService   (repaired, probation)
//!                                   └──→ Retired    (fault budget spent)
//! ```
//!
//! The **only** paths out of `Quarantined` run through `MemTest` — a
//! property test pins this. The targeted memtest scrubs the device's
//! checksummed tables and pattern-tests its staging/scratch words,
//! scanning regions in descending §5.1 sensitivity order (reusing
//! [`crate::memerr::run_sensitivity`]'s measured failure rates), then
//! reloads corrupted state from the host's golden copy. Devices whose
//! lifetime fault count exhausts the budget are retired instead of
//! returned.

use std::collections::BTreeMap;

use mtia_core::seed::derive;
use mtia_core::SimTime;
use mtia_model::error_inject::InjectionTarget;
use mtia_serving::sdc::{
    run_sdc_sim, DetectionPolicy, DeviceImage, QuarantineDecision, QuarantineHandler,
    QuarantineRequest, SdcReport, SdcSimConfig,
};
use mtia_sim::faults::{FaultPlan, FaultPlanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::memerr::{run_sensitivity, SensitivityReport};

/// The repair lifecycle a suspect device walks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepairState {
    /// Serving traffic (possibly on health-machine probation).
    InService,
    /// Pulled from dispatch; draining through the health machine.
    Quarantined,
    /// Running the targeted memtest + golden reload.
    MemTest,
    /// Permanently removed from the fleet.
    Retired,
}

impl RepairState {
    /// The legal transition relation. `Quarantined` has exactly one exit
    /// (`MemTest`), and `MemTest` decides between return and retirement;
    /// there is no other way out and `Retired` is absorbing.
    pub fn legal(from: RepairState, to: RepairState) -> bool {
        use RepairState::*;
        matches!(
            (from, to),
            (InService, Quarantined)
                | (Quarantined, MemTest)
                | (MemTest, InService)
                | (MemTest, Retired)
        )
    }
}

/// Timing and budget knobs for the quarantine workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// Drain time before the memtest can start (in-flight work and
    /// buffers flushing through the health machine).
    pub drain_time: SimTime,
    /// Targeted memtest duration (scrub + pattern test).
    pub memtest_time: SimTime,
    /// Golden-image reload time when the memtest found corruption.
    pub reload_time: SimTime,
    /// Lifetime memtest faults at or above which a device is retired.
    pub retire_after_faults: usize,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            drain_time: SimTime::from_millis(5),
            memtest_time: SimTime::from_millis(10),
            reload_time: SimTime::from_millis(5),
            retire_after_faults: 12,
        }
    }
}

/// One device's repair history.
#[derive(Debug, Clone)]
pub struct DeviceRepairLog {
    /// Current repair state.
    pub state: RepairState,
    /// `(time, from, to)` log of every repair transition.
    pub transitions: Vec<(SimTime, RepairState, RepairState)>,
    /// Total faults found across all memtests.
    pub lifetime_faults: usize,
    /// Quarantine entries.
    pub quarantines: u32,
}

impl DeviceRepairLog {
    fn new() -> Self {
        DeviceRepairLog {
            state: RepairState::InService,
            transitions: Vec::new(),
            lifetime_faults: 0,
            quarantines: 0,
        }
    }

    fn transition(&mut self, to: RepairState, at: SimTime) {
        assert!(
            RepairState::legal(self.state, to),
            "illegal repair transition {:?} → {to:?}",
            self.state
        );
        self.transitions.push((at, self.state, to));
        self.state = to;
    }
}

/// The fleet-side implementation of the serving loop's
/// [`QuarantineHandler`]: drain → targeted memtest (in sensitivity
/// order) → golden reload → release on probation, or retire.
#[derive(Debug, Clone)]
pub struct QuarantineManager {
    config: QuarantineConfig,
    /// §5.1 per-region failure rates, used to order the memtest scan.
    sensitivity: SensitivityReport,
    logs: BTreeMap<u32, DeviceRepairLog>,
}

impl QuarantineManager {
    /// A manager with the given knobs. The memtest scan order comes from
    /// a seeded [`run_sensitivity`] campaign (most failure-prone §5.1
    /// region first).
    pub fn new(config: QuarantineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive(seed, "quarantine/sensitivity"));
        QuarantineManager {
            config,
            sensitivity: run_sensitivity(64, &mut rng),
            logs: BTreeMap::new(),
        }
    }

    /// Memtest scan order: §5.1 regions sorted by measured failure rate,
    /// descending — the regions most likely to corrupt outputs are
    /// scrubbed first.
    pub fn scan_order(&self) -> Vec<InjectionTarget> {
        let mut regions = [
            InjectionTarget::EmbeddingRows,
            InjectionTarget::TbeIndices,
            InjectionTarget::DenseWeights,
            InjectionTarget::Activations,
        ];
        regions.sort_by(|a, b| {
            self.sensitivity
                .rate_of(*b)
                .total_cmp(&self.sensitivity.rate_of(*a))
        });
        regions.to_vec()
    }

    /// Per-device repair logs.
    pub fn logs(&self) -> &BTreeMap<u32, DeviceRepairLog> {
        &self.logs
    }

    /// Devices retired so far.
    pub fn retired(&self) -> usize {
        self.logs
            .values()
            .filter(|l| l.state == RepairState::Retired)
            .count()
    }

    /// Total faults found by all memtests.
    pub fn total_faults_found(&self) -> usize {
        self.logs.values().map(|l| l.lifetime_faults).sum()
    }

    /// Exports the repair state machine's history into a telemetry
    /// capture: one `repair.transition` instant event per logged
    /// `(time, from, to)` edge (ordered by device id, then by time —
    /// the order the logs store them in, so the export is
    /// deterministic), plus summary counters.
    pub fn export_telemetry(&self, tel: &mut mtia_core::telemetry::Telemetry) {
        use mtia_core::telemetry::Json;
        if !tel.is_enabled() {
            return;
        }
        for (&device, log) in &self.logs {
            for &(at, from, to) in &log.transitions {
                tel.instant(
                    "repair.transition",
                    "fleet",
                    at,
                    vec![
                        ("device".into(), Json::UInt(device as u64)),
                        ("from".into(), Json::Str(format!("{from:?}"))),
                        ("to".into(), Json::Str(format!("{to:?}"))),
                    ],
                );
            }
            tel.counter_add("fleet.quarantine.transitions", log.transitions.len() as u64);
            tel.counter_add("fleet.quarantine.entries", log.quarantines as u64);
        }
        tel.counter_add("fleet.quarantine.retired", self.retired() as u64);
        tel.counter_add(
            "fleet.quarantine.faults_found",
            self.total_faults_found() as u64,
        );
    }
}

impl QuarantineHandler for QuarantineManager {
    fn handle(&mut self, req: &QuarantineRequest, image: &mut DeviceImage) -> QuarantineDecision {
        let log = self
            .logs
            .entry(req.device)
            .or_insert_with(DeviceRepairLog::new);
        log.quarantines += 1;
        log.transition(RepairState::Quarantined, req.at);

        // Drain completes, then the targeted memtest runs: CRC scrub of
        // the checksummed tables plus the staging/scratch pattern test,
        // walking regions in sensitivity order. The golden reload clears
        // whatever it found.
        let memtest_start = req.at + self.config.drain_time;
        log.transition(RepairState::MemTest, memtest_start);
        let findings = image.memtest();
        let repaired = image.repair();
        debug_assert_eq!(
            findings, repaired,
            "repair must fix exactly what memtest found"
        );
        log.lifetime_faults += findings.total();

        let mut done = memtest_start + self.config.memtest_time;
        if findings.total() > 0 {
            done += self.config.reload_time;
        }
        if log.lifetime_faults >= self.config.retire_after_faults {
            log.transition(RepairState::Retired, done);
            QuarantineDecision::Retire
        } else {
            log.transition(RepairState::InService, done);
            QuarantineDecision::Repair { back_at: done }
        }
    }
}

/// Everything one defended-fleet run produced: the serving-side report
/// plus the fleet-side repair logs.
#[derive(Debug, Clone)]
pub struct DefendedFleetReport {
    /// Serving-side outcomes (recall, FP rate, latency, overhead, …).
    pub sdc: SdcReport,
    /// Per-device repair histories.
    pub device_logs: BTreeMap<u32, DeviceRepairLog>,
    /// The memtest scan order the manager used.
    pub scan_order: Vec<InjectionTarget>,
}

/// Runs the end-to-end defended fleet: an `sdc_study` bit-flip trace
/// against `policy`, with quarantined devices repaired by the full
/// fleet workflow. Deterministic in `(policy, seed)`.
pub fn run_defended_fleet(policy: DetectionPolicy, seed: u64) -> DefendedFleetReport {
    let cfg = SdcSimConfig::default_for(policy, seed);
    let horizon = cfg.inter_arrival * (cfg.requests as u64 + 1);
    let plan = FaultPlan::generate(
        &FaultPlanConfig::sdc_study(),
        cfg.devices,
        horizon,
        derive(seed, "sdc/plan"),
    );
    let mut manager = QuarantineManager::new(QuarantineConfig::default(), seed);
    let sdc = run_sdc_sim(&cfg, &plan, &mut manager);
    DefendedFleetReport {
        sdc,
        scan_order: manager.scan_order(),
        device_logs: manager.logs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtia_core::seed::DEFAULT_SEED;
    use mtia_serving::sdc::ImageSpec;

    #[test]
    fn only_memtest_leads_out_of_quarantine() {
        use RepairState::*;
        for to in [InService, Quarantined, Retired] {
            assert!(!RepairState::legal(Quarantined, to), "Quarantined → {to:?}");
        }
        assert!(RepairState::legal(Quarantined, MemTest));
        assert!(RepairState::legal(MemTest, InService));
        assert!(RepairState::legal(MemTest, Retired));
        // Retired is absorbing; InService only enters quarantine.
        for to in [InService, Quarantined, MemTest] {
            assert!(!RepairState::legal(Retired, to));
        }
        assert!(!RepairState::legal(InService, MemTest));
        assert!(!RepairState::legal(InService, Retired));
    }

    #[test]
    fn telemetry_export_mirrors_the_repair_log() {
        let mut manager = QuarantineManager::new(QuarantineConfig::default(), DEFAULT_SEED);
        let mut image = ImageSpec::small(DEFAULT_SEED).build();
        image.apply_flip(InjectionTarget::EmbeddingRows, 42, 19);
        let req = QuarantineRequest {
            device: 3,
            at: SimTime::from_millis(50),
            suspicion: 1.0,
        };
        let _ = manager.handle(&req, &mut image);
        let mut tel = mtia_core::telemetry::Telemetry::new_enabled();
        manager.export_telemetry(&mut tel);
        let expected: usize = manager.logs().values().map(|l| l.transitions.len()).sum();
        let transitions = tel
            .tracer
            .events()
            .iter()
            .filter(|e| e.name == "repair.transition")
            .count();
        assert_eq!(transitions, expected);
        assert!(transitions >= 3, "drain → memtest → release");
        assert_eq!(
            tel.metrics.counter("fleet.quarantine.transitions"),
            expected as u64
        );
        assert_eq!(tel.metrics.counter("fleet.quarantine.faults_found"), 1);
        // A disabled handle stays empty.
        let mut off = mtia_core::telemetry::Telemetry::disabled();
        manager.export_telemetry(&mut off);
        assert!(off.tracer.is_empty());
    }

    #[test]
    fn manager_repairs_and_logs_a_corrupted_device() {
        let mut manager = QuarantineManager::new(QuarantineConfig::default(), DEFAULT_SEED);
        let mut image = ImageSpec::small(DEFAULT_SEED).build();
        image.apply_flip(InjectionTarget::EmbeddingRows, 42, 19);
        image.apply_flip(InjectionTarget::TbeIndices, 1, 3);
        let req = QuarantineRequest {
            device: 7,
            at: SimTime::from_millis(100),
            suspicion: 1.2,
        };
        let decision = manager.handle(&req, &mut image);
        assert!(matches!(decision, QuarantineDecision::Repair { .. }));
        assert!(image.is_clean(), "handler must leave the image clean");
        let log = &manager.logs()[&7];
        assert_eq!(log.state, RepairState::InService);
        assert_eq!(log.lifetime_faults, 2);
        let states: Vec<_> = log.transitions.iter().map(|t| t.2).collect();
        assert_eq!(
            states,
            vec![
                RepairState::Quarantined,
                RepairState::MemTest,
                RepairState::InService
            ]
        );
        // Repair timing includes drain + memtest + reload.
        if let QuarantineDecision::Repair { back_at } = decision {
            let c = QuarantineConfig::default();
            assert_eq!(
                back_at,
                req.at + c.drain_time + c.memtest_time + c.reload_time
            );
        }
    }

    #[test]
    fn fault_budget_exhaustion_retires() {
        let config = QuarantineConfig {
            retire_after_faults: 2,
            ..QuarantineConfig::default()
        };
        let mut manager = QuarantineManager::new(config, DEFAULT_SEED);
        let mut image = ImageSpec::small(DEFAULT_SEED).build();
        image.apply_flip(InjectionTarget::DenseWeights, 3, 11);
        let req = |at| QuarantineRequest {
            device: 0,
            at: SimTime::from_millis(at),
            suspicion: 1.0,
        };
        assert!(matches!(
            manager.handle(&req(10), &mut image),
            QuarantineDecision::Repair { .. }
        ));
        image.apply_flip(InjectionTarget::Activations, 0, 5);
        assert_eq!(
            manager.handle(&req(50), &mut image),
            QuarantineDecision::Retire
        );
        assert_eq!(manager.logs()[&0].state, RepairState::Retired);
        assert_eq!(manager.retired(), 1);
        // Every logged edge is legal.
        for log in manager.logs().values() {
            for &(_, from, to) in &log.transitions {
                assert!(RepairState::legal(from, to), "{from:?} → {to:?}");
            }
        }
    }

    #[test]
    fn scan_order_covers_all_regions_most_sensitive_first() {
        let manager = QuarantineManager::new(QuarantineConfig::default(), DEFAULT_SEED);
        let order = manager.scan_order();
        assert_eq!(order.len(), 4);
        for r in [
            InjectionTarget::EmbeddingRows,
            InjectionTarget::TbeIndices,
            InjectionTarget::DenseWeights,
            InjectionTarget::Activations,
        ] {
            assert!(order.contains(&r));
        }
        let rates: Vec<f64> = order
            .iter()
            .map(|r| manager.sensitivity.rate_of(*r))
            .collect();
        assert!(
            rates.windows(2).all(|w| w[0] >= w[1]),
            "descending {rates:?}"
        );
    }

    #[test]
    fn defended_fleet_end_to_end_contains_corruption() {
        let report = run_defended_fleet(DetectionPolicy::full(16), DEFAULT_SEED);
        assert_eq!(report.sdc.served_corrupted, 0);
        assert!(report.sdc.recall() >= 0.9);
        assert!(report.sdc.quarantines > 0);
        assert!(!report.device_logs.is_empty());
        assert!(report.sdc.repairs > 0);
        // Fleet- and serving-side accounting agree on quarantine count.
        let fleet_quarantines: u32 = report.device_logs.values().map(|l| l.quarantines).sum();
        assert_eq!(fleet_quarantines, report.sdc.quarantines);
        // Every device history walks only legal edges.
        for log in report.device_logs.values() {
            for &(_, from, to) in &log.transitions {
                assert!(RepairState::legal(from, to));
            }
        }
    }

    #[test]
    fn defended_fleet_is_deterministic() {
        let a = run_defended_fleet(DetectionPolicy::full(16), DEFAULT_SEED);
        let b = run_defended_fleet(DetectionPolicy::full(16), DEFAULT_SEED);
        assert_eq!(a.sdc.timeline, b.sdc.timeline);
        assert_eq!(a.sdc.fault_fingerprint, b.sdc.fault_fingerprint);
        assert_eq!(a.scan_order, b.scan_order);
        assert_eq!(
            a.device_logs.keys().collect::<Vec<_>>(),
            b.device_logs.keys().collect::<Vec<_>>()
        );
    }
}
