//! Firmware rollouts driven through the serving health machinery (§5.5).
//!
//! [`firmware`](crate::firmware) models a rollout as fleet fractions and
//! soak times; this module pushes one through a *live serving pool*: each
//! staged update becomes a [`MaintenanceWindow`] that the resilient
//! policy honors by draining the device
//! (`Healthy → Draining → Offline → Recovering`) while the naive
//! baseline just yanks it, killing in-flight work. Meanwhile a seeded
//! [`FaultPlan`] injects the §5.5 hazard the rollout exists to fix:
//! while a device still runs the deadlock-prone bundle it can drop off
//! the PCIe bus under sustained load, and once its update to a mitigated
//! bundle lands, those events are filtered out of its future — the
//! mitigation is visible *in the trace itself*.
//!
//! The result is the paper's ops story in one report: availability and
//! tail latency for resilient vs naive scheduling under byte-identical
//! fault traces and the same staged rollout.

use std::fmt;

use mtia_core::SimTime;
use mtia_serving::resilience::sim::{compare_policies, MaintenanceWindow, ResilienceConfig};
use mtia_serving::resilience::PolicyComparison;
use mtia_serving::scheduler::RemoteMergeConfig;
use mtia_sim::faults::{FaultKind, FaultPlan, FaultPlanConfig};
use mtia_sim::noc::deadlock::deadlock_possible;

use crate::firmware::{FirmwareBundle, Rollout};

/// Shape of the serving pool a rollout passes through.
#[derive(Debug, Clone)]
pub struct RolloutServingConfig {
    /// The §6 remote/merge workload (also fixes the device count).
    pub workload: RemoteMergeConfig,
    /// Poisson request rate (per second).
    pub rate: f64,
    /// How long one device's firmware update holds it offline.
    pub update_hold: SimTime,
    /// Simulated horizon; the rollout's soak schedule is compressed onto
    /// the first 70 % of it so post-rollout behavior is observable.
    pub horizon: SimTime,
    /// Measurement warmup.
    pub warmup: SimTime,
    /// The single seed everything (faults, arrivals, jitter) derives
    /// from — see `mtia_core::seed`.
    pub seed: u64,
}

/// A rollout-through-serving outcome.
#[derive(Debug, Clone)]
pub struct RolloutServingReport {
    /// The per-device update schedule the rollout compiled to.
    pub windows: Vec<MaintenanceWindow>,
    /// Naive vs resilient serving under identical traces.
    pub comparison: PolicyComparison,
    /// §5.5 events erased because the mitigated bundle had already
    /// landed on the target device.
    pub hazards_removed_by_mitigation: usize,
}

impl fmt::Display for RolloutServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rollout compiled to {} update window(s); {} §5.5 hazard(s) removed by mitigation",
            self.windows.len(),
            self.hazards_removed_by_mitigation
        )?;
        write!(f, "{}", self.comparison)
    }
}

/// Compiles a staged rollout into per-device maintenance windows on a
/// pool of `devices`, compressed onto `[0, span]`.
///
/// Stage boundaries follow the rollout's cumulative fleet fractions;
/// within a stage, devices update one after another (restart-safety
/// policies limit simultaneous restarts), starting at the stage's
/// scaled soak offset.
pub fn maintenance_schedule(
    rollout: &Rollout,
    devices: u32,
    update_hold: SimTime,
    span: SimTime,
) -> Vec<MaintenanceWindow> {
    let total = rollout.duration();
    let mut windows = Vec::new();
    let mut covered = 0u32;
    let mut elapsed = SimTime::ZERO;
    for stage in &rollout.stages {
        let start = if total > SimTime::ZERO {
            span.scale(elapsed.ratio(total))
        } else {
            SimTime::ZERO
        };
        let target = ((devices as f64) * stage.fleet_fraction).round() as u32;
        for (i, device) in (covered..target.min(devices)).enumerate() {
            windows.push(MaintenanceWindow {
                device,
                start: start + update_hold * i as u64,
                duration: update_hold,
            });
        }
        covered = covered.max(target.min(devices));
        elapsed += stage.soak;
    }
    windows
}

/// End of the update window for `device` (`None` if the rollout never
/// reaches it).
fn updated_at(windows: &[MaintenanceWindow], device: u32) -> Option<SimTime> {
    windows
        .iter()
        .find(|w| w.device == device)
        .map(|w| w.start + w.duration)
}

/// Rolls `to` out over a pool currently running `from`, serving live
/// traffic throughout, and reports resilient vs naive behavior under
/// identical fault traces.
///
/// Fault generation: `fault_config` rates apply while a device runs a
/// §5.5-hazardous bundle; once a device's update to a non-hazardous `to`
/// bundle completes, its later `PcieLinkLoss` events are removed (the
/// mitigation moved Control-Core working memory into SRAM). Non-PCIe
/// faults (ECC, NoC, transient) are firmware-independent and survive.
pub fn simulate_rollout_serving(
    config: &RolloutServingConfig,
    rollout: &Rollout,
    from: &FirmwareBundle,
    to: &FirmwareBundle,
    fault_config: &FaultPlanConfig,
) -> RolloutServingReport {
    let devices = config.workload.devices;
    let windows = maintenance_schedule(
        rollout,
        devices,
        config.update_hold,
        config.horizon.scale(0.7),
    );

    let from_hazardous = deadlock_possible(from.deadlock_config_under_load());
    let to_hazardous = deadlock_possible(to.deadlock_config_under_load());

    let raw = FaultPlan::generate(fault_config, devices, config.horizon, config.seed);
    let mut removed = 0usize;
    let mut plan = FaultPlan::empty(config.seed);
    for event in raw.events() {
        if let FaultKind::PcieLinkLoss { .. } = event.kind {
            if !from_hazardous {
                removed += 1;
                continue;
            }
            if !to_hazardous {
                if let Some(updated) = updated_at(&windows, event.device) {
                    if event.at >= updated {
                        removed += 1;
                        continue;
                    }
                }
            }
        }
        plan = plan.with_event(*event);
    }

    let mut resilience = ResilienceConfig::production(config.workload, config.seed);
    resilience.maintenance = windows.clone();
    let comparison = compare_policies(
        &resilience,
        &plan,
        config.rate,
        config.horizon,
        config.warmup,
    );

    RolloutServingReport {
        windows,
        comparison,
        hazards_removed_by_mitigation: removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(devices: u32) -> RemoteMergeConfig {
        RemoteMergeConfig {
            devices,
            remote_jobs_per_request: 2,
            remote_total_time: SimTime::from_millis(8),
            merge_time: SimTime::from_millis(10),
            dispatch_overhead: SimTime::from_millis(1),
        }
    }

    fn config(devices: u32, seed: u64) -> RolloutServingConfig {
        RolloutServingConfig {
            workload: workload(devices),
            rate: 60.0,
            update_hold: SimTime::from_secs(2),
            horizon: SimTime::from_secs(60),
            warmup: SimTime::from_secs(5),
            seed,
        }
    }

    fn hazard_heavy_faults() -> FaultPlanConfig {
        FaultPlanConfig {
            pcie_loss_per_device: 2.0,
            pcie_min_utilization: 0.0,
            ..FaultPlanConfig::stress()
        }
    }

    #[test]
    fn schedule_covers_every_device_once() {
        let windows = maintenance_schedule(
            &Rollout::standard(),
            8,
            SimTime::from_secs(2),
            SimTime::from_secs(40),
        );
        let mut devices: Vec<u32> = windows.iter().map(|w| w.device).collect();
        devices.sort_unstable();
        assert_eq!(devices, (0..8).collect::<Vec<_>>());
        assert!(windows.iter().all(|w| w.start <= SimTime::from_secs(60)));
        // Stage structure survives: the first (1 %) stage rounds to zero
        // devices on 8, so the earliest window starts at the second
        // stage's scaled offset, not zero.
        assert!(windows.iter().all(|w| w.start > SimTime::ZERO));
    }

    #[test]
    fn mitigated_rollout_erases_post_update_hazards() {
        let report = simulate_rollout_serving(
            &config(4, 21),
            &Rollout::emergency(),
            &FirmwareBundle::original(),
            &FirmwareBundle::mitigated(),
            &hazard_heavy_faults(),
        );
        assert!(
            report.hazards_removed_by_mitigation > 0,
            "mitigation must erase §5.5 events landing after the update"
        );
        assert!(report.comparison.same_trace());
    }

    #[test]
    fn non_hazardous_fleet_sees_no_pcie_loss() {
        let report = simulate_rollout_serving(
            &config(4, 22),
            &Rollout::emergency(),
            &FirmwareBundle::mitigated(),
            &FirmwareBundle::mitigated(),
            &hazard_heavy_faults(),
        );
        // Every generated PcieLinkLoss was filtered.
        assert!(report.hazards_removed_by_mitigation > 0);
        assert!(report.comparison.resilient.availability > 0.0);
    }

    #[test]
    fn resilient_rollout_outperforms_naive() {
        let report = simulate_rollout_serving(
            &config(4, 23),
            &Rollout::emergency(),
            &FirmwareBundle::original(),
            &FirmwareBundle::mitigated(),
            &hazard_heavy_faults(),
        );
        let cmp = &report.comparison;
        assert!(cmp.same_trace());
        assert!(
            cmp.resilient.success_rate() > cmp.naive.success_rate(),
            "resilient {:.3} !> naive {:.3}",
            cmp.resilient.success_rate(),
            cmp.naive.success_rate()
        );
    }

    #[test]
    fn reports_are_reproducible_per_seed() {
        let run = || {
            simulate_rollout_serving(
                &config(4, 24),
                &Rollout::emergency(),
                &FirmwareBundle::original(),
                &FirmwareBundle::mitigated(),
                &hazard_heavy_faults(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.windows, b.windows);
        assert_eq!(
            a.hazards_removed_by_mitigation,
            b.hazards_removed_by_mitigation
        );
        assert_eq!(
            a.comparison.resilient.completed,
            b.comparison.resilient.completed
        );
        assert_eq!(
            a.comparison.resilient.request_latency.p99(),
            b.comparison.resilient.request_latency.p99()
        );
        assert_eq!(
            a.comparison.naive.fault_fingerprint,
            b.comparison.naive.fault_fingerprint
        );
    }
}
