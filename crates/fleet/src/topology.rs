//! The fleet's fault-domain tree.
//!
//! Every correlated outage the serving stack must survive maps to one
//! level of the physical containment hierarchy:
//!
//! ```text
//!   power domain ─ rack ─ host ─ module ─ device
//! ```
//!
//! A host crash (kernel panic, PCIe root-complex hang, §5.5) takes out
//! every accelerator on the host at once — 24 in the paper's Grand
//! Teton-derived server (§3.4, 12 modules × 2 accelerators). A rack or
//! power-domain event takes out every host beneath it. [`FleetTopology`]
//! is a purely arithmetic encoding of that tree: device ids are dense
//! and contiguous within each domain, so every ancestor lookup is a
//! division and every member set a range — deterministic, allocation-
//! free, and trivially consistent (`devices_in(host_of(d))` always
//! contains `d`).
//!
//! It implements [`mtia_serving::failover::FaultDomains`], which is how
//! replica placement and re-replication consult it, and it knows how to
//! fan a correlated fault out to a domain's members via
//! [`FleetTopology::correlated_event`].
//!
//! Above the pod, [`GlobalTopology`] extends the same arithmetic tree
//! two more levels for the region-scale disaster story:
//!
//! ```text
//!   region ─ pod ─ power domain ─ rack ─ host ─ module ─ device
//! ```
//!
//! Every pod is one [`FleetTopology`] (the paper's 288-device
//! `paper_server()` by default), several pods make a region, several
//! regions make the serving fleet, and configured inter-region WAN
//! latencies make cross-region failover a priced decision rather than a
//! free one. [`GlobalTopology::correlated_event`] fans
//! [`FaultKind::PodLoss`], [`FaultKind::RegionOutage`], and
//! [`FaultKind::WanPartition`] out to the full pod/region blast radius,
//! and [`GlobalTopology::fleet_spec`] bridges to the plain-data shape
//! `mtia_serving::global` routes over.

use std::ops::Range;

use mtia_core::SimTime;
use mtia_serving::failover::FaultDomains;
use mtia_serving::global::GlobalFleetSpec;
use mtia_sim::faults::{DeviceId, FaultKind, FaultPlan};

/// Shape of the containment tree, bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Accelerators per module (the paper's dual-chip module).
    pub devices_per_module: u32,
    /// Modules per host.
    pub modules_per_host: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Racks per power domain.
    pub racks_per_power_domain: u32,
    /// Power domains in the fleet.
    pub power_domains: u32,
}

impl TopologyConfig {
    /// The paper's server shape (§3.4): 12 dual-accelerator modules per
    /// host → 24 devices behind one host's PCIe fabric, three such
    /// hosts per rack, two racks per power feed, two feeds — a small
    /// 288-device serving pod.
    pub fn paper_server() -> Self {
        TopologyConfig {
            devices_per_module: 2,
            modules_per_host: 12,
            hosts_per_rack: 3,
            racks_per_power_domain: 2,
            power_domains: 2,
        }
    }

    /// A 16-device toy tree (4 per host, 2 hosts per rack, 2 racks) for
    /// tests and examples.
    pub fn small() -> Self {
        TopologyConfig {
            devices_per_module: 2,
            modules_per_host: 2,
            hosts_per_rack: 2,
            racks_per_power_domain: 2,
            power_domains: 1,
        }
    }

    /// Materializes the tree.
    ///
    /// # Panics
    ///
    /// Panics if any level is zero.
    pub fn build(self) -> FleetTopology {
        assert!(
            self.devices_per_module > 0
                && self.modules_per_host > 0
                && self.hosts_per_rack > 0
                && self.racks_per_power_domain > 0
                && self.power_domains > 0,
            "every topology level must be non-empty"
        );
        FleetTopology { config: self }
    }
}

/// One level of the fault-domain tree (the domains a correlated fault
/// can target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainLevel {
    /// A dual-accelerator module.
    Module,
    /// One server: everything behind one host's PCIe fabric.
    Host,
    /// One rack of hosts.
    Rack,
    /// One power feed's worth of racks.
    PowerDomain,
}

/// The materialized fault-domain tree. Device ids are dense in
/// `0..device_count()` and contiguous within every domain.
#[derive(Debug, Clone, Copy)]
pub struct FleetTopology {
    config: TopologyConfig,
}

impl FleetTopology {
    /// The shape this tree was built from.
    pub fn config(&self) -> TopologyConfig {
        self.config
    }

    /// Devices per host (the host-crash blast radius).
    pub fn devices_per_host(&self) -> u32 {
        self.config.devices_per_module * self.config.modules_per_host
    }

    /// Devices per rack.
    pub fn devices_per_rack(&self) -> u32 {
        self.devices_per_host() * self.config.hosts_per_rack
    }

    /// Devices per power domain.
    pub fn devices_per_power_domain(&self) -> u32 {
        self.devices_per_rack() * self.config.racks_per_power_domain
    }

    /// Total devices in the fleet.
    pub fn device_count(&self) -> u32 {
        self.devices_per_power_domain() * self.config.power_domains
    }

    /// Total domains at `level`.
    pub fn domain_count(&self, level: DomainLevel) -> u32 {
        self.device_count() / self.domain_size(level)
    }

    fn domain_size(&self, level: DomainLevel) -> u32 {
        match level {
            DomainLevel::Module => self.config.devices_per_module,
            DomainLevel::Host => self.devices_per_host(),
            DomainLevel::Rack => self.devices_per_rack(),
            DomainLevel::PowerDomain => self.devices_per_power_domain(),
        }
    }

    /// Module index of `device`.
    pub fn module_of(&self, device: DeviceId) -> u32 {
        device / self.config.devices_per_module
    }

    /// The ancestor domain of `device` at `level`.
    pub fn domain_of(&self, level: DomainLevel, device: DeviceId) -> u32 {
        device / self.domain_size(level)
    }

    /// Member devices of domain `index` at `level`, as a dense range.
    pub fn devices_in(&self, level: DomainLevel, index: u32) -> Range<DeviceId> {
        let size = self.domain_size(level);
        index * size..(index + 1) * size
    }

    /// Whether two devices share the domain at `level`.
    pub fn shares_domain(&self, level: DomainLevel, a: DeviceId, b: DeviceId) -> bool {
        self.domain_of(level, a) == self.domain_of(level, b)
    }

    /// Fans one correlated fault out to every member of domain `index`
    /// at `level`, appending to `plan`. The `duration` is the domain's
    /// repair/restart time (host reboot, rack power restore). Composes
    /// freely with per-device events already in the plan.
    pub fn correlated_event(
        &self,
        plan: FaultPlan,
        level: DomainLevel,
        index: u32,
        at: SimTime,
        kind: FaultKind,
        duration: SimTime,
    ) -> FaultPlan {
        assert!(
            index < self.domain_count(level),
            "domain index out of range"
        );
        plan.with_correlated_event(self.devices_in(level, index), at, kind, duration)
    }
}

impl FaultDomains for FleetTopology {
    fn devices(&self) -> u32 {
        self.device_count()
    }
    fn host_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::Host, device)
    }
    fn rack_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::Rack, device)
    }
    fn power_domain_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::PowerDomain, device)
    }
}

/// Shape of the fleet above the pod: identical pods grouped into
/// regions with a uniform one-way inter-region WAN latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalTopologyConfig {
    /// The containment tree inside every pod.
    pub pod: TopologyConfig,
    /// Pods per region.
    pub pods_per_region: u32,
    /// Regions in the fleet.
    pub regions: u32,
    /// One-way WAN latency between any two distinct regions.
    pub inter_region_latency: SimTime,
}

impl GlobalTopologyConfig {
    /// The E22 planetary fleet: three regions (think NA/EU/APAC, one
    /// timezone-ish WAN hop apart) of two `paper_server()` pods each —
    /// 1728 devices.
    pub fn planetary() -> Self {
        GlobalTopologyConfig {
            pod: TopologyConfig::paper_server(),
            pods_per_region: 2,
            regions: 3,
            inter_region_latency: SimTime::from_millis(60),
        }
    }

    /// A 64-device toy fleet (2 regions × 2 pods × the 16-device
    /// `small()` tree) for tests, goldens, and examples.
    pub fn global_small() -> Self {
        GlobalTopologyConfig {
            pod: TopologyConfig::small(),
            pods_per_region: 2,
            regions: 2,
            inter_region_latency: SimTime::from_millis(40),
        }
    }

    /// Materializes the global tree.
    ///
    /// # Panics
    ///
    /// Panics if any level (including the pod's own) is zero.
    pub fn build(self) -> GlobalTopology {
        assert!(
            self.pods_per_region > 0 && self.regions > 0,
            "every global topology level must be non-empty"
        );
        GlobalTopology {
            config: self,
            pod_topology: self.pod.build(),
        }
    }
}

/// The fleet levels above the pod's own tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalLevel {
    /// One serving pod — a full [`FleetTopology`] behind one fleet-level
    /// failure domain (spine switch, pod power bus).
    Pod,
    /// One region — every pod homed in one geography.
    Region,
}

/// The materialized global tree: dense device ids, contiguous within
/// every pod and region, so the arithmetic-encoding invariants of
/// [`FleetTopology`] extend unchanged two levels up.
#[derive(Debug, Clone, Copy)]
pub struct GlobalTopology {
    config: GlobalTopologyConfig,
    pod_topology: FleetTopology,
}

impl GlobalTopology {
    /// The shape this tree was built from.
    pub fn config(&self) -> GlobalTopologyConfig {
        self.config
    }

    /// The containment tree inside every pod.
    pub fn pod_topology(&self) -> FleetTopology {
        self.pod_topology
    }

    /// Devices per pod.
    pub fn devices_per_pod(&self) -> u32 {
        self.pod_topology.device_count()
    }

    /// Devices per region.
    pub fn devices_per_region(&self) -> u32 {
        self.devices_per_pod() * self.config.pods_per_region
    }

    /// Total pods.
    pub fn pod_count(&self) -> u32 {
        self.config.pods_per_region * self.config.regions
    }

    /// Total regions.
    pub fn region_count(&self) -> u32 {
        self.config.regions
    }

    /// Total devices across every region.
    pub fn device_count(&self) -> u32 {
        self.devices_per_region() * self.config.regions
    }

    /// Total domains at `level`.
    pub fn domain_count(&self, level: GlobalLevel) -> u32 {
        self.device_count() / self.domain_size(level)
    }

    fn domain_size(&self, level: GlobalLevel) -> u32 {
        match level {
            GlobalLevel::Pod => self.devices_per_pod(),
            GlobalLevel::Region => self.devices_per_region(),
        }
    }

    /// Pod index of `device`.
    pub fn pod_of(&self, device: DeviceId) -> u32 {
        device / self.devices_per_pod()
    }

    /// Region index of `device`.
    pub fn region_of(&self, device: DeviceId) -> u32 {
        device / self.devices_per_region()
    }

    /// Region homing pod `pod`.
    pub fn region_of_pod(&self, pod: u32) -> u32 {
        pod / self.config.pods_per_region
    }

    /// The ancestor domain of `device` at `level`.
    pub fn domain_of(&self, level: GlobalLevel, device: DeviceId) -> u32 {
        device / self.domain_size(level)
    }

    /// Member devices of domain `index` at `level`, as a dense range.
    pub fn devices_in(&self, level: GlobalLevel, index: u32) -> Range<DeviceId> {
        let size = self.domain_size(level);
        index * size..(index + 1) * size
    }

    /// Whether two devices share the domain at `level`.
    pub fn shares_domain(&self, level: GlobalLevel, a: DeviceId, b: DeviceId) -> bool {
        self.domain_of(level, a) == self.domain_of(level, b)
    }

    /// One-way WAN latency between two regions (`ZERO` within one).
    pub fn wan_latency(&self, a: u32, b: u32) -> SimTime {
        if a == b {
            SimTime::ZERO
        } else {
            self.config.inter_region_latency
        }
    }

    /// Fans one correlated fault out to every device of pod/region
    /// `index`, appending to `plan` — [`FaultKind::PodLoss`] at
    /// [`GlobalLevel::Pod`], [`FaultKind::RegionOutage`] /
    /// [`FaultKind::WanPartition`] at [`GlobalLevel::Region`].
    pub fn correlated_event(
        &self,
        plan: FaultPlan,
        level: GlobalLevel,
        index: u32,
        at: SimTime,
        kind: FaultKind,
        duration: SimTime,
    ) -> FaultPlan {
        assert!(
            index < self.domain_count(level),
            "domain index out of range"
        );
        plan.with_correlated_event(self.devices_in(level, index), at, kind, duration)
    }

    /// Bridges to the plain-data fleet shape `mtia_serving::global`
    /// routes over. The spec's dense pod/device numbering is identical
    /// to this tree's, so fault plans built against either agree.
    pub fn fleet_spec(&self) -> GlobalFleetSpec {
        let spec = GlobalFleetSpec::symmetric(
            self.config.regions,
            self.config.pods_per_region,
            self.devices_per_pod(),
            self.config.inter_region_latency,
        );
        spec.validate();
        spec
    }
}

impl FaultDomains for GlobalTopology {
    fn devices(&self) -> u32 {
        self.device_count()
    }
    fn host_of(&self, device: DeviceId) -> u32 {
        let pod = self.pod_of(device);
        let local = device % self.devices_per_pod();
        pod * self.pod_topology.domain_count(DomainLevel::Host)
            + self.pod_topology.domain_of(DomainLevel::Host, local)
    }
    fn rack_of(&self, device: DeviceId) -> u32 {
        let pod = self.pod_of(device);
        let local = device % self.devices_per_pod();
        pod * self.pod_topology.domain_count(DomainLevel::Rack)
            + self.pod_topology.domain_of(DomainLevel::Rack, local)
    }
    fn power_domain_of(&self, device: DeviceId) -> u32 {
        let pod = self.pod_of(device);
        let local = device % self.devices_per_pod();
        pod * self.pod_topology.domain_count(DomainLevel::PowerDomain)
            + self.pod_topology.domain_of(DomainLevel::PowerDomain, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_matches_the_section_3_4_shape() {
        let topo = TopologyConfig::paper_server().build();
        assert_eq!(topo.devices_per_host(), 24, "§3.4: 24 accelerators/host");
        assert_eq!(topo.device_count(), 288);
        assert_eq!(topo.domain_count(DomainLevel::Host), 12);
        assert_eq!(topo.domain_count(DomainLevel::Rack), 4);
        assert_eq!(topo.domain_count(DomainLevel::PowerDomain), 2);
    }

    #[test]
    fn ancestor_lookups_are_consistent_with_member_ranges() {
        let topo = TopologyConfig::paper_server().build();
        for level in [
            DomainLevel::Module,
            DomainLevel::Host,
            DomainLevel::Rack,
            DomainLevel::PowerDomain,
        ] {
            for device in 0..topo.device_count() {
                let domain = topo.domain_of(level, device);
                assert!(
                    topo.devices_in(level, domain).contains(&device),
                    "{level:?} domain {domain} must contain its own member {device}"
                );
            }
            // Domains partition the fleet exactly.
            let total: u32 = (0..topo.domain_count(level))
                .map(|i| topo.devices_in(level, i).len() as u32)
                .sum();
            assert_eq!(total, topo.device_count());
        }
    }

    #[test]
    fn domains_nest() {
        let topo = TopologyConfig::paper_server().build();
        for device in 0..topo.device_count() {
            let host = topo.host_of(device);
            let rack = topo.rack_of(device);
            for other in topo.devices_in(DomainLevel::Host, host) {
                assert_eq!(topo.rack_of(other), rack, "same host ⇒ same rack");
                assert_eq!(
                    topo.power_domain_of(other),
                    topo.power_domain_of(device),
                    "same host ⇒ same power domain"
                );
            }
        }
    }

    #[test]
    fn correlated_event_covers_exactly_the_domain() {
        let topo = TopologyConfig::small().build();
        let plan = topo.correlated_event(
            FaultPlan::empty(1),
            DomainLevel::Host,
            1,
            SimTime::from_secs(5),
            FaultKind::HostCrash,
            SimTime::from_secs(10),
        );
        let devices: Vec<DeviceId> = plan.events().iter().map(|e| e.device).collect();
        assert_eq!(devices, vec![4, 5, 6, 7], "host 1 of the small tree");
        assert!(plan.events().iter().all(|e| e.kind == FaultKind::HostCrash));
    }

    #[test]
    fn planetary_fleet_matches_the_e22_shape() {
        let global = GlobalTopologyConfig::planetary().build();
        assert_eq!(global.devices_per_pod(), 288);
        assert_eq!(global.pod_count(), 6);
        assert_eq!(global.region_count(), 3);
        assert_eq!(global.device_count(), 1728);
        assert_eq!(global.domain_count(GlobalLevel::Pod), 6);
        assert_eq!(global.domain_count(GlobalLevel::Region), 3);
        assert_eq!(global.wan_latency(0, 0), SimTime::ZERO);
        assert_eq!(global.wan_latency(0, 2), SimTime::from_millis(60));
    }

    #[test]
    fn global_domains_nest_and_partition() {
        let global = GlobalTopologyConfig::global_small().build();
        for level in [GlobalLevel::Pod, GlobalLevel::Region] {
            for device in 0..global.device_count() {
                let domain = global.domain_of(level, device);
                assert!(global.devices_in(level, domain).contains(&device));
            }
            let total: u32 = (0..global.domain_count(level))
                .map(|i| global.devices_in(level, i).len() as u32)
                .sum();
            assert_eq!(total, global.device_count());
        }
        for device in 0..global.device_count() {
            // Pods nest inside regions, and hosts inside pods: any two
            // devices sharing a host share the pod and the region.
            let pod = global.pod_of(device);
            assert_eq!(global.region_of(device), global.region_of_pod(pod));
            for other in global.devices_in(GlobalLevel::Pod, pod) {
                if global.host_of(other) == global.host_of(device) {
                    assert!(global.shares_domain(GlobalLevel::Pod, device, other));
                    assert!(global.shares_domain(GlobalLevel::Region, device, other));
                }
            }
        }
    }

    #[test]
    fn global_fault_domains_refine_the_pod_tree() {
        // Host/rack/power-domain ids stay globally unique and agree
        // with the single-pod tree modulo the per-pod offset.
        let global = GlobalTopologyConfig::global_small().build();
        let pod_topo = global.pod_topology();
        let per_pod_hosts = pod_topo.domain_count(DomainLevel::Host);
        for device in 0..global.device_count() {
            let local = device % global.devices_per_pod();
            assert_eq!(
                global.host_of(device),
                global.pod_of(device) * per_pod_hosts + pod_topo.host_of(local)
            );
        }
        // Distinct pods never share a host id.
        let a = global.host_of(0);
        let b = global.host_of(global.devices_per_pod());
        assert_ne!(a, b);
    }

    #[test]
    fn region_outage_fans_out_to_the_whole_region() {
        let global = GlobalTopologyConfig::global_small().build();
        let plan = global.correlated_event(
            FaultPlan::empty(2),
            GlobalLevel::Region,
            1,
            SimTime::from_secs(3),
            FaultKind::RegionOutage,
            SimTime::from_secs(30),
        );
        let devices: Vec<DeviceId> = plan.events().iter().map(|e| e.device).collect();
        let expected: Vec<DeviceId> = global.devices_in(GlobalLevel::Region, 1).collect();
        assert_eq!(devices, expected);
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::RegionOutage));
    }

    #[test]
    fn fleet_spec_agrees_with_the_tree() {
        let global = GlobalTopologyConfig::planetary().build();
        let spec = global.fleet_spec();
        assert_eq!(spec.pods(), global.pod_count());
        assert_eq!(spec.devices(), global.device_count());
        for device in (0..global.device_count()).step_by(97) {
            assert_eq!(spec.pod_of_device(device), global.pod_of(device));
            assert_eq!(
                spec.region_of_pod(spec.pod_of_device(device)),
                global.region_of(device)
            );
        }
        assert_eq!(spec.wan_latency(1, 2), global.wan_latency(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_domain_panics() {
        let topo = TopologyConfig::small().build();
        let _ = topo.correlated_event(
            FaultPlan::empty(1),
            DomainLevel::Rack,
            99,
            SimTime::ZERO,
            FaultKind::RackPowerLoss,
            SimTime::from_secs(1),
        );
    }
}
