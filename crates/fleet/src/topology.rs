//! The fleet's fault-domain tree.
//!
//! Every correlated outage the serving stack must survive maps to one
//! level of the physical containment hierarchy:
//!
//! ```text
//!   power domain ─ rack ─ host ─ module ─ device
//! ```
//!
//! A host crash (kernel panic, PCIe root-complex hang, §5.5) takes out
//! every accelerator on the host at once — 24 in the paper's Grand
//! Teton-derived server (§3.4, 12 modules × 2 accelerators). A rack or
//! power-domain event takes out every host beneath it. [`FleetTopology`]
//! is a purely arithmetic encoding of that tree: device ids are dense
//! and contiguous within each domain, so every ancestor lookup is a
//! division and every member set a range — deterministic, allocation-
//! free, and trivially consistent (`devices_in(host_of(d))` always
//! contains `d`).
//!
//! It implements [`mtia_serving::failover::FaultDomains`], which is how
//! replica placement and re-replication consult it, and it knows how to
//! fan a correlated fault out to a domain's members via
//! [`FleetTopology::correlated_event`].

use std::ops::Range;

use mtia_core::SimTime;
use mtia_serving::failover::FaultDomains;
use mtia_sim::faults::{DeviceId, FaultKind, FaultPlan};

/// Shape of the containment tree, bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Accelerators per module (the paper's dual-chip module).
    pub devices_per_module: u32,
    /// Modules per host.
    pub modules_per_host: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Racks per power domain.
    pub racks_per_power_domain: u32,
    /// Power domains in the fleet.
    pub power_domains: u32,
}

impl TopologyConfig {
    /// The paper's server shape (§3.4): 12 dual-accelerator modules per
    /// host → 24 devices behind one host's PCIe fabric, three such
    /// hosts per rack, two racks per power feed, two feeds — a small
    /// 288-device serving pod.
    pub fn paper_server() -> Self {
        TopologyConfig {
            devices_per_module: 2,
            modules_per_host: 12,
            hosts_per_rack: 3,
            racks_per_power_domain: 2,
            power_domains: 2,
        }
    }

    /// A 16-device toy tree (4 per host, 2 hosts per rack, 2 racks) for
    /// tests and examples.
    pub fn small() -> Self {
        TopologyConfig {
            devices_per_module: 2,
            modules_per_host: 2,
            hosts_per_rack: 2,
            racks_per_power_domain: 2,
            power_domains: 1,
        }
    }

    /// Materializes the tree.
    ///
    /// # Panics
    ///
    /// Panics if any level is zero.
    pub fn build(self) -> FleetTopology {
        assert!(
            self.devices_per_module > 0
                && self.modules_per_host > 0
                && self.hosts_per_rack > 0
                && self.racks_per_power_domain > 0
                && self.power_domains > 0,
            "every topology level must be non-empty"
        );
        FleetTopology { config: self }
    }
}

/// One level of the fault-domain tree (the domains a correlated fault
/// can target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainLevel {
    /// A dual-accelerator module.
    Module,
    /// One server: everything behind one host's PCIe fabric.
    Host,
    /// One rack of hosts.
    Rack,
    /// One power feed's worth of racks.
    PowerDomain,
}

/// The materialized fault-domain tree. Device ids are dense in
/// `0..device_count()` and contiguous within every domain.
#[derive(Debug, Clone, Copy)]
pub struct FleetTopology {
    config: TopologyConfig,
}

impl FleetTopology {
    /// The shape this tree was built from.
    pub fn config(&self) -> TopologyConfig {
        self.config
    }

    /// Devices per host (the host-crash blast radius).
    pub fn devices_per_host(&self) -> u32 {
        self.config.devices_per_module * self.config.modules_per_host
    }

    /// Devices per rack.
    pub fn devices_per_rack(&self) -> u32 {
        self.devices_per_host() * self.config.hosts_per_rack
    }

    /// Devices per power domain.
    pub fn devices_per_power_domain(&self) -> u32 {
        self.devices_per_rack() * self.config.racks_per_power_domain
    }

    /// Total devices in the fleet.
    pub fn device_count(&self) -> u32 {
        self.devices_per_power_domain() * self.config.power_domains
    }

    /// Total domains at `level`.
    pub fn domain_count(&self, level: DomainLevel) -> u32 {
        self.device_count() / self.domain_size(level)
    }

    fn domain_size(&self, level: DomainLevel) -> u32 {
        match level {
            DomainLevel::Module => self.config.devices_per_module,
            DomainLevel::Host => self.devices_per_host(),
            DomainLevel::Rack => self.devices_per_rack(),
            DomainLevel::PowerDomain => self.devices_per_power_domain(),
        }
    }

    /// Module index of `device`.
    pub fn module_of(&self, device: DeviceId) -> u32 {
        device / self.config.devices_per_module
    }

    /// The ancestor domain of `device` at `level`.
    pub fn domain_of(&self, level: DomainLevel, device: DeviceId) -> u32 {
        device / self.domain_size(level)
    }

    /// Member devices of domain `index` at `level`, as a dense range.
    pub fn devices_in(&self, level: DomainLevel, index: u32) -> Range<DeviceId> {
        let size = self.domain_size(level);
        index * size..(index + 1) * size
    }

    /// Whether two devices share the domain at `level`.
    pub fn shares_domain(&self, level: DomainLevel, a: DeviceId, b: DeviceId) -> bool {
        self.domain_of(level, a) == self.domain_of(level, b)
    }

    /// Fans one correlated fault out to every member of domain `index`
    /// at `level`, appending to `plan`. The `duration` is the domain's
    /// repair/restart time (host reboot, rack power restore). Composes
    /// freely with per-device events already in the plan.
    pub fn correlated_event(
        &self,
        plan: FaultPlan,
        level: DomainLevel,
        index: u32,
        at: SimTime,
        kind: FaultKind,
        duration: SimTime,
    ) -> FaultPlan {
        assert!(
            index < self.domain_count(level),
            "domain index out of range"
        );
        plan.with_correlated_event(self.devices_in(level, index), at, kind, duration)
    }
}

impl FaultDomains for FleetTopology {
    fn devices(&self) -> u32 {
        self.device_count()
    }
    fn host_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::Host, device)
    }
    fn rack_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::Rack, device)
    }
    fn power_domain_of(&self, device: DeviceId) -> u32 {
        self.domain_of(DomainLevel::PowerDomain, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_matches_the_section_3_4_shape() {
        let topo = TopologyConfig::paper_server().build();
        assert_eq!(topo.devices_per_host(), 24, "§3.4: 24 accelerators/host");
        assert_eq!(topo.device_count(), 288);
        assert_eq!(topo.domain_count(DomainLevel::Host), 12);
        assert_eq!(topo.domain_count(DomainLevel::Rack), 4);
        assert_eq!(topo.domain_count(DomainLevel::PowerDomain), 2);
    }

    #[test]
    fn ancestor_lookups_are_consistent_with_member_ranges() {
        let topo = TopologyConfig::paper_server().build();
        for level in [
            DomainLevel::Module,
            DomainLevel::Host,
            DomainLevel::Rack,
            DomainLevel::PowerDomain,
        ] {
            for device in 0..topo.device_count() {
                let domain = topo.domain_of(level, device);
                assert!(
                    topo.devices_in(level, domain).contains(&device),
                    "{level:?} domain {domain} must contain its own member {device}"
                );
            }
            // Domains partition the fleet exactly.
            let total: u32 = (0..topo.domain_count(level))
                .map(|i| topo.devices_in(level, i).len() as u32)
                .sum();
            assert_eq!(total, topo.device_count());
        }
    }

    #[test]
    fn domains_nest() {
        let topo = TopologyConfig::paper_server().build();
        for device in 0..topo.device_count() {
            let host = topo.host_of(device);
            let rack = topo.rack_of(device);
            for other in topo.devices_in(DomainLevel::Host, host) {
                assert_eq!(topo.rack_of(other), rack, "same host ⇒ same rack");
                assert_eq!(
                    topo.power_domain_of(other),
                    topo.power_domain_of(device),
                    "same host ⇒ same power domain"
                );
            }
        }
    }

    #[test]
    fn correlated_event_covers_exactly_the_domain() {
        let topo = TopologyConfig::small().build();
        let plan = topo.correlated_event(
            FaultPlan::empty(1),
            DomainLevel::Host,
            1,
            SimTime::from_secs(5),
            FaultKind::HostCrash,
            SimTime::from_secs(10),
        );
        let devices: Vec<DeviceId> = plan.events().iter().map(|e| e.device).collect();
        assert_eq!(devices, vec![4, 5, 6, 7], "host 1 of the small tree");
        assert!(plan.events().iter().all(|e| e.kind == FaultKind::HostCrash));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_domain_panics() {
        let topo = TopologyConfig::small().build();
        let _ = topo.correlated_event(
            FaultPlan::empty(1),
            DomainLevel::Rack,
            99,
            SimTime::ZERO,
            FaultKind::RackPowerLoss,
            SimTime::from_secs(1),
        );
    }
}
