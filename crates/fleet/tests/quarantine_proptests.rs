//! Property-based invariants of the quarantine/repair workflow (§5.1).

use mtia_core::seed::{derive, DEFAULT_SEED};
use mtia_fleet::quarantine::{run_defended_fleet, RepairState};
use mtia_serving::sdc::DetectionPolicy;
use proptest::prelude::*;

/// The transition whitelist is exact: quarantine → memtest →
/// release/retire are the only paths, and `Retired` is absorbing.
#[test]
fn transition_whitelist_is_exact() {
    use RepairState::*;
    let all = [InService, Quarantined, MemTest, Retired];
    for from in all {
        for to in all {
            let expect = matches!(
                (from, to),
                (InService, Quarantined)
                    | (Quarantined, MemTest)
                    | (MemTest, InService)
                    | (MemTest, Retired)
            );
            assert_eq!(
                RepairState::legal(from, to),
                expect,
                "legal({from:?}, {to:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every device repair log from a defended run is a legal walk:
    /// transitions chain, each edge is whitelisted, and the only exit
    /// from `Quarantined` is `MemTest`. Holds for any run seed — and
    /// the defense still serves zero corrupted responses.
    #[test]
    fn repair_logs_only_take_legal_paths(salt in 0u64..1024) {
        let seed = derive(DEFAULT_SEED, &format!("quarantine/prop/{salt}"));
        let report = run_defended_fleet(DetectionPolicy::full(12), seed);
        for (device, log) in &report.device_logs {
            let mut prev = RepairState::InService;
            for (_, from, to) in &log.transitions {
                prop_assert_eq!(*from, prev, "device {} log is not chained", device);
                prop_assert!(
                    RepairState::legal(*from, *to),
                    "device {device}: illegal {from:?} -> {to:?}"
                );
                if *from == RepairState::Quarantined {
                    prop_assert_eq!(*to, RepairState::MemTest);
                }
                prev = *to;
            }
            prop_assert_eq!(log.state, prev);
        }
        prop_assert_eq!(report.sdc.served_corrupted, 0);
    }
}
