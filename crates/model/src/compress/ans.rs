//! A byte-oriented rANS (range Asymmetric Numeral System) entropy coder.
//!
//! This is the "ANS compression for weights" feature of §3.3, implemented
//! for real: static per-block symbol frequencies, 12-bit probability
//! resolution, 32-bit state with byte-wise renormalization. INT8 weights
//! from trained models are sharply peaked around zero and compress to
//! roughly half their size; FP16 weight bytes have near-uniform mantissa
//! bytes and barely compress — exactly the behaviour the paper reports.

use std::fmt;

/// Probability resolution: frequencies are normalized to sum to `1 << 12`.
const PROB_BITS: u32 = 12;
const PROB_SCALE: u32 = 1 << PROB_BITS;
/// Renormalization lower bound of the rANS state.
const RANS_LOW: u32 = 1 << 23;

/// Errors from decoding a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnsError {
    /// The header or payload ended prematurely.
    Truncated,
    /// The frequency table is invalid (does not sum to the scale).
    BadFrequencyTable,
    /// The state decoded a symbol with zero frequency.
    CorruptStream,
}

impl fmt::Display for AnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnsError::Truncated => write!(f, "ans stream truncated"),
            AnsError::BadFrequencyTable => write!(f, "invalid ans frequency table"),
            AnsError::CorruptStream => write!(f, "corrupt ans stream"),
        }
    }
}

impl std::error::Error for AnsError {}

/// Normalizes raw byte counts to frequencies summing exactly to
/// `PROB_SCALE`, keeping every occurring symbol at frequency ≥ 1.
fn normalize_freqs(counts: &[u64; 256]) -> [u16; 256] {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot build a frequency table from empty input");
    let mut freqs = [0u16; 256];
    let mut assigned: u32 = 0;
    let mut max_sym = 0usize;
    let mut max_freq = 0u16;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let f = ((c as u128 * PROB_SCALE as u128) / total as u128) as u32;
        let f = f.clamp(1, PROB_SCALE - 1) as u16;
        freqs[i] = f;
        assigned += f as u32;
        if f > max_freq {
            max_freq = f;
            max_sym = i;
        }
    }
    // Fix the rounding drift by adjusting the most frequent symbol.
    let diff = PROB_SCALE as i64 - assigned as i64;
    let adjusted = freqs[max_sym] as i64 + diff;
    assert!(adjusted >= 1, "frequency normalization failed");
    freqs[max_sym] = adjusted as u16;
    freqs
}

/// Compresses `input` with a static frequency model. The output embeds the
/// frequency table and the original length.
///
/// Returns an empty-payload frame for empty input.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return out;
    }

    let mut counts = [0u64; 256];
    for &b in input {
        counts[b as usize] += 1;
    }
    let freqs = normalize_freqs(&counts);
    for f in freqs {
        out.extend_from_slice(&f.to_le_bytes());
    }

    // Cumulative table.
    let mut cum = [0u32; 257];
    for i in 0..256 {
        cum[i + 1] = cum[i] + freqs[i] as u32;
    }

    // Encode in reverse so the decoder reads forward.
    let mut state: u32 = RANS_LOW;
    let mut payload: Vec<u8> = Vec::with_capacity(input.len());
    for &sym in input.iter().rev() {
        let f = freqs[sym as usize] as u32;
        debug_assert!(f > 0);
        let x_max = ((RANS_LOW >> PROB_BITS) << 8) * f;
        while state >= x_max {
            payload.push(state as u8);
            state >>= 8;
        }
        state = (state / f) * PROB_SCALE + (state % f) + cum[sym as usize];
    }
    out.extend_from_slice(&state.to_le_bytes());
    payload.reverse();
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a frame produced by [`compress`].
///
/// # Errors
///
/// Returns an [`AnsError`] if the stream is truncated, has an invalid
/// frequency table, or decodes inconsistently.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, AnsError> {
    if frame.len() < 8 {
        return Err(AnsError::Truncated);
    }
    let len = u64::from_le_bytes(frame[0..8].try_into().unwrap()) as usize;
    if len == 0 {
        return Ok(Vec::new());
    }
    if frame.len() < 8 + 512 + 4 {
        return Err(AnsError::Truncated);
    }
    let mut freqs = [0u16; 256];
    for i in 0..256 {
        freqs[i] = u16::from_le_bytes(frame[8 + 2 * i..10 + 2 * i].try_into().unwrap());
    }
    let sum: u32 = freqs.iter().map(|&f| f as u32).sum();
    if sum != PROB_SCALE {
        return Err(AnsError::BadFrequencyTable);
    }
    let mut cum = [0u32; 257];
    for i in 0..256 {
        cum[i + 1] = cum[i] + freqs[i] as u32;
    }
    // Slot → symbol lookup.
    let mut sym_of = vec![0u8; PROB_SCALE as usize];
    for s in 0..256 {
        for slot in cum[s]..cum[s + 1] {
            sym_of[slot as usize] = s as u8;
        }
    }

    let mut pos = 8 + 512;
    let mut state = u32::from_le_bytes(frame[pos..pos + 4].try_into().unwrap());
    pos += 4;

    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let slot = state & (PROB_SCALE - 1);
        let sym = sym_of[slot as usize];
        let f = freqs[sym as usize] as u32;
        if f == 0 {
            return Err(AnsError::CorruptStream);
        }
        state = f * (state >> PROB_BITS) + slot - cum[sym as usize];
        while state < RANS_LOW {
            let Some(&b) = frame.get(pos) else {
                return Err(AnsError::Truncated);
            };
            state = (state << 8) | b as u32;
            pos += 1;
        }
        out.push(sym);
    }
    Ok(out)
}

/// Compressed/original size ratio for `input` (1.0 for empty input).
pub fn compression_ratio(input: &[u8]) -> f64 {
    super::ratio(input.len(), compress(input).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_simple() {
        let data = b"hello hello hello ans coding".to_vec();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![42u8; 10_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Highly redundant input compresses dramatically (header dominates).
        assert!(c.len() < 600, "compressed {} bytes", c.len());
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_random_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let len = rng.gen_range(1..5000);
            let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..16) as u8).collect();
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert_eq!(decompress(&c[..4]).unwrap_err(), AnsError::Truncated);
        assert_eq!(decompress(&c[..520]).unwrap_err(), AnsError::Truncated);
    }

    #[test]
    fn bad_frequency_table_errors() {
        let data = vec![7u8; 1000];
        let mut c = compress(&data);
        c[9] ^= 0x40; // corrupt a frequency entry
        assert_eq!(decompress(&c).unwrap_err(), AnsError::BadFrequencyTable);
    }

    #[test]
    fn int8_weights_compress_well_fp16_poorly() {
        // §3.3: "up to a 50% compression ratio" on weights, but "FP16 data
        // does not compress efficiently". Trained FC weights are heavy-
        // tailed: rare outliers set the symmetric quantization scale, so
        // the INT8 bulk concentrates in a few low bins and entropy-codes
        // to roughly half a byte... while FP16 mantissa bytes stay near
        // uniform.
        let mut rng = StdRng::seed_from_u64(11);
        let mut weights = crate::tensor::DenseTensor::gaussian(128, 256, 0.02, &mut rng);
        // ~1 % outlier entries at 30× scale, as in real trained matrices.
        for i in 0..weights.rows() {
            let v = weights.get(i, (i * 7) % 256) * 30.0;
            weights.set(i, (i * 7) % 256, v);
            let v = weights.get(i, (i * 13) % 256) * 30.0;
            weights.set(i, (i * 13) % 256, v);
        }
        // Static per-tensor weight quantization (§4.4): the global outlier
        // sets the scale, concentrating the bulk into a few bins.
        let q = crate::quant::quantize(&weights, crate::quant::Granularity::PerTensor);
        let int8: Vec<u8> = (0..128)
            .flat_map(|r| q.row(r).iter().map(|&v| v as u8))
            .collect();
        let int8_ratio = compression_ratio(&int8);
        assert!(int8_ratio < 0.6, "int8 ratio {int8_ratio}");

        let fp16 = crate::compress::fp16_weight_bytes(weights.data());
        let fp16_ratio = compression_ratio(&fp16);
        assert!(fp16_ratio > 0.75, "fp16 ratio {fp16_ratio}");
        assert!(int8_ratio < fp16_ratio);
    }

    #[test]
    fn near_entropy_on_skewed_data() {
        // Two symbols at 90/10: entropy = 0.469 bits/byte = ratio ~0.059.
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<u8> = (0..100_000)
            .map(|_| if rng.gen_bool(0.9) { 0u8 } else { 1u8 })
            .collect();
        let c = compress(&data);
        let bits_per_byte = (c.len() - 520) as f64 * 8.0 / data.len() as f64;
        assert!(bits_per_byte < 0.50, "achieved {bits_per_byte} bits/byte");
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
