//! LZSS sliding-window compression — the stand-in for the PCIe GZIP engine
//! (§3.3). DEFLATE = LZ77 + Huffman; LZSS is the same LZ77 family and
//! achieves comparable ratios on the structured host↔device traffic the
//! decompression engine targets (embedding rows, feature blobs).

use std::fmt;

/// Sliding-window size (matches DEFLATE's 32 KiB less a guard).
const WINDOW: usize = 32 * 1024;
/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length encodable in one token.
const MAX_MATCH: usize = 255 + MIN_MATCH;

/// Errors from decoding a corrupt LZSS stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzssError {
    /// The stream ended prematurely.
    Truncated,
    /// A back-reference points before the start of the output.
    BadReference,
}

impl fmt::Display for LzssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "lzss stream truncated"),
            LzssError::BadReference => write!(f, "lzss back-reference out of range"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Compresses `input`. Format: `len: u64` header, then groups of 8 tokens
/// preceded by a flag byte (bit set = match token of `offset: u16, len: u8`,
/// clear = literal byte).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());

    // 3-byte hash chains for match finding.
    const HASH_BITS: usize = 15;
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let hash = |data: &[u8], i: usize| -> usize {
        let h = (data[i] as usize) << 16 ^ (data[i + 1] as usize) << 8 ^ data[i + 2] as usize;
        (h.wrapping_mul(2654435761)) >> (32 - HASH_BITS) & ((1 << HASH_BITS) - 1)
    };

    let mut i = 0;
    let mut flags_pos = 0usize;
    let mut flag_bit = 8; // force new flag byte on first token
    let mut flags = 0u8;

    let mut push_token = |out: &mut Vec<u8>, is_match: bool, bytes: &[u8]| {
        if flag_bit == 8 {
            if flags_pos != 0 {
                out[flags_pos] = flags;
            }
            flags_pos = out.len();
            out.push(0);
            flags = 0;
            flag_bit = 0;
        }
        if is_match {
            flags |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(bytes);
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() && i + 2 < input.len() {
            let h = hash(input, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
                let max = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            let token = [
                (best_off & 0xff) as u8,
                (best_off >> 8) as u8,
                (best_len - MIN_MATCH) as u8,
            ];
            push_token(&mut out, true, &token);
            // Insert hash entries for skipped positions to keep matches
            // discoverable.
            let end = (i + best_len).min(input.len().saturating_sub(2));
            for (j, slot) in prev.iter_mut().enumerate().take(end).skip(i + 1) {
                let h = hash(input, j);
                *slot = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            push_token(&mut out, false, &input[i..i + 1]);
            i += 1;
        }
    }
    if flags_pos != 0 || !input.is_empty() {
        out[flags_pos] = flags;
    }
    out
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`LzssError`] on truncation or invalid back-references.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, LzssError> {
    if frame.len() < 8 {
        return Err(LzssError::Truncated);
    }
    let len = u64::from_le_bytes(frame[0..8].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(len);
    let mut pos = 8;
    let mut flags = 0u8;
    let mut flag_bit = 8;
    while out.len() < len {
        if flag_bit == 8 {
            let Some(&f) = frame.get(pos) else {
                return Err(LzssError::Truncated);
            };
            flags = f;
            flag_bit = 0;
            pos += 1;
        }
        let is_match = flags & (1 << flag_bit) != 0;
        flag_bit += 1;
        if is_match {
            if pos + 3 > frame.len() {
                return Err(LzssError::Truncated);
            }
            let off = frame[pos] as usize | (frame[pos + 1] as usize) << 8;
            let mlen = frame[pos + 2] as usize + MIN_MATCH;
            pos += 3;
            if off == 0 || off > out.len() {
                return Err(LzssError::BadReference);
            }
            let start = out.len() - off;
            for k in 0..mlen {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let Some(&b) = frame.get(pos) else {
                return Err(LzssError::Truncated);
            };
            out.push(b);
            pos += 1;
        }
    }
    out.truncate(len);
    Ok(out)
}

/// Compressed/original size ratio.
pub fn compression_ratio(input: &[u8]) -> f64 {
    super::ratio(input.len(), compress(input).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox!".to_vec();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [vec![], vec![1u8], vec![1, 2, 3]] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = vec![0xabu8; 100_000];
        let c = compress(&data);
        assert!(c.len() < data.len() / 20, "compressed to {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn structured_feature_blobs_compress() {
        // Repeating 64-byte "embedding rows" with small perturbations, the
        // PCIe traffic pattern the decompression engine targets.
        let mut rng = StdRng::seed_from_u64(3);
        let row: Vec<u8> = (0..64).map(|i| (i * 3) as u8).collect();
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(&row);
            if rng.gen_bool(0.1) {
                let n = data.len();
                data[n - 1] ^= 1;
            }
        }
        let r = compression_ratio(&data);
        assert!(r < 0.25, "structured ratio {r}");
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrips_with_bounded_expansion() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let c = compress(&data);
        // Worst case: 1 flag byte per 8 literals + header.
        assert!(c.len() <= data.len() + data.len() / 8 + 32);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_roundtrip_fuzz() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let len = rng.gen_range(0..3000);
            let alphabet = rng.gen_range(2..64u16) as u8;
            let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..alphabet)).collect();
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn truncated_errors() {
        let c = compress(&[9u8; 100]);
        assert_eq!(decompress(&c[..7]).unwrap_err(), LzssError::Truncated);
        assert_eq!(
            decompress(&c[..c.len() - 1]).unwrap_err(),
            LzssError::Truncated
        );
    }

    #[test]
    fn bad_reference_errors() {
        // Hand-craft: len 4, flag byte with match bit, offset beyond output.
        let mut frame = 4u64.to_le_bytes().to_vec();
        frame.push(0x01); // first token is a match
        frame.extend_from_slice(&[0x10, 0x00, 0x00]); // offset 16 into empty output
        assert_eq!(decompress(&frame).unwrap_err(), LzssError::BadReference);
    }
}
