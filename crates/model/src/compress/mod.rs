//! Lossless compression engines (§3.3).
//!
//! MTIA 2i ships two compressors: **ANS** for weights in device memory
//! (up to ~50 % ratio on INT8; FP16 "does not compress efficiently"), and a
//! **GZIP** engine on the PCIe path (up to 25 GB/s) that helps retrieval
//! models move large host↔device volumes. [`ans`] is a real rANS entropy
//! coder; [`lzss`] is a real LZ77-family byte compressor standing in for
//! DEFLATE (same family; what matters for the reproduction is the achieved
//! ratio, not bitstream compatibility).

pub mod ans;
pub mod lzss;

/// Ratio `compressed / original` (smaller is better; 0.5 = "50 %
/// compression ratio" in the paper's phrasing).
pub fn ratio(original_len: usize, compressed_len: usize) -> f64 {
    if original_len == 0 {
        return 1.0;
    }
    compressed_len as f64 / original_len as f64
}

/// Serializes quantized INT8 weights to bytes for compression studies.
pub fn int8_weight_bytes(weights: &[i8]) -> Vec<u8> {
    weights.iter().map(|&v| v as u8).collect()
}

/// Serializes FP16-rounded weights to their little-endian byte stream.
pub fn fp16_weight_bytes(weights: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(weights.len() * 2);
    for &w in weights {
        let h = f32_to_f16_bits(w);
        out.extend_from_slice(&h.to_le_bytes());
    }
    out
}

fn f32_to_f16_bits(v: f32) -> u16 {
    // Reuse the tensor module's conversion, extracting the bit pattern by
    // re-encoding the rounded value.
    let rounded = crate::tensor::f32_to_f16_to_f32(v);
    let bits = rounded.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    if rounded == 0.0 {
        return sign;
    }
    if rounded.is_nan() {
        return sign | 0x7e00;
    }
    if rounded.is_infinite() {
        return sign | 0x7c00;
    }
    let exp = ((bits >> 23) & 0xff) as i32 - 127;
    if exp < -14 {
        // Subnormal half.
        let frac = (bits & 0x007f_ffff) | 0x0080_0000;
        let shift = (-exp - 14 + 13) as u32;
        sign | (frac >> shift) as u16
    } else {
        let frac = ((bits & 0x007f_ffff) >> 13) as u16;
        sign | (((exp + 15) as u16) << 10) | frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert_eq!(ratio(100, 50), 0.5);
        assert_eq!(ratio(0, 10), 1.0);
    }

    #[test]
    fn fp16_bytes_length() {
        let bytes = fp16_weight_bytes(&[1.0, -2.0, 0.5]);
        assert_eq!(bytes.len(), 6);
    }

    #[test]
    fn fp16_bits_of_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
    }

    #[test]
    fn int8_bytes_are_two_complement() {
        let bytes = int8_weight_bytes(&[-1, 0, 1]);
        assert_eq!(bytes, vec![0xff, 0x00, 0x01]);
    }
}
