//! Memory-error injection (§5.1).
//!
//! The paper built an injection tool to find which model regions are most
//! sensitive to LPDDR bit flips: TBE indices, TBE table rows, and specific
//! bits of dense FP weights "can cause NaNs or output corruptions, with
//! some failures occurring with high probability". This module reproduces
//! that tool: it flips chosen bits in real tensors/index arrays and
//! classifies the downstream damage.

use rand::Rng;

use crate::tensor::DenseTensor;

/// Which memory region a flip targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionTarget {
    /// Dense FC weights (FP32 bit pattern).
    DenseWeights,
    /// Embedding-table rows.
    EmbeddingRows,
    /// TBE index arrays (u32).
    TbeIndices,
    /// Intermediate activations.
    Activations,
}

/// Severity of the observed corruption after one injected flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Output unchanged within tolerance (flip was masked).
    Benign,
    /// Output numerically wrong beyond tolerance but finite.
    SilentCorruption,
    /// Output contains NaN/Inf.
    NonFinite,
    /// An index escaped its valid range (out-of-bounds gather).
    OutOfBoundsIndex,
}

/// Flips bit `bit` (0 = LSB) of element `idx` in a dense tensor.
///
/// # Panics
///
/// Panics if `idx` or `bit` is out of range.
pub fn flip_f32_bit(t: &mut DenseTensor, idx: usize, bit: u32) {
    assert!(bit < 32, "f32 has 32 bits");
    let data = t.data_mut();
    assert!(idx < data.len(), "element index out of range");
    data[idx] = f32::from_bits(data[idx].to_bits() ^ (1 << bit));
}

/// Flips bit `bit` of a u32 index array entry.
///
/// # Panics
///
/// Panics if `idx` or `bit` is out of range.
pub fn flip_index_bit(indices: &mut [u32], idx: usize, bit: u32) {
    assert!(bit < 32, "u32 has 32 bits");
    assert!(idx < indices.len(), "index position out of range");
    indices[idx] ^= 1 << bit;
}

/// Classifies the damage a corrupted weight tensor causes to an FC output,
/// comparing against the clean output. `tolerance` is the relative error
/// below which the result counts as benign.
pub fn classify_fc_outcome(
    clean_out: &DenseTensor,
    corrupted_out: &DenseTensor,
    tolerance: f64,
) -> Outcome {
    if corrupted_out.has_non_finite() {
        return Outcome::NonFinite;
    }
    let mut max_rel = 0.0f64;
    let scale = clean_out.max_abs().max(1e-20) as f64;
    for (c, d) in clean_out.data().iter().zip(corrupted_out.data()) {
        let rel = ((*c as f64) - (*d as f64)).abs() / scale;
        max_rel = max_rel.max(rel);
    }
    if max_rel <= tolerance {
        Outcome::Benign
    } else {
        Outcome::SilentCorruption
    }
}

/// Result of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignReport {
    /// Trials run.
    pub trials: u32,
    /// Benign outcomes.
    pub benign: u32,
    /// Silent corruptions.
    pub silent: u32,
    /// NaN/Inf outcomes.
    pub non_finite: u32,
    /// Out-of-bounds indices.
    pub out_of_bounds: u32,
}

impl CampaignReport {
    /// Fraction of trials with *any* observable failure.
    pub fn failure_rate(&self) -> f64 {
        (self.silent + self.non_finite + self.out_of_bounds) as f64 / self.trials.max(1) as f64
    }

    fn record(&mut self, o: Outcome) {
        self.trials += 1;
        match o {
            Outcome::Benign => self.benign += 1,
            Outcome::SilentCorruption => self.silent += 1,
            Outcome::NonFinite => self.non_finite += 1,
            Outcome::OutOfBoundsIndex => self.out_of_bounds += 1,
        }
    }
}

/// Runs `trials` single-bit flips against FC weights and classifies each
/// outcome. High exponent bits of FP32 produce huge values → NaN/Inf or
/// gross corruption; mantissa bits are mostly benign.
pub fn weight_injection_campaign<R: Rng + ?Sized>(
    activations: &DenseTensor,
    weights: &DenseTensor,
    trials: u32,
    rng: &mut R,
) -> CampaignReport {
    let clean = activations.matmul(weights);
    let mut report = CampaignReport::default();
    for _ in 0..trials {
        let mut w = weights.clone();
        let idx = rng.gen_range(0..w.data().len());
        let bit = rng.gen_range(0..32);
        flip_f32_bit(&mut w, idx, bit);
        let out = activations.matmul(&w);
        report.record(classify_fc_outcome(&clean, &out, 1e-3));
    }
    report
}

/// Runs `trials` single-bit flips against a TBE index array with tables of
/// `valid_rows` rows, counting how many flips escape the valid range.
pub fn index_injection_campaign<R: Rng + ?Sized>(
    indices: &[u32],
    valid_rows: u32,
    trials: u32,
    rng: &mut R,
) -> CampaignReport {
    let mut report = CampaignReport::default();
    for _ in 0..trials {
        let mut idx = indices.to_vec();
        let pos = rng.gen_range(0..idx.len());
        let bit = rng.gen_range(0..32);
        flip_index_bit(&mut idx, pos, bit);
        if idx[pos] >= valid_rows {
            report.record(Outcome::OutOfBoundsIndex);
        } else if idx[pos] != indices[pos] {
            // Wrong row gathered: silently corrupts the pooled embedding.
            report.record(Outcome::SilentCorruption);
        } else {
            report.record(Outcome::Benign);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flip_is_involutive() {
        let mut t = DenseTensor::from_data(1, 2, vec![1.5, -2.25]);
        flip_f32_bit(&mut t, 0, 3);
        assert_ne!(t.get(0, 0), 1.5);
        flip_f32_bit(&mut t, 0, 3);
        assert_eq!(t.get(0, 0), 1.5);
    }

    #[test]
    fn exponent_msb_flip_creates_huge_or_nan() {
        // Flipping bit 30 (exponent MSB) of a normal float multiplies the
        // magnitude by ~2^128 → downstream NaN/Inf in any matmul.
        let mut t = DenseTensor::from_data(1, 1, vec![1.0]);
        flip_f32_bit(&mut t, 0, 30);
        assert!(t.get(0, 0).abs() > 1e30 || !t.get(0, 0).is_finite());
    }

    #[test]
    fn mantissa_lsb_flip_is_benign() {
        let x = DenseTensor::from_data(1, 1, vec![1.0]);
        let w = DenseTensor::from_data(1, 1, vec![1.0]);
        let clean = x.matmul(&w);
        let mut wc = w.clone();
        flip_f32_bit(&mut wc, 0, 0);
        let out = x.matmul(&wc);
        assert_eq!(classify_fc_outcome(&clean, &out, 1e-3), Outcome::Benign);
    }

    #[test]
    fn campaign_finds_high_probability_failures() {
        // §5.1: "specific bits in floating-point representations of dense
        // weights can cause NaNs or output corruptions, with some failures
        // occurring with high probability."
        let mut rng = StdRng::seed_from_u64(1);
        let x = DenseTensor::gaussian(8, 32, 1.0, &mut rng);
        let w = DenseTensor::gaussian(32, 16, 0.1, &mut rng);
        let report = weight_injection_campaign(&x, &w, 400, &mut rng);
        assert_eq!(report.trials, 400);
        assert!(
            report.failure_rate() > 0.2,
            "failure rate {}",
            report.failure_rate()
        );
        assert!(report.non_finite + report.silent > 0);
        assert!(report.benign > 0, "mantissa flips should often be benign");
    }

    #[test]
    fn index_flips_escape_range_often() {
        // Tables of 1M rows need 20 bits; flips in bits 20–31 always escape.
        let mut rng = StdRng::seed_from_u64(2);
        let indices: Vec<u32> = (0..256).map(|_| rng.gen_range(0..1_000_000)).collect();
        let report = index_injection_campaign(&indices, 1_000_000, 500, &mut rng);
        let oob = report.out_of_bounds as f64 / report.trials as f64;
        assert!(oob > 0.3, "out-of-bounds rate {oob}");
        // And nearly every in-range flip still gathers the wrong row.
        assert!(report.benign as f64 / report.trials as f64 <= 0.05);
    }

    #[test]
    fn classify_detects_nan() {
        let clean = DenseTensor::zeros(1, 1);
        let mut bad = DenseTensor::zeros(1, 1);
        bad.set(0, 0, f32::NAN);
        assert_eq!(classify_fc_outcome(&clean, &bad, 1e-3), Outcome::NonFinite);
    }
}
