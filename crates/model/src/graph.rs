//! The model graph IR.
//!
//! A [`Graph`] is a DAG of [`Node`]s over [`TensorDef`]s. It is deliberately
//! close to what TorchDynamo hands TorchInductor (§3.5): operators with
//! static shapes, tensors classified as inputs, weights, embedding tables,
//! activations, or outputs. The compiler crate rewrites graphs (fusion,
//! broadcast deferral), the autotuner re-snapshots them at different batch
//! sizes, and the simulator executes them.

use std::collections::HashMap;
use std::fmt;

use mtia_core::units::{Bytes, FlopCount};
use mtia_core::DType;

use crate::ops::{OpCategory, OpKind};
use crate::tensor::Shape;

/// Identifier of a tensor within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub(crate) usize);

/// Identifier of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl TensorId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The role a tensor plays, which determines where the memory-placement
/// logic may put it (§4.1: activations favour LLS; weights favour LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Model input arriving from the host.
    Input,
    /// Model output returned to the host.
    Output,
    /// Constant FC/attention weights.
    Weight,
    /// Embedding table (usually far too large for SRAM).
    EmbeddingTable,
    /// Intermediate activation.
    Activation,
}

/// A tensor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDef {
    /// Human-readable name.
    pub name: String,
    /// Shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Role.
    pub kind: TensorKind,
}

impl TensorDef {
    /// Size in bytes.
    pub fn bytes(&self) -> Bytes {
        self.shape.bytes(self.dtype)
    }
}

/// One operator application.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable name.
    pub name: String,
    /// The operator.
    pub op: OpKind,
    /// Input tensors (activations, weights, tables).
    pub inputs: Vec<TensorId>,
    /// Output tensors.
    pub outputs: Vec<TensorId>,
}

/// Errors from graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references a tensor that was never declared.
    UnknownTensor {
        /// The offending node.
        node: String,
    },
    /// An activation is consumed but no node produces it.
    UndefinedActivation {
        /// The tensor name.
        tensor: String,
    },
    /// Two nodes both write the same tensor.
    MultipleProducers {
        /// The tensor name.
        tensor: String,
    },
    /// The graph has a cycle.
    Cycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTensor { node } => {
                write!(f, "node `{node}` references an undeclared tensor")
            }
            GraphError::UndefinedActivation { tensor } => {
                write!(f, "activation `{tensor}` is consumed but never produced")
            }
            GraphError::MultipleProducers { tensor } => {
                write!(f, "tensor `{tensor}` has multiple producers")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Aggregate statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphStats {
    /// Total arithmetic work per batch.
    pub flops: FlopCount,
    /// Total FC/attention weight bytes.
    pub weight_bytes: Bytes,
    /// Total embedding-table bytes.
    pub table_bytes: Bytes,
    /// Number of nodes.
    pub nodes: usize,
    /// Nodes that are GEMM-class.
    pub gemm_nodes: usize,
    /// Nodes that are sparse (TBE).
    pub sparse_nodes: usize,
}

/// A model compute graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    batch: u64,
    tensors: Vec<TensorDef>,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph for a model executed at `batch` samples per
    /// invocation.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(name: impl Into<String>, batch: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Graph {
            name: name.into(),
            batch,
            tensors: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batch size the graph was built for.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Declares a tensor and returns its id.
    pub fn add_tensor(
        &mut self,
        name: impl Into<String>,
        shape: Shape,
        dtype: DType,
        kind: TensorKind,
    ) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorDef {
            name: name.into(),
            shape,
            dtype,
            kind,
        });
        id
    }

    /// Appends a node and returns its id. Nodes must be appended in a valid
    /// execution order (producers before consumers); [`Graph::validate`]
    /// checks this.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: impl Into<Vec<TensorId>>,
        outputs: impl Into<Vec<TensorId>>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            op,
            inputs: inputs.into(),
            outputs: outputs.into(),
        });
        id
    }

    /// All tensors.
    pub fn tensors(&self) -> &[TensorDef] {
        &self.tensors
    }

    /// All nodes, in insertion (execution) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a tensor definition.
    pub fn tensor(&self, id: TensorId) -> &TensorDef {
        &self.tensors[id.0]
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Replaces the node list (used by compiler passes). The caller must
    /// keep the order topological; [`Graph::validate`] verifies.
    pub fn set_nodes(&mut self, nodes: Vec<Node>) {
        self.nodes = nodes;
    }

    /// Re-classifies a tensor (used when splitting graphs across devices:
    /// a remote network's output becomes the merge network's input).
    pub fn set_tensor_kind(&mut self, id: TensorId, kind: TensorKind) {
        self.tensors[id.0].kind = kind;
    }

    /// Checks structural invariants: all tensor references resolve, each
    /// tensor has at most one producer, every consumed activation has a
    /// producer that appears earlier in the node order.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut producer: HashMap<TensorId, usize> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for &t in node.inputs.iter().chain(&node.outputs) {
                if t.0 >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor {
                        node: node.name.clone(),
                    });
                }
            }
            for &t in &node.outputs {
                if producer.insert(t, i).is_some() {
                    return Err(GraphError::MultipleProducers {
                        tensor: self.tensors[t.0].name.clone(),
                    });
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &t in &node.inputs {
                let def = &self.tensors[t.0];
                if matches!(def.kind, TensorKind::Activation | TensorKind::Output) {
                    match producer.get(&t) {
                        None => {
                            return Err(GraphError::UndefinedActivation {
                                tensor: def.name.clone(),
                            })
                        }
                        Some(&p) if p >= i => return Err(GraphError::Cycle),
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats {
            nodes: self.nodes.len(),
            ..GraphStats::default()
        };
        for node in &self.nodes {
            s.flops += node.op.flops();
            let dtype = self.node_dtype(node);
            match node.op.category() {
                OpCategory::Gemm => {
                    s.gemm_nodes += 1;
                    s.weight_bytes += node.op.weight_bytes(dtype);
                }
                OpCategory::Sparse => {
                    s.sparse_nodes += 1;
                    s.table_bytes += node.op.weight_bytes(dtype);
                }
                _ => {}
            }
        }
        s
    }

    /// Arithmetic work per sample — the paper's model-complexity axis
    /// (MFLOPS/sample in Fig. 6, GFLOPS/sample in Table 1).
    pub fn flops_per_sample(&self) -> FlopCount {
        FlopCount::new(self.stats().flops.as_f64() / self.batch as f64)
    }

    /// Total parameter footprint (weights + embedding tables).
    pub fn model_bytes(&self) -> Bytes {
        let s = self.stats();
        s.weight_bytes + s.table_bytes
    }

    /// The element dtype a node computes in (taken from its first output,
    /// falling back to its first input, then FP16).
    pub fn node_dtype(&self, node: &Node) -> DType {
        node.outputs
            .first()
            .or_else(|| node.inputs.first())
            .map(|&t| self.tensors[t.0].dtype)
            .unwrap_or(DType::Fp16)
    }

    /// Peak live activation bytes under the graph's node order — the
    /// "activation buffer" the §4.1 placement logic tries to pin in LLS.
    ///
    /// An activation is live from the node that produces it until its last
    /// consumer. Inputs are live from the start until their last consumer;
    /// weights and tables are not activations and are excluded.
    pub fn peak_activation_bytes(&self) -> Bytes {
        let order: Vec<usize> = (0..self.nodes.len()).collect();
        self.peak_activation_bytes_for_order(&order)
    }

    /// Peak live activation bytes under an explicit execution `order`
    /// (indices into [`Graph::nodes`]). Used by the §4.2 operator-scheduling
    /// search that minimizes liveness.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of node indices.
    pub fn peak_activation_bytes_for_order(&self, order: &[usize]) -> Bytes {
        assert_eq!(order.len(), self.nodes.len(), "order must cover every node");
        let mut position = vec![usize::MAX; self.nodes.len()];
        for (pos, &n) in order.iter().enumerate() {
            assert!(
                position[n] == usize::MAX && n < self.nodes.len(),
                "order must be a permutation"
            );
            position[n] = pos;
        }

        // For each activation-like tensor: birth = producer position (or 0
        // for inputs), death = max consumer position.
        let mut birth: HashMap<TensorId, usize> = HashMap::new();
        let mut death: HashMap<TensorId, usize> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let pos = position[i];
            for &t in &node.outputs {
                if self.is_bufferable(t) {
                    birth.insert(t, pos);
                    death.entry(t).or_insert(pos);
                }
            }
            for &t in &node.inputs {
                if self.is_bufferable(t) {
                    birth.entry(t).or_insert(0);
                    let d = death.entry(t).or_insert(pos);
                    *d = (*d).max(pos);
                }
            }
        }

        // Sweep.
        let steps = self.nodes.len();
        let mut delta = vec![0i128; steps + 1];
        for (&t, &b) in &birth {
            let d = death[&t];
            let bytes = self.tensors[t.0].bytes().as_u64() as i128;
            delta[b] += bytes;
            delta[d + 1] -= bytes;
        }
        let mut live = 0i128;
        let mut peak = 0i128;
        for d in delta.iter().take(steps) {
            live += d;
            peak = peak.max(live);
        }
        Bytes::new(peak as u64)
    }

    fn is_bufferable(&self, t: TensorId) -> bool {
        matches!(
            self.tensors[t.0].kind,
            TensorKind::Activation | TensorKind::Input | TensorKind::Output
        )
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "{} (batch {}, {} nodes, {} per sample, params {})",
            self.name,
            self.batch,
            s.nodes,
            self.flops_per_sample(),
            self.model_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in -> fc1 -> a -> fc2 -> out, with a 4x8 and 8x2 weights.
    fn two_layer() -> Graph {
        let mut g = Graph::new("test", 16);
        let input = g.add_tensor("in", Shape::matrix(16, 4), DType::Fp16, TensorKind::Input);
        let w1 = g.add_tensor("w1", Shape::matrix(4, 8), DType::Fp16, TensorKind::Weight);
        let a = g.add_tensor(
            "a",
            Shape::matrix(16, 8),
            DType::Fp16,
            TensorKind::Activation,
        );
        let w2 = g.add_tensor("w2", Shape::matrix(8, 2), DType::Fp16, TensorKind::Weight);
        let out = g.add_tensor("out", Shape::matrix(16, 2), DType::Fp16, TensorKind::Output);
        g.add_node(
            "fc1",
            OpKind::Fc {
                batch: 16,
                in_features: 4,
                out_features: 8,
            },
            [input, w1],
            [a],
        );
        g.add_node(
            "fc2",
            OpKind::Fc {
                batch: 16,
                in_features: 8,
                out_features: 2,
            },
            [a, w2],
            [out],
        );
        g
    }

    #[test]
    fn valid_graph_passes() {
        assert_eq!(two_layer().validate(), Ok(()));
    }

    #[test]
    fn stats_aggregate() {
        let g = two_layer();
        let s = g.stats();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.gemm_nodes, 2);
        assert_eq!(s.sparse_nodes, 0);
        assert_eq!(
            s.flops.as_f64(),
            2.0 * 16.0 * 4.0 * 8.0 + 2.0 * 16.0 * 8.0 * 2.0
        );
        assert_eq!(s.weight_bytes.as_u64(), 2 * (4 * 8 + 8 * 2));
        assert_eq!(g.flops_per_sample().as_f64(), s.flops.as_f64() / 16.0);
    }

    #[test]
    fn undefined_activation_detected() {
        let mut g = Graph::new("bad", 1);
        let ghost = g.add_tensor(
            "ghost",
            Shape::vector(4),
            DType::Fp16,
            TensorKind::Activation,
        );
        let out = g.add_tensor("out", Shape::vector(4), DType::Fp16, TensorKind::Output);
        g.add_node("ew", OpKind::Cast { elems: 4 }, [ghost], [out]);
        assert!(matches!(
            g.validate(),
            Err(GraphError::UndefinedActivation { .. })
        ));
    }

    #[test]
    fn multiple_producers_detected() {
        let mut g = Graph::new("bad", 1);
        let a = g.add_tensor("a", Shape::vector(4), DType::Fp16, TensorKind::Activation);
        g.add_node("n1", OpKind::Cast { elems: 4 }, [], [a]);
        g.add_node("n2", OpKind::Cast { elems: 4 }, [], [a]);
        assert!(matches!(
            g.validate(),
            Err(GraphError::MultipleProducers { .. })
        ));
    }

    #[test]
    fn consumer_before_producer_is_cycle() {
        let mut g = Graph::new("bad", 1);
        let a = g.add_tensor("a", Shape::vector(4), DType::Fp16, TensorKind::Activation);
        let b = g.add_tensor("b", Shape::vector(4), DType::Fp16, TensorKind::Activation);
        g.add_node("uses_b", OpKind::Cast { elems: 4 }, [b], [a]);
        g.add_node("makes_b", OpKind::Cast { elems: 4 }, [], [b]);
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn peak_activation_counts_overlap() {
        let g = two_layer();
        // At fc2: `a` (16x8 fp16 = 256 B) + input dead? input dies at fc1
        // (pos 0), a live 0..1, out live at 1.
        // Peak at pos 0: input (128) + a (256) = 384.
        // Peak at pos 1: a (256) + out (64) = 320.
        assert_eq!(g.peak_activation_bytes(), Bytes::new(384));
    }

    #[test]
    fn liveness_depends_on_order() {
        // Diamond: in -> (p1, p2) both -> join. Executing p1, p2, join keeps
        // both intermediates live; there is no better order, but a custom
        // order must give the same peak as default here.
        let mut g = Graph::new("diamond", 1);
        let input = g.add_tensor("in", Shape::vector(100), DType::Fp32, TensorKind::Input);
        let x1 = g.add_tensor(
            "x1",
            Shape::vector(100),
            DType::Fp32,
            TensorKind::Activation,
        );
        let x2 = g.add_tensor(
            "x2",
            Shape::vector(100),
            DType::Fp32,
            TensorKind::Activation,
        );
        let out = g.add_tensor("out", Shape::vector(100), DType::Fp32, TensorKind::Output);
        g.add_node("p1", OpKind::Cast { elems: 100 }, [input], [x1]);
        g.add_node("p2", OpKind::Cast { elems: 100 }, [input], [x2]);
        g.add_node(
            "join",
            OpKind::Elementwise {
                elems: 100,
                kind: crate::ops::EwKind::Arithmetic,
                arity: 2,
            },
            [x1, x2],
            [out],
        );
        let default = g.peak_activation_bytes();
        let same = g.peak_activation_bytes_for_order(&[0, 1, 2]);
        assert_eq!(default, same);
        // Peak is three tensors of 400 B: {in, x1, x2} at p2 (in dies
        // there), tying {x1, x2, out} at join.
        assert_eq!(default, Bytes::new(300 * 4));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let g = two_layer();
        let _ = g.peak_activation_bytes_for_order(&[0, 0]);
    }

    #[test]
    fn display_summarizes() {
        let g = two_layer();
        let s = g.to_string();
        assert!(s.contains("test"));
        assert!(s.contains("2 nodes"));
    }
}
