//! The HSTU ragged-attention bias and its piecewise LUT gather (§4.3).
//!
//! HSTU's attention "relies on a bias calculated from positional weights
//! and timestamps. This bias calculation involves table index
//! computations, which are then used to gather entries from these tables.
//! ... we repurposed the lookup table (LUT) support in the SIMD Engine for
//! the gather operation by performing it piecewise, loading each segment of
//! the weights and timestamp tables into the limited LUT memory."
//!
//! [`bias_direct`] is the reference gather; [`bias_piecewise_lut`] performs
//! the same computation under a hardware-sized LUT constraint, processing
//! one table segment per pass, and reports how many segment loads the
//! kernel needed.

/// The positional-weight and timestamp bias tables.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasTables {
    /// Relative-position bucket weights.
    pub positional: Vec<f32>,
    /// Time-delta bucket weights.
    pub timestamp: Vec<f32>,
}

impl BiasTables {
    /// Synthetic tables with smooth decay, as trained bias tables exhibit.
    pub fn synthetic(pos_buckets: usize, time_buckets: usize) -> Self {
        let positional = (0..pos_buckets)
            .map(|i| (-(i as f32) / pos_buckets as f32).exp())
            .collect();
        let timestamp = (0..time_buckets)
            .map(|i| 0.5 * (-(i as f32) / time_buckets as f32 * 2.0).exp())
            .collect();
        BiasTables {
            positional,
            timestamp,
        }
    }
}

/// Bucketizes a relative position `i - j` (attention is causal: `i ≥ j`).
pub fn position_bucket(i: usize, j: usize, buckets: usize) -> usize {
    debug_assert!(i >= j, "causal attention requires i ≥ j");
    (i - j).min(buckets - 1)
}

/// Log-bucketizes a timestamp delta in seconds.
pub fn time_bucket(delta_s: u64, buckets: usize) -> usize {
    if delta_s == 0 {
        return 0;
    }
    ((delta_s as f64).log2().floor() as usize + 1).min(buckets - 1)
}

/// Reference bias: full-table gather for every causal pair of a sequence
/// with per-position `timestamps`.
///
/// Returns a lower-triangular `seq × seq` matrix in row-major order.
pub fn bias_direct(tables: &BiasTables, timestamps: &[u64]) -> Vec<f32> {
    let seq = timestamps.len();
    let mut out = vec![0.0f32; seq * seq];
    for i in 0..seq {
        for j in 0..=i {
            let p = position_bucket(i, j, tables.positional.len());
            let t = time_bucket(timestamps[i] - timestamps[j], tables.timestamp.len());
            out[i * seq + j] = tables.positional[p] + tables.timestamp[t];
        }
    }
    out
}

/// Result of the piecewise LUT gather.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseResult {
    /// The bias matrix (identical to [`bias_direct`]'s output).
    pub bias: Vec<f32>,
    /// Table-segment loads into the LUT memory.
    pub segment_loads: usize,
}

/// The same computation under a LUT of `lut_entries` slots: each pass loads
/// one segment of one table and resolves every gather that falls inside it.
///
/// # Panics
///
/// Panics if `lut_entries` is zero.
pub fn bias_piecewise_lut(
    tables: &BiasTables,
    timestamps: &[u64],
    lut_entries: usize,
) -> PiecewiseResult {
    assert!(lut_entries > 0, "LUT must hold at least one entry");
    let seq = timestamps.len();
    let mut bias = vec![0.0f32; seq * seq];
    let mut segment_loads = 0;

    // Positional passes.
    let mut start = 0;
    while start < tables.positional.len() {
        let end = (start + lut_entries).min(tables.positional.len());
        let lut = &tables.positional[start..end]; // "loaded" segment
        segment_loads += 1;
        for i in 0..seq {
            for j in 0..=i {
                let p = position_bucket(i, j, tables.positional.len());
                if (start..end).contains(&p) {
                    bias[i * seq + j] += lut[p - start];
                }
            }
        }
        start = end;
    }

    // Timestamp passes.
    let mut start = 0;
    while start < tables.timestamp.len() {
        let end = (start + lut_entries).min(tables.timestamp.len());
        let lut = &tables.timestamp[start..end];
        segment_loads += 1;
        for i in 0..seq {
            for j in 0..=i {
                let t = time_bucket(timestamps[i] - timestamps[j], tables.timestamp.len());
                if (start..end).contains(&t) {
                    bias[i * seq + j] += lut[t - start];
                }
            }
        }
        start = end;
    }

    PiecewiseResult {
        bias,
        segment_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone_timestamps(seq: usize) -> Vec<u64> {
        (0..seq as u64)
            .map(|i| 1_700_000_000 + i * i * 13)
            .collect()
    }

    #[test]
    fn piecewise_matches_direct_exactly() {
        let tables = BiasTables::synthetic(64, 32);
        let ts = monotone_timestamps(48);
        let reference = bias_direct(&tables, &ts);
        for lut in [1usize, 7, 16, 64, 1000] {
            let pw = bias_piecewise_lut(&tables, &ts, lut);
            assert_eq!(pw.bias, reference, "lut size {lut}");
        }
    }

    #[test]
    fn segment_loads_scale_with_lut_pressure() {
        let tables = BiasTables::synthetic(64, 32);
        let ts = monotone_timestamps(16);
        let small = bias_piecewise_lut(&tables, &ts, 8);
        let large = bias_piecewise_lut(&tables, &ts, 64);
        assert_eq!(small.segment_loads, 64 / 8 + 32 / 8);
        assert_eq!(large.segment_loads, 1 + 1);
        assert!(small.segment_loads > large.segment_loads);
    }

    #[test]
    fn bias_is_causal_lower_triangular() {
        let tables = BiasTables::synthetic(16, 16);
        let ts = monotone_timestamps(8);
        let b = bias_direct(&tables, &ts);
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_eq!(b[i * 8 + j], 0.0, "upper triangle must be empty");
            }
            assert!(b[i * 8 + i] > 0.0, "diagonal carries the zero-delta bias");
        }
    }

    #[test]
    fn buckets_behave() {
        assert_eq!(position_bucket(10, 10, 64), 0);
        assert_eq!(position_bucket(100, 0, 64), 63); // clamped
        assert_eq!(time_bucket(0, 32), 0);
        assert_eq!(time_bucket(1, 32), 1);
        assert!(time_bucket(1 << 40, 32) == 31); // clamped
                                                 // Log bucketing: doubling the delta moves one bucket.
        assert_eq!(time_bucket(1024, 32), time_bucket(512, 32) + 1);
    }

    #[test]
    fn recency_dominates_the_bias() {
        // Trained-style decaying tables: adjacent history gets more bias
        // than distant history — the property ragged attention exploits.
        let tables = BiasTables::synthetic(64, 32);
        let ts = monotone_timestamps(32);
        let b = bias_direct(&tables, &ts);
        let recent = b[31 * 32 + 30];
        let distant = b[31 * 32];
        assert!(recent > distant, "recent {recent} vs distant {distant}");
    }
}
