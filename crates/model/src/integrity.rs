//! Integrity primitives against §5.1 silent data corruption.
//!
//! The injection campaigns ([`crate::error_inject`]) showed that LPDDR
//! bit flips in TBE indices, embedding rows, and dense weights corrupt
//! outputs "with some failures occurring with high probability". These
//! are the *defensive* counterparts, designed so the serving path can
//! detect corruption before anything is served:
//!
//! * [`ChecksummedTable`] — per-embedding-row CRC-32 with verify-on-read
//!   gather. CRC-32 detects **every** single-bit error (and any burst of
//!   ≤ 32 bits) in a row, so the §5.1 single-flip model is fully covered
//!   by construction; a property test pins this.
//! * Index guards — [`ChecksummedTable::gather_pooled`] bounds-checks
//!   every index (the out-of-bounds-gather failure mode), and
//!   [`index_stream_checksum`] gives an end-to-end checksum over a
//!   request's index stream so staging corruption is caught even when
//!   the flipped index stays in range.
//! * [`OutputGuard`] — NaN/Inf plus a calibrated magnitude bound on
//!   dense-layer outputs (catches the exponent-bit flips that explode).
//! * [`output_fingerprint`] — an exact bit-level digest of an output
//!   tensor, the comparison primitive behind canary requests and shadow
//!   re-execution voting (a deterministic replay on equivalent devices
//!   must be bit-identical, so any divergence is corruption).

use std::fmt;

use crate::tensor::DenseTensor;

/// A violation one of the integrity mechanisms detected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntegrityViolation {
    /// A row's stored CRC-32 no longer matches its data.
    RowChecksumMismatch {
        /// The failing row.
        row: usize,
    },
    /// An index escaped the table's valid row range.
    IndexOutOfBounds {
        /// Position within the index stream.
        position: usize,
        /// The offending index value.
        index: u32,
        /// Number of valid rows.
        rows: u32,
    },
    /// The staged index stream's checksum disagrees with the checksum
    /// computed at submission time.
    IndexStreamMismatch,
    /// An output element is NaN or infinite.
    NonFiniteOutput {
        /// Element index (row-major).
        index: usize,
    },
    /// An output element exceeded the calibrated magnitude bound.
    OutputOutOfRange {
        /// Element index (row-major).
        index: usize,
        /// The offending value.
        value: f32,
        /// The calibrated bound it exceeded.
        bound: f32,
    },
}

impl fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IntegrityViolation::RowChecksumMismatch { row } => {
                write!(f, "row {row} failed its CRC-32 verify-on-read")
            }
            IntegrityViolation::IndexOutOfBounds {
                position,
                index,
                rows,
            } => write!(
                f,
                "index {index} at stream position {position} escapes {rows} rows"
            ),
            IntegrityViolation::IndexStreamMismatch => {
                write!(f, "staged index stream checksum mismatch")
            }
            IntegrityViolation::NonFiniteOutput { index } => {
                write!(f, "output element {index} is NaN/Inf")
            }
            IntegrityViolation::OutputOutOfRange {
                index,
                value,
                bound,
            } => write!(f, "output element {index} = {value} exceeds bound {bound}"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte stream.
///
/// Bitwise, table-free: the fleet runs this rarely enough (row reads in
/// the *simulated* guarded path, memtest scrubs) that clarity wins, and
/// the polynomial's guarantee — any single-bit error and any error burst
/// of length ≤ 32 is detected — is exactly the §5.1 fault model.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for byte in bytes {
        crc ^= *byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// CRC-32 over a row of `f32`s, hashing exact bit patterns.
pub fn row_checksum(row: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(row.len() * 4);
    for v in row {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    crc32(&bytes)
}

/// End-to-end checksum over a request's index stream. Computed by the
/// submitter, re-computed after staging; a flipped staged index — even
/// one that stays in range — breaks the match.
pub fn index_stream_checksum(indices: &[u32]) -> u32 {
    let mut bytes = Vec::with_capacity(indices.len() * 4);
    for i in indices {
        bytes.extend_from_slice(&i.to_le_bytes());
    }
    crc32(&bytes)
}

/// An embedding table with a CRC-32 per row, verified on every read.
///
/// The checksums model the small metadata region the paper's software-
/// hashing mitigation would protect (assumed held in parity-protected
/// SRAM); the bulk rows live in unprotected LPDDR and are what the fault
/// injector corrupts.
#[derive(Debug, Clone, PartialEq)]
pub struct ChecksummedTable {
    table: DenseTensor,
    checksums: Vec<u32>,
}

impl ChecksummedTable {
    /// Wraps a table, computing one CRC-32 per row.
    pub fn new(table: DenseTensor) -> Self {
        let checksums = (0..table.rows())
            .map(|r| row_checksum(table.row(r)))
            .collect();
        ChecksummedTable { table, checksums }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// The underlying tensor (reads through here skip verification).
    pub fn table(&self) -> &DenseTensor {
        &self.table
    }

    /// Mutable access to the raw row data *without* updating checksums —
    /// this is the corruption surface the fault injector flips bits in.
    pub fn data_mut_unprotected(&mut self) -> &mut DenseTensor {
        &mut self.table
    }

    /// Verifies and returns row `r`.
    pub fn verify_row(&self, r: usize) -> Result<&[f32], IntegrityViolation> {
        let row = self.table.row(r);
        if row_checksum(row) == self.checksums[r] {
            Ok(row)
        } else {
            Err(IntegrityViolation::RowChecksumMismatch { row: r })
        }
    }

    /// Guarded pooled gather: bounds-checks every index, verifies every
    /// touched row's checksum, and sums the rows (sum pooling, the TBE
    /// default). First violation wins.
    pub fn gather_pooled(&self, indices: &[u32]) -> Result<Vec<f32>, IntegrityViolation> {
        let rows = self.rows() as u32;
        let mut pooled = vec![0.0f32; self.dim()];
        for (position, &index) in indices.iter().enumerate() {
            if index >= rows {
                return Err(IntegrityViolation::IndexOutOfBounds {
                    position,
                    index,
                    rows,
                });
            }
            let row = self.verify_row(index as usize)?;
            for (p, v) in pooled.iter_mut().zip(row) {
                *p += v;
            }
        }
        Ok(pooled)
    }

    /// Unguarded pooled gather — the pre-defense serving path. An
    /// out-of-range index wraps modulo the table size (reads whatever
    /// memory sits there), and corrupted rows are consumed silently.
    pub fn gather_pooled_unguarded(&self, indices: &[u32]) -> Vec<f32> {
        let rows = self.rows() as u32;
        let mut pooled = vec![0.0f32; self.dim()];
        for &index in indices {
            let row = self.table.row((index % rows) as usize);
            for (p, v) in pooled.iter_mut().zip(row) {
                *p += v;
            }
        }
        pooled
    }

    /// Scrubs the whole table: returns every row whose checksum fails.
    /// This is the targeted-memtest primitive the quarantine workflow
    /// runs on suspect devices.
    pub fn scrub(&self) -> Vec<usize> {
        (0..self.rows())
            .filter(|&r| self.verify_row(r).is_err())
            .collect()
    }

    /// Restores corrupted rows from a golden replica (the host-side
    /// copy every inference table is loaded from) and returns how many
    /// rows were repaired.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn repair_from(&mut self, golden: &ChecksummedTable) -> usize {
        assert_eq!(
            (self.rows(), self.dim()),
            (golden.rows(), golden.dim()),
            "repair requires matching shapes"
        );
        let bad = self.scrub();
        for &r in &bad {
            let src = golden.table.row(r).to_vec();
            self.table.row_mut(r).copy_from_slice(&src);
            self.checksums[r] = golden.checksums[r];
        }
        bad.len()
    }
}

/// NaN/Inf + magnitude guard on dense-layer outputs, calibrated from
/// clean runs so it never fires on uncorrupted traffic at the default
/// margin (a property test pins this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputGuard {
    /// Absolute bound: any |element| above this trips the guard.
    pub max_abs: f32,
}

/// Default calibration margin: the clean-run maximum times this factor.
/// Wide enough that distribution-tail outputs never false-positive,
/// tight enough that exponent-bit flips (× 2^many) always trip.
pub const DEFAULT_GUARD_MARGIN: f32 = 4.0;

impl OutputGuard {
    /// Calibrates the bound as `margin` × the max |element| across the
    /// sample outputs.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `margin < 1`.
    pub fn calibrate(samples: &[DenseTensor], margin: f32) -> Self {
        assert!(!samples.is_empty(), "calibration needs sample outputs");
        assert!(margin >= 1.0, "margin below 1 rejects calibration data");
        let max = samples.iter().map(|t| t.max_abs()).fold(0.0f32, f32::max);
        OutputGuard {
            max_abs: (max * margin).max(f32::MIN_POSITIVE),
        }
    }

    /// Checks an output tensor; first violation wins.
    pub fn check(&self, out: &DenseTensor) -> Result<(), IntegrityViolation> {
        for (index, &v) in out.data().iter().enumerate() {
            if !v.is_finite() {
                return Err(IntegrityViolation::NonFiniteOutput { index });
            }
            if v.abs() > self.max_abs {
                return Err(IntegrityViolation::OutputOutOfRange {
                    index,
                    value: v,
                    bound: self.max_abs,
                });
            }
        }
        Ok(())
    }
}

/// Exact bit-level digest of an output tensor (FNV-1a over element bit
/// patterns and the shape). Deterministic replay on equivalent devices
/// is bit-identical, so canary and shadow comparisons use exact equality
/// — any divergence is evidence of corruption, not jitter.
pub fn output_fingerprint(out: &DenseTensor) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(out.rows() as u64);
    mix(out.cols() as u64);
    for v in out.data() {
        mix(v.to_bits() as u64);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_inject::flip_f32_bit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(seed: u64) -> ChecksummedTable {
        let mut rng = StdRng::seed_from_u64(seed);
        ChecksummedTable::new(DenseTensor::gaussian(16, 8, 1.0, &mut rng))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_gather_verifies_and_pools() {
        let t = table(1);
        let pooled = t.gather_pooled(&[0, 3, 3, 15]).expect("clean table");
        // Accumulate in gather order: fp addition is not associative.
        let expected: Vec<f32> = (0..t.dim())
            .map(|c| {
                let mut acc = t.table().get(0, c);
                acc += t.table().get(3, c);
                acc += t.table().get(3, c);
                acc += t.table().get(15, c);
                acc
            })
            .collect();
        assert_eq!(pooled, expected);
    }

    #[test]
    fn any_single_bit_flip_is_detected_on_read() {
        let mut t = table(2);
        flip_f32_bit(t.data_mut_unprotected(), 5 * 8 + 2, 17);
        assert_eq!(
            t.verify_row(5),
            Err(IntegrityViolation::RowChecksumMismatch { row: 5 })
        );
        assert_eq!(
            t.gather_pooled(&[1, 5]),
            Err(IntegrityViolation::RowChecksumMismatch { row: 5 })
        );
        // Untouched rows still verify.
        assert!(t.verify_row(4).is_ok());
    }

    #[test]
    fn unguarded_gather_consumes_corruption_silently() {
        let mut t = table(3);
        flip_f32_bit(t.data_mut_unprotected(), 0, 30); // exponent MSB
        let pooled = t.gather_pooled_unguarded(&[0]);
        assert!(pooled.iter().any(|v| v.abs() > 1e20 || !v.is_finite()));
        // And an out-of-range index silently wraps instead of failing.
        let wrapped = t.gather_pooled_unguarded(&[16 + 3]);
        assert_eq!(wrapped, t.gather_pooled_unguarded(&[3]));
    }

    #[test]
    fn bounds_guard_catches_escaped_index() {
        let t = table(4);
        assert_eq!(
            t.gather_pooled(&[2, 99]),
            Err(IntegrityViolation::IndexOutOfBounds {
                position: 1,
                index: 99,
                rows: 16
            })
        );
    }

    #[test]
    fn index_stream_checksum_catches_in_range_flips() {
        let indices = [3u32, 7, 1, 12];
        let submitted = index_stream_checksum(&indices);
        let mut staged = indices;
        staged[2] ^= 1 << 2; // 1 → 5: still in range, silently wrong row
        assert!(staged.iter().all(|&i| i < 16));
        assert_ne!(index_stream_checksum(&staged), submitted);
    }

    #[test]
    fn scrub_and_repair_restore_the_table() {
        let golden = table(5);
        let mut t = golden.clone();
        flip_f32_bit(t.data_mut_unprotected(), 2 * 8, 12);
        flip_f32_bit(t.data_mut_unprotected(), 9 * 8 + 7, 3);
        assert_eq!(t.scrub(), vec![2, 9]);
        assert_eq!(t.repair_from(&golden), 2);
        assert!(t.scrub().is_empty());
        assert_eq!(t, golden);
    }

    #[test]
    fn output_guard_calibration_and_detection() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<DenseTensor> = (0..8)
            .map(|_| DenseTensor::gaussian(1, 8, 1.0, &mut rng))
            .collect();
        let guard = OutputGuard::calibrate(&samples, DEFAULT_GUARD_MARGIN);
        for s in &samples {
            assert_eq!(guard.check(s), Ok(()), "clean outputs must pass");
        }
        let mut bad = samples[0].clone();
        bad.set(0, 3, f32::NAN);
        assert_eq!(
            guard.check(&bad),
            Err(IntegrityViolation::NonFiniteOutput { index: 3 })
        );
        let mut huge = samples[0].clone();
        huge.set(0, 1, guard.max_abs * 2.0);
        assert!(matches!(
            guard.check(&huge),
            Err(IntegrityViolation::OutputOutOfRange { index: 1, .. })
        ));
    }

    #[test]
    fn fingerprint_is_exact_and_shape_sensitive() {
        let a = DenseTensor::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseTensor::from_data(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        assert_ne!(output_fingerprint(&a), output_fingerprint(&b));
        let mut c = a.clone();
        assert_eq!(output_fingerprint(&a), output_fingerprint(&c));
        flip_f32_bit(&mut c, 3, 0); // mantissa LSB — still a different digest
        assert_ne!(output_fingerprint(&a), output_fingerprint(&c));
    }
}
