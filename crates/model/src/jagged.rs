//! Jagged (ragged) tensors for sequence embeddings (§4.3).
//!
//! Sequence models like HSTU consume per-user history sequences whose
//! lengths follow a skewed distribution. A [`JaggedTensor`] stores the
//! concatenated rows plus an offsets array, exactly like PyTorch/FBGEMM
//! jagged tensors, and provides the conversion and math operators §4.3
//! says the chip needed: jagged↔dense conversion, row-wise reduction, and
//! elementwise combination.

use std::fmt;

use crate::tensor::DenseTensor;

/// A 2-D jagged tensor: `batch` rows of varying length, each element a
/// vector of `dim` values.
#[derive(Debug, Clone, PartialEq)]
pub struct JaggedTensor {
    /// Row boundaries: row `i` spans `offsets[i]..offsets[i+1]` positions.
    offsets: Vec<usize>,
    /// Concatenated values, `total_positions × dim`, row-major.
    values: Vec<f32>,
    /// Vector width per position.
    dim: usize,
}

impl JaggedTensor {
    /// Creates a jagged tensor from per-row lengths, zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn zeros(lengths: &[usize], dim: usize) -> Self {
        assert!(dim > 0, "zero-sized embedding dimension");
        let mut offsets = Vec::with_capacity(lengths.len() + 1);
        offsets.push(0);
        let mut total = 0;
        for &l in lengths {
            total += l;
            offsets.push(total);
        }
        JaggedTensor {
            offsets,
            values: vec![0.0; total * dim],
            dim,
        }
    }

    /// Creates a jagged tensor from offsets and values.
    ///
    /// # Panics
    ///
    /// Panics if offsets are not monotonically non-decreasing starting at 0,
    /// or if the value length does not match.
    pub fn from_parts(offsets: Vec<usize>, values: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "zero-sized embedding dimension");
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        assert_eq!(
            values.len(),
            offsets.last().unwrap() * dim,
            "value buffer does not match offsets × dim"
        );
        JaggedTensor {
            offsets,
            values,
            dim,
        }
    }

    /// Number of rows (batch size).
    pub fn batch(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Vector width per position.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length (number of positions) of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn len_of(&self, i: usize) -> usize {
        assert!(i < self.batch(), "row {i} out of bounds");
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Total positions across all rows.
    pub fn total_positions(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Maximum row length.
    pub fn max_len(&self) -> usize {
        (0..self.batch()).map(|i| self.len_of(i)).max().unwrap_or(0)
    }

    /// The values of row `i` (`len_of(i) × dim`, row-major).
    pub fn row(&self, i: usize) -> &[f32] {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        &self.values[s * self.dim..e * self.dim]
    }

    /// Mutable values of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        &mut self.values[s * self.dim..e * self.dim]
    }

    /// All concatenated values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Converts to a dense `batch × (max_len · dim)` tensor, zero-padding
    /// short rows — the jagged→dense operator of §4.3.
    pub fn to_dense(&self) -> DenseTensor {
        let max_len = self.max_len().max(1);
        let mut out = DenseTensor::zeros(self.batch().max(1), max_len * self.dim);
        for i in 0..self.batch() {
            let row = self.row(i);
            out.row_mut(i)[..row.len()].copy_from_slice(row);
        }
        out
    }

    /// Builds a jagged tensor from the first `lengths[i]` positions of each
    /// dense row — the dense→jagged operator.
    ///
    /// # Panics
    ///
    /// Panics if a requested length exceeds the dense row capacity or the
    /// batch sizes disagree.
    pub fn from_dense(dense: &DenseTensor, lengths: &[usize], dim: usize) -> Self {
        assert_eq!(dense.rows(), lengths.len(), "batch mismatch");
        let mut jagged = JaggedTensor::zeros(lengths, dim);
        for (i, &len) in lengths.iter().enumerate() {
            assert!(
                len * dim <= dense.cols(),
                "row {i} longer than dense capacity"
            );
            let src = &dense.row(i)[..len * dim];
            jagged.row_mut(i).copy_from_slice(src);
        }
        jagged
    }

    /// Sum-pools each row to a single `dim`-vector, producing a dense
    /// `batch × dim` tensor (embedding pooling).
    pub fn sum_pool(&self) -> DenseTensor {
        let mut out = DenseTensor::zeros(self.batch().max(1), self.dim);
        for i in 0..self.batch() {
            let row = self.row(i);
            let dst = out.row_mut(i);
            for pos in row.chunks_exact(self.dim) {
                for (d, v) in dst.iter_mut().zip(pos) {
                    *d += v;
                }
            }
        }
        out
    }

    /// Elementwise product with another jagged tensor of identical layout
    /// (the Hadamard product §4.3 mentions).
    ///
    /// # Panics
    ///
    /// Panics if layouts differ.
    pub fn hadamard(&self, other: &JaggedTensor) -> JaggedTensor {
        assert_eq!(self.offsets, other.offsets, "jagged layouts differ");
        assert_eq!(self.dim, other.dim, "jagged dims differ");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .collect();
        JaggedTensor {
            offsets: self.offsets.clone(),
            values,
            dim: self.dim,
        }
    }

    /// Applies a `dim × out_dim` linear transformation to every position.
    pub fn linear(&self, weight: &DenseTensor) -> JaggedTensor {
        assert_eq!(weight.rows(), self.dim, "weight rows must equal dim");
        let out_dim = weight.cols();
        let mut values = vec![0.0f32; self.total_positions() * out_dim];
        for (p, pos) in self.values.chunks_exact(self.dim).enumerate() {
            let dst = &mut values[p * out_dim..(p + 1) * out_dim];
            for (k, &x) in pos.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                for (d, w) in dst.iter_mut().zip(weight.row(k)) {
                    *d += x * w;
                }
            }
        }
        JaggedTensor {
            offsets: self.offsets.clone(),
            values,
            dim: out_dim,
        }
    }

    /// Fraction of a padded dense representation that would be wasted —
    /// why ragged attention matters for skewed length distributions.
    pub fn padding_waste(&self) -> f64 {
        let dense = self.batch() * self.max_len();
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.total_positions() as f64 / dense as f64
    }
}

impl fmt::Display for JaggedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jagged[batch {}, positions {}, dim {}]",
            self.batch(),
            self.total_positions(),
            self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JaggedTensor {
        // Rows of lengths 2, 0, 1 with dim 2.
        let mut j = JaggedTensor::zeros(&[2, 0, 1], 2);
        j.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        j.row_mut(2).copy_from_slice(&[5.0, 6.0]);
        j
    }

    #[test]
    fn construction_and_shape() {
        let j = sample();
        assert_eq!(j.batch(), 3);
        assert_eq!(j.len_of(0), 2);
        assert_eq!(j.len_of(1), 0);
        assert_eq!(j.len_of(2), 1);
        assert_eq!(j.total_positions(), 3);
        assert_eq!(j.max_len(), 2);
        assert_eq!(j.to_string(), "jagged[batch 3, positions 3, dim 2]");
    }

    #[test]
    fn dense_roundtrip() {
        let j = sample();
        let d = j.to_dense();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 4); // max_len 2 × dim 2
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.row(1), &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(d.row(2), &[5.0, 6.0, 0.0, 0.0]);
        let back = JaggedTensor::from_dense(&d, &[2, 0, 1], 2);
        assert_eq!(back, j);
    }

    #[test]
    fn sum_pool_reduces_rows() {
        let j = sample();
        let p = j.sum_pool();
        assert_eq!(p.row(0), &[4.0, 6.0]);
        assert_eq!(p.row(1), &[0.0, 0.0]);
        assert_eq!(p.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn hadamard_elementwise() {
        let j = sample();
        let h = j.hadamard(&j);
        assert_eq!(h.row(0), &[1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn hadamard_layout_mismatch_panics() {
        let a = JaggedTensor::zeros(&[1, 2], 2);
        let b = JaggedTensor::zeros(&[2, 1], 2);
        let _ = a.hadamard(&b);
    }

    #[test]
    fn linear_transforms_positions() {
        let j = sample();
        // Weight [[1,0,1],[0,1,1]]: out = (x, y, x+y).
        let w = DenseTensor::from_data(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0]);
        let out = j.linear(&w);
        assert_eq!(out.dim(), 3);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0, 3.0, 4.0, 7.0]);
        assert_eq!(out.len_of(1), 0);
    }

    #[test]
    fn padding_waste_for_skewed_lengths() {
        // One long row among short ones wastes most of the dense layout —
        // the HSTU motivation.
        let j = JaggedTensor::zeros(&[100, 1, 1, 1], 4);
        assert!(j.padding_waste() > 0.7, "waste {}", j.padding_waste());
        let uniform = JaggedTensor::zeros(&[5, 5, 5], 4);
        assert_eq!(uniform.padding_waste(), 0.0);
    }

    #[test]
    fn from_parts_validates() {
        let j = JaggedTensor::from_parts(vec![0, 1, 3], vec![0.0; 6], 2);
        assert_eq!(j.batch(), 2);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn bad_offsets_panic() {
        let _ = JaggedTensor::from_parts(vec![1, 2], vec![0.0; 2], 2);
    }
}
