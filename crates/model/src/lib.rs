//! Model-side substrates of the MTIA 2i reproduction: a graph IR with the
//! paper's operator vocabulary, generators for Meta's production model
//! families (DLRM, DHEN, HSTU, plus a Llama-style LLM for the suitability
//! study), jagged tensors, dynamic INT8 quantization, real rANS/LZSS
//! compression, 2:4 structured sparsity, and the §5.1 memory-error
//! injection tool.
//!
//! # Quick tour
//!
//! ```
//! use mtia_model::models::dlrm::DlrmConfig;
//!
//! let graph = DlrmConfig::small(256).build();
//! assert_eq!(graph.validate(), Ok(()));
//! println!("{graph}"); // name, nodes, MFLOPS/sample, parameter bytes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod error_inject;
pub mod graph;
pub mod hstu_bias;
pub mod integrity;
pub mod jagged;
pub mod models;
pub mod norm;
pub mod ops;
pub mod quant;
pub mod sparsity;
pub mod tensor;

pub use graph::{Graph, GraphError, GraphStats, Node, NodeId, TensorDef, TensorId, TensorKind};
pub use integrity::{ChecksummedTable, IntegrityViolation, OutputGuard};
pub use ops::{OpCategory, OpKind, TbeParams};
pub use tensor::{DenseTensor, Shape};
