//! DHEN: Deep and Hierarchical Ensemble Network (§2, §6).
//!
//! The late-stage-ranking architecture of the paper's case study: stacked
//! layers with skip connections and layer normalization, where each layer is
//! an ensemble of a Factorization Machine Block (high-order interactions)
//! and a Linear Compression Block, optionally followed by a network of
//! multi-headed-attention blocks (the model change described in §6).

use mtia_core::DType;

use crate::graph::{Graph, TensorKind};
use crate::ops::{AttentionParams, OpKind, TbeParams};
use crate::tensor::Shape;

use super::{append_add, append_layernorm, append_mlp, append_sigmoid_head};

/// Configuration of the attention sub-network some DHEN variants add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhaBlockConfig {
    /// Number of MHA blocks.
    pub blocks: u64,
    /// Heads per block.
    pub heads: u64,
    /// Sequence length the hidden state is folded into.
    pub seq: u64,
    /// Per-head dimension.
    pub head_dim: u64,
}

/// Configuration of a DHEN instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DhenConfig {
    /// Model name.
    pub name: String,
    /// Batch size.
    pub batch: u64,
    /// Dense input features.
    pub dense_features: u64,
    /// Number of embedding tables.
    pub num_tables: u64,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Embedding dimension.
    pub embedding_dim: u64,
    /// Lookups per sample per table.
    pub pooling_factor: u64,
    /// Hidden width of the DHEN stack.
    pub hidden: u64,
    /// Number of stacked DHEN layers.
    pub layers: u64,
    /// Feature vectors inside each Factorization Machine block.
    pub fm_features: u64,
    /// Width of the Linear Compression Block.
    pub lcb_width: u64,
    /// Optional MHA sub-network appended after the stack.
    pub mha: Option<MhaBlockConfig>,
    /// Top MLP widths before the prediction head.
    pub top_mlp: Vec<u64>,
    /// Element type.
    pub dtype: DType,
}

impl DhenConfig {
    /// A small reference configuration for tests.
    pub fn small(batch: u64) -> Self {
        DhenConfig {
            name: "dhen-small".to_string(),
            batch,
            dense_features: 256,
            num_tables: 32,
            rows_per_table: 2_000_000,
            embedding_dim: 96,
            pooling_factor: 20,
            hidden: 512,
            layers: 4,
            fm_features: 16,
            lcb_width: 256,
            mha: None,
            top_mlp: vec![512, 128],
            dtype: DType::Fp16,
        }
    }

    /// Builds the compute graph.
    pub fn build(&self) -> Graph {
        let b = self.batch;
        let dt = self.dtype;
        let mut g = Graph::new(self.name.clone(), b);

        // Dense + sparse front end.
        let dense_in = g.add_tensor(
            "dense_input",
            Shape::matrix(b, self.dense_features),
            dt,
            TensorKind::Input,
        );
        let tbe = TbeParams {
            num_tables: self.num_tables,
            rows_per_table: self.rows_per_table,
            embedding_dim: self.embedding_dim,
            pooling_factor: self.pooling_factor,
            batch: b,
            weighted: false,
            pooled: true,
        };
        let indices = g.add_tensor(
            "sparse_indices",
            Shape::matrix(b, self.num_tables * self.pooling_factor),
            DType::Fp32,
            TensorKind::Input,
        );
        let tables = g.add_tensor(
            "embedding_tables",
            Shape::matrix(self.num_tables * self.rows_per_table, self.embedding_dim),
            dt,
            TensorKind::EmbeddingTable,
        );
        let pooled = g.add_tensor(
            "pooled_embeddings",
            Shape::matrix(b, self.num_tables * self.embedding_dim),
            dt,
            TensorKind::Activation,
        );
        g.add_node("tbe", OpKind::Tbe(tbe), [indices, tables], [pooled]);

        let merged_cols = self.dense_features + self.num_tables * self.embedding_dim;
        let merged = g.add_tensor(
            "merged_input",
            Shape::matrix(b, merged_cols),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "merge_concat",
            OpKind::Concat {
                rows: b,
                cols_total: merged_cols,
                num_inputs: 2,
            },
            [dense_in, pooled],
            [merged],
        );

        // Project into the stack width.
        let mut current = append_mlp(
            &mut g,
            "stack_proj",
            merged,
            b,
            merged_cols,
            &[self.hidden],
            dt,
        );

        // Stacked DHEN layers.
        for layer in 0..self.layers {
            current = self.append_dhen_layer(&mut g, layer, current);
        }

        // Optional MHA sub-network.
        if let Some(mha) = self.mha {
            current = self.append_mha_blocks(&mut g, current, mha);
        }

        // Top MLP + head.
        let top_out = append_mlp(&mut g, "top", current, b, self.hidden, &self.top_mlp, dt);
        let last = self.top_mlp.last().copied().unwrap_or(self.hidden);
        append_sigmoid_head(&mut g, top_out, b, last, dt);

        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// One DHEN layer: ensemble {FM block, Linear Compression Block} →
    /// mix → skip add → LayerNorm.
    fn append_dhen_layer(
        &self,
        g: &mut Graph,
        layer: u64,
        input: crate::graph::TensorId,
    ) -> crate::graph::TensorId {
        let b = self.batch;
        let dt = self.dtype;
        let h = self.hidden;
        let p = format!("dhen{layer}");

        // Factorization Machine block: project to fm_features vectors,
        // pairwise interactions, project back.
        let fm_dim = h / self.fm_features.max(1);
        let fm_in = append_mlp(
            g,
            &format!("{p}_fm_proj"),
            input,
            b,
            h,
            &[self.fm_features * fm_dim],
            dt,
        );
        let pairs = self.fm_features * (self.fm_features - 1) / 2;
        let fm_inter = g.add_tensor(
            format!("{p}_fm_inter"),
            Shape::matrix(b, pairs),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            format!("{p}_fm_interaction"),
            OpKind::Interaction {
                batch: b,
                features: self.fm_features,
                dim: fm_dim,
            },
            [fm_in],
            [fm_inter],
        );
        let fm_out = append_mlp(g, &format!("{p}_fm_out"), fm_inter, b, pairs, &[h], dt);

        // Linear Compression Block.
        let lcb_mid = append_mlp(
            g,
            &format!("{p}_lcb_down"),
            input,
            b,
            h,
            &[self.lcb_width],
            dt,
        );
        let lcb_out = append_mlp(
            g,
            &format!("{p}_lcb_up"),
            lcb_mid,
            b,
            self.lcb_width,
            &[h],
            dt,
        );

        // Ensemble: elementwise sum of the two branch outputs.
        let ensemble = append_add(g, &format!("{p}_ensemble"), fm_out, lcb_out, b, h, dt);
        // Skip connection from the layer input.
        let skip = append_add(g, &format!("{p}_skip"), ensemble, input, b, h, dt);
        // LayerNorm.
        append_layernorm(g, &format!("{p}_ln"), skip, b, h, dt)
    }

    /// The MHA sub-network: per block, QKV projection, attention, output
    /// projection, skip and LayerNorm — the §6 "network of multi-headed
    /// attention blocks".
    fn append_mha_blocks(
        &self,
        g: &mut Graph,
        input: crate::graph::TensorId,
        mha: MhaBlockConfig,
    ) -> crate::graph::TensorId {
        let b = self.batch;
        let dt = self.dtype;
        let h = self.hidden;
        let model_dim = mha.heads * mha.head_dim;
        let mut current = input;
        for blk in 0..mha.blocks {
            let p = format!("mha{blk}");
            // Fold the hidden state into a sequence: reshape (free).
            // Project the hidden state into Q, K, V sequences of
            // `seq × model_dim` each.
            let qkv = append_mlp(
                g,
                &format!("{p}_qkv"),
                current,
                b,
                h,
                &[3 * mha.seq * model_dim],
                dt,
            );
            let attn_out = g.add_tensor(
                format!("{p}_attn_out"),
                Shape::matrix(b, mha.seq * model_dim),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("{p}_attn"),
                OpKind::Attention(AttentionParams {
                    batch: b,
                    heads: mha.heads,
                    seq: mha.seq,
                    head_dim: mha.head_dim,
                }),
                [qkv],
                [attn_out],
            );
            let proj = append_mlp(
                g,
                &format!("{p}_proj"),
                attn_out,
                b,
                mha.seq * model_dim,
                &[h],
                dt,
            );
            let skip = append_add(g, &format!("{p}_skip"), proj, current, b, h, dt);
            current = append_layernorm(g, &format!("{p}_ln"), skip, b, h, dt);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dhen_builds_and_validates() {
        let g = DhenConfig::small(64).build();
        assert_eq!(g.validate(), Ok(()));
        // 4 layers × (skip + ensemble + LN) plus stack structure.
        let ln_count = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::LayerNorm { .. }))
            .count();
        assert_eq!(ln_count, 4);
    }

    #[test]
    fn deeper_stack_increases_complexity() {
        let base = DhenConfig::small(64);
        let mut deep = base.clone();
        deep.layers = 8;
        let f_base = base.build().flops_per_sample().as_f64();
        let f_deep = deep.build().flops_per_sample().as_f64();
        assert!(f_deep > 1.5 * f_base, "{f_deep} vs {f_base}");
    }

    #[test]
    fn mha_blocks_add_attention_nodes() {
        let mut cfg = DhenConfig::small(32);
        cfg.mha = Some(MhaBlockConfig {
            blocks: 3,
            heads: 4,
            seq: 16,
            head_dim: 32,
        });
        let g = cfg.build();
        assert_eq!(g.validate(), Ok(()));
        let attn = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Attention(_)))
            .count();
        assert_eq!(attn, 3);
    }

    #[test]
    fn embeddings_dominate_model_bytes() {
        let g = DhenConfig::small(64).build();
        let s = g.stats();
        assert!(s.table_bytes.as_f64() > 10.0 * s.weight_bytes.as_f64());
    }
}
