//! The canonical Deep Learning Recommendation Model (§2).
//!
//! Architecture per Naumov et al.: a bottom MLP embeds dense features into
//! the embedding dimension, a Table-Batched-Embedding gathers and pools
//! sparse features, a pairwise dot-product interaction combines them, and a
//! top MLP produces the click-through-rate prediction.

use mtia_core::DType;

use crate::graph::{Graph, TensorKind};
use crate::ops::{OpKind, TbeParams};
use crate::tensor::Shape;

use super::{append_mlp, append_sigmoid_head};

/// Configuration of a DLRM instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmConfig {
    /// Model name.
    pub name: String,
    /// Batch size.
    pub batch: u64,
    /// Dense (continuous) input features.
    pub dense_features: u64,
    /// Bottom-MLP layer widths; the last must equal `embedding_dim`.
    pub bottom_mlp: Vec<u64>,
    /// Number of embedding tables.
    pub num_tables: u64,
    /// Rows per embedding table.
    pub rows_per_table: u64,
    /// Embedding dimension.
    pub embedding_dim: u64,
    /// Average lookups per sample per table.
    pub pooling_factor: u64,
    /// Top-MLP layer widths (a final width-1 head is appended).
    pub top_mlp: Vec<u64>,
    /// Element type for weights and activations.
    pub dtype: DType,
}

impl DlrmConfig {
    /// A small reference configuration for tests and examples.
    pub fn small(batch: u64) -> Self {
        DlrmConfig {
            name: "dlrm-small".to_string(),
            batch,
            dense_features: 256,
            bottom_mlp: vec![256, 128, 64],
            num_tables: 16,
            rows_per_table: 1_000_000,
            embedding_dim: 64,
            pooling_factor: 16,
            top_mlp: vec![512, 256],
            dtype: DType::Fp16,
        }
    }

    /// Builds the compute graph.
    ///
    /// # Panics
    ///
    /// Panics if the bottom MLP does not end in `embedding_dim`.
    pub fn build(&self) -> Graph {
        assert_eq!(
            self.bottom_mlp.last().copied(),
            Some(self.embedding_dim),
            "bottom MLP must project dense features to the embedding dimension"
        );
        let b = self.batch;
        let dt = self.dtype;
        let mut g = Graph::new(self.name.clone(), b);

        // Dense side.
        let dense_in = g.add_tensor(
            "dense_input",
            Shape::matrix(b, self.dense_features),
            dt,
            TensorKind::Input,
        );
        let bottom_out = append_mlp(
            &mut g,
            "bottom",
            dense_in,
            b,
            self.dense_features,
            &self.bottom_mlp,
            dt,
        );

        // Sparse side.
        let tbe = TbeParams {
            num_tables: self.num_tables,
            rows_per_table: self.rows_per_table,
            embedding_dim: self.embedding_dim,
            pooling_factor: self.pooling_factor,
            batch: b,
            weighted: false,
            pooled: true,
        };
        let indices = g.add_tensor(
            "sparse_indices",
            Shape::matrix(b, self.num_tables * self.pooling_factor),
            DType::Fp32, // 4-byte indices
            TensorKind::Input,
        );
        let tables = g.add_tensor(
            "embedding_tables",
            Shape::matrix(self.num_tables * self.rows_per_table, self.embedding_dim),
            dt,
            TensorKind::EmbeddingTable,
        );
        let pooled = g.add_tensor(
            "pooled_embeddings",
            Shape::matrix(b, self.num_tables * self.embedding_dim),
            dt,
            TensorKind::Activation,
        );
        g.add_node("tbe", OpKind::Tbe(tbe), [indices, tables], [pooled]);

        // Interaction between bottom output and each table's pooled vector.
        let features = self.num_tables + 1;
        let pairs = features * (features - 1) / 2;
        let interacted = g.add_tensor(
            "interaction_out",
            Shape::matrix(b, pairs),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "interaction",
            OpKind::Interaction {
                batch: b,
                features,
                dim: self.embedding_dim,
            },
            [bottom_out, pooled],
            [interacted],
        );

        // Concat interaction output with the dense bottom output.
        let concat_cols = pairs + self.embedding_dim;
        let concat = g.add_tensor(
            "concat_out",
            Shape::matrix(b, concat_cols),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "concat",
            OpKind::Concat {
                rows: b,
                cols_total: concat_cols,
                num_inputs: 2,
            },
            [interacted, bottom_out],
            [concat],
        );

        // Top MLP + prediction head.
        let top_out = append_mlp(&mut g, "top", concat, b, concat_cols, &self.top_mlp, dt);
        let last_width = self.top_mlp.last().copied().unwrap_or(concat_cols);
        append_sigmoid_head(&mut g, top_out, b, last_width, dt);

        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Total embedding-table bytes.
    pub fn table_bytes(&self) -> mtia_core::units::Bytes {
        self.dtype
            .bytes_for(self.num_tables * self.rows_per_table * self.embedding_dim)
    }
}

/// Appends `quantize → fc(int8) → dequantize` in place of a plain FC — used
/// by the §4.4 quantization experiments when comparing execution plans.
pub fn quantized_fc_ops(batch: u64, in_features: u64, out_features: u64) -> Vec<OpKind> {
    vec![
        OpKind::Quantize {
            elems: batch * in_features,
        },
        OpKind::Fc {
            batch,
            in_features,
            out_features,
        },
        OpKind::Dequantize {
            elems: batch * out_features,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dlrm_builds_and_validates() {
        let g = DlrmConfig::small(128).build();
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.batch(), 128);
        let stats = g.stats();
        assert!(stats.sparse_nodes == 1);
        assert!(stats.gemm_nodes >= 5); // bottom 3 + top 2 + head + interaction
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let f1 = DlrmConfig::small(64).build().stats().flops.as_f64();
        let f2 = DlrmConfig::small(128).build().stats().flops.as_f64();
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
        // Per-sample complexity is batch-invariant.
        let p1 = DlrmConfig::small(64).build().flops_per_sample().as_f64();
        let p2 = DlrmConfig::small(128).build().flops_per_sample().as_f64();
        assert!((p1 - p2).abs() / p1 < 1e-9);
    }

    #[test]
    fn table_bytes_dominate_model_size() {
        // §2: "90% of model size is embeddings".
        let cfg = DlrmConfig::small(256);
        let g = cfg.build();
        let s = g.stats();
        let frac = s.table_bytes.as_f64() / (s.table_bytes.as_f64() + s.weight_bytes.as_f64());
        assert!(frac > 0.9, "embedding fraction {frac}");
        assert_eq!(s.table_bytes, cfg.table_bytes());
    }

    #[test]
    #[should_panic(expected = "bottom MLP")]
    fn mismatched_bottom_mlp_panics() {
        let mut cfg = DlrmConfig::small(8);
        cfg.bottom_mlp = vec![128, 32]; // != embedding_dim 64
        let _ = cfg.build();
    }

    #[test]
    fn quantized_fc_op_sequence() {
        let ops = quantized_fc_ops(4, 8, 16);
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], OpKind::Quantize { elems: 32 }));
        assert!(matches!(ops[2], OpKind::Dequantize { elems: 64 }));
    }
}
