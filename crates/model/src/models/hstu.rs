//! HSTU: generative sequential recommendation (§2, §4.3).
//!
//! HSTU processes each user's history as a jagged sequence through stacked
//! ragged-attention layers. Complexity is 10–100× that of the most
//! demanding classic ranking models (Table 1: 10 GFLOPS/request retrieval,
//! 80 GFLOPS/request ranking), with multi-terabyte embedding tables.

use mtia_core::DType;

use crate::graph::{Graph, TensorKind};
use crate::ops::{OpKind, RaggedAttentionParams, TbeParams};
use crate::tensor::Shape;

use super::{append_add, append_layernorm, append_mlp};

/// Configuration of an HSTU instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HstuConfig {
    /// Model name.
    pub name: String,
    /// Batch size (users per request).
    pub batch: u64,
    /// Number of item-embedding tables.
    pub num_tables: u64,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Embedding (model) dimension.
    pub embedding_dim: u64,
    /// Mean history length (jagged).
    pub mean_seq: u64,
    /// Maximum history length.
    pub max_seq: u64,
    /// Attention heads.
    pub heads: u64,
    /// Stacked HSTU layers.
    pub layers: u64,
    /// Element type.
    pub dtype: DType,
}

impl HstuConfig {
    /// A small reference configuration for tests.
    pub fn small(batch: u64) -> Self {
        HstuConfig {
            name: "hstu-small".to_string(),
            batch,
            num_tables: 4,
            rows_per_table: 10_000_000,
            embedding_dim: 256,
            mean_seq: 128,
            max_seq: 1024,
            heads: 4,
            layers: 3,
            dtype: DType::Fp16,
        }
    }

    /// Builds the compute graph. Jagged sequences are represented with
    /// their mean length, matching how ragged attention does work
    /// proportional to actual (not padded) lengths.
    pub fn build(&self) -> Graph {
        let b = self.batch;
        let dt = self.dtype;
        let d = self.embedding_dim;
        let rows = b * self.mean_seq; // effective jagged positions
        let mut g = Graph::new(self.name.clone(), b);

        // Sequence embedding lookup: unpooled TBE producing jagged values.
        let tbe = TbeParams {
            num_tables: self.num_tables,
            rows_per_table: self.rows_per_table,
            embedding_dim: d,
            pooling_factor: self.mean_seq,
            batch: b,
            weighted: false,
            pooled: false,
        };
        let indices = g.add_tensor(
            "history_ids",
            Shape::matrix(b, self.mean_seq),
            DType::Fp32,
            TensorKind::Input,
        );
        let tables = g.add_tensor(
            "item_embeddings",
            Shape::matrix(self.num_tables * self.rows_per_table, d),
            dt,
            TensorKind::EmbeddingTable,
        );
        let seq_emb = g.add_tensor(
            "sequence_embeddings",
            Shape::matrix(rows * self.num_tables, d),
            dt,
            TensorKind::Activation,
        );
        g.add_node("seq_tbe", OpKind::Tbe(tbe), [indices, tables], [seq_emb]);

        // Reduce the per-table gathers into one sequence stream.
        let mut current = append_mlp(
            &mut g,
            "input_proj",
            seq_emb,
            rows * self.num_tables,
            d,
            &[d],
            dt,
        );

        let head_dim = d / self.heads;
        for layer in 0..self.layers {
            let p = format!("hstu{layer}");
            // Pointwise projections (U, V, Q, K in HSTU's formulation).
            let uvqk = append_mlp(&mut g, &format!("{p}_uvqk"), current, rows, d, &[4 * d], dt);
            // Ragged attention with positional/timestamp bias.
            let attn_out = g.add_tensor(
                format!("{p}_attn_out"),
                Shape::matrix(rows, d),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("{p}_ragged_attn"),
                OpKind::RaggedAttention(RaggedAttentionParams {
                    batch: b,
                    heads: self.heads,
                    mean_seq: self.mean_seq,
                    max_seq: self.max_seq,
                    head_dim,
                }),
                [uvqk],
                [attn_out],
            );
            // Output projection, gated elementwise (Hadamard with U), skip,
            // and LayerNorm.
            let proj = append_mlp(
                &mut g,
                &format!("{p}_out_proj"),
                attn_out,
                rows,
                d,
                &[d],
                dt,
            );
            let gated = append_add(&mut g, &format!("{p}_gate"), proj, uvqk, rows, d, dt);
            let skip = append_add(&mut g, &format!("{p}_skip"), gated, current, rows, d, dt);
            current = append_layernorm(&mut g, &format!("{p}_ln"), skip, rows, d, dt);
        }

        // Prediction: pool the sequence and score.
        let pooled = g.add_tensor(
            "pooled_state",
            Shape::matrix(b, d),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "seq_pool",
            OpKind::Slice { rows: b, cols: d },
            [current],
            [pooled],
        );
        super::append_sigmoid_head(&mut g, pooled, b, d, dt);

        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Total embedding-table bytes (HSTU tables reach 1–2 TB — Table 1).
    pub fn table_bytes(&self) -> mtia_core::units::Bytes {
        self.dtype
            .bytes_for(self.num_tables * self.rows_per_table * self.embedding_dim)
    }

    /// Arithmetic work per request in GFLOPS.
    pub fn gflops_per_request(&self) -> f64 {
        let g = self.build();
        g.stats().flops.as_gflops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_hstu_builds_and_validates() {
        let g = HstuConfig::small(8).build();
        assert_eq!(g.validate(), Ok(()));
        let ragged = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::RaggedAttention(_)))
            .count();
        assert_eq!(ragged, 3);
    }

    #[test]
    fn complexity_scales_with_sequence_length() {
        let base = HstuConfig::small(8);
        let mut long = base.clone();
        long.mean_seq = 256;
        let f_base = base.gflops_per_request();
        let f_long = long.gflops_per_request();
        // Attention is quadratic, projections linear → more than 2×.
        assert!(f_long > 2.0 * f_base, "{f_long} vs {f_base}");
    }

    #[test]
    fn hstu_is_much_more_complex_than_dlrm() {
        // §2: "10x–100x complexity increase per request compared to the
        // most demanding recommendation models".
        let hstu = HstuConfig::small(1);
        let dlrm = crate::models::dlrm::DlrmConfig::small(1).build();
        let ratio = hstu.build().stats().flops.as_f64() / dlrm.stats().flops.as_f64();
        assert!(ratio > 10.0, "complexity ratio {ratio}");
    }

    #[test]
    fn unpooled_tbe_present() {
        let g = HstuConfig::small(4).build();
        let tbe = g
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                OpKind::Tbe(p) => Some(p),
                _ => None,
            })
            .expect("sequence TBE");
        assert!(!tbe.pooled);
    }
}
