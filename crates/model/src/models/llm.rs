//! Llama-style decoder-only LLMs, used only for the §3.6/§8 suitability
//! study: can MTIA 2i serve Llama-class models under production latency
//! SLOs? (The paper's answer: prefill yes, decode no — LPDDR bandwidth.)

use mtia_core::units::Bytes;
use mtia_core::DType;

use crate::graph::{Graph, TensorKind};
use crate::ops::{AttentionParams, OpKind};
use crate::tensor::Shape;

use super::append_mlp;

/// Configuration of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmConfig {
    /// Model name.
    pub name: String,
    /// Transformer layers.
    pub layers: u64,
    /// Model (hidden) dimension.
    pub d_model: u64,
    /// Query heads.
    pub heads: u64,
    /// Key/value heads (grouped-query attention when < `heads`).
    pub kv_heads: u64,
    /// FFN hidden width (SwiGLU: three projections of this width).
    pub ffn_hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Element type for weights.
    pub dtype: DType,
}

impl LlmConfig {
    /// Llama 2 7B.
    pub fn llama2_7b() -> Self {
        LlmConfig {
            name: "llama2-7b".to_string(),
            layers: 32,
            d_model: 4096,
            heads: 32,
            kv_heads: 32,
            ffn_hidden: 11008,
            vocab: 32000,
            dtype: DType::Fp16,
        }
    }

    /// Llama 3 8B (grouped-query attention, larger vocabulary).
    pub fn llama3_8b() -> Self {
        LlmConfig {
            name: "llama3-8b".to_string(),
            layers: 32,
            d_model: 4096,
            heads: 32,
            kv_heads: 8,
            ffn_hidden: 14336,
            vocab: 128256,
            dtype: DType::Fp16,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u64 {
        self.d_model / self.heads
    }

    /// Width of the KV projections (smaller under GQA).
    fn kv_width(&self) -> u64 {
        self.kv_heads * self.head_dim()
    }

    /// Total parameter count.
    pub fn params(&self) -> u64 {
        let d = self.d_model;
        let attn = d * d  // Q
            + 2 * d * self.kv_width() // K, V
            + d * d; // output
        let ffn = 3 * d * self.ffn_hidden; // gate, up, down
        self.layers * (attn + ffn) + 2 * self.vocab * d // embed + head
    }

    /// Total weight bytes at the configured dtype.
    pub fn weight_bytes(&self) -> Bytes {
        self.dtype.bytes_for(self.params())
    }

    /// KV-cache bytes for one sequence of `context` tokens.
    pub fn kv_cache_bytes(&self, context: u64) -> Bytes {
        self.dtype
            .bytes_for(2 * self.layers * context * self.kv_width())
    }

    /// Builds the prefill graph: all `prompt` tokens processed at once
    /// (compute-bound; this is the phase MTIA 2i can serve).
    pub fn prefill_graph(&self, prompt: u64) -> Graph {
        self.build(prompt, prompt, "prefill")
    }

    /// Builds one decode step with `context` tokens of KV cache
    /// (bandwidth-bound: every weight is read to produce one token).
    pub fn decode_step_graph(&self, context: u64) -> Graph {
        self.build(1, context, "decode")
    }

    fn build(&self, seq: u64, attend_over: u64, phase: &str) -> Graph {
        let d = self.d_model;
        let dt = self.dtype;
        let mut g = Graph::new(format!("{}-{phase}", self.name), 1);

        let mut current = g.add_tensor(
            "token_embeddings",
            Shape::matrix(seq, d),
            dt,
            TensorKind::Input,
        );
        // Mark it produced by an embedding gather (cheap; vocab table).
        let embed_out = g.add_tensor(
            "embedded",
            Shape::matrix(seq, d),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "embed",
            OpKind::Cast { elems: seq * d },
            [current],
            [embed_out],
        );
        current = embed_out;

        for layer in 0..self.layers {
            let p = format!("l{layer}");
            // QKV projections.
            let q = append_mlp(&mut g, &format!("{p}_q"), current, seq, d, &[d], dt);
            let k = append_mlp(
                &mut g,
                &format!("{p}_k"),
                current,
                seq,
                d,
                &[self.kv_width()],
                dt,
            );
            let v = append_mlp(
                &mut g,
                &format!("{p}_v"),
                current,
                seq,
                d,
                &[self.kv_width()],
                dt,
            );
            // Attention over the full context (prefill: seq × seq; decode:
            // 1 × context via the KV cache).
            let attn_out = g.add_tensor(
                format!("{p}_attn_out"),
                Shape::matrix(seq, d),
                dt,
                TensorKind::Activation,
            );
            // Model the attention cost as new-token rows attending over
            // `attend_over` keys.
            let eff_seq = ((seq as f64 * attend_over as f64).sqrt()).ceil() as u64;
            g.add_node(
                format!("{p}_attn"),
                OpKind::Attention(AttentionParams {
                    batch: 1,
                    heads: self.heads,
                    seq: eff_seq.max(1),
                    head_dim: self.head_dim(),
                }),
                [q, k, v],
                [attn_out],
            );
            let o = append_mlp(&mut g, &format!("{p}_o"), attn_out, seq, d, &[d], dt);
            // SwiGLU FFN: gate & up (d → ffn), down (ffn → d).
            let gate = append_mlp(
                &mut g,
                &format!("{p}_gate"),
                o,
                seq,
                d,
                &[self.ffn_hidden],
                dt,
            );
            let up = append_mlp(
                &mut g,
                &format!("{p}_up"),
                o,
                seq,
                d,
                &[self.ffn_hidden],
                dt,
            );
            let fused = super::append_add(
                &mut g,
                &format!("{p}_swiglu"),
                gate,
                up,
                seq,
                self.ffn_hidden,
                dt,
            );
            current = append_mlp(
                &mut g,
                &format!("{p}_down"),
                fused,
                seq,
                self.ffn_hidden,
                &[d],
                dt,
            );
        }

        // LM head over the final position.
        let head_w = g.add_tensor(
            "lm_head_w",
            Shape::matrix(d, self.vocab),
            dt,
            TensorKind::Weight,
        );
        let logits = g.add_tensor(
            "logits",
            Shape::matrix(1, self.vocab),
            dt,
            TensorKind::Output,
        );
        g.add_node(
            "lm_head",
            OpKind::Fc {
                batch: 1,
                in_features: d,
                out_features: self.vocab,
            },
            [current, head_w],
            [logits],
        );

        debug_assert_eq!(g.validate(), Ok(()));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_parameter_count() {
        let cfg = LlmConfig::llama2_7b();
        let b = cfg.params() as f64 / 1e9;
        assert!((b - 7.0).abs() < 0.5, "llama2-7b has {b}B params");
    }

    #[test]
    fn llama3_8b_parameter_count() {
        let cfg = LlmConfig::llama3_8b();
        let b = cfg.params() as f64 / 1e9;
        assert!((b - 8.0).abs() < 0.5, "llama3-8b has {b}B params");
    }

    #[test]
    fn weight_bytes_at_fp16() {
        let cfg = LlmConfig::llama2_7b();
        let gb = cfg.weight_bytes().as_gib();
        assert!(gb > 12.0 && gb < 14.0, "llama2-7b fp16 weights {gb} GiB");
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let l2 = LlmConfig::llama2_7b();
        let l3 = LlmConfig::llama3_8b();
        let c2 = l2.kv_cache_bytes(4096).as_f64();
        let c3 = l3.kv_cache_bytes(4096).as_f64();
        assert!(
            (c2 / c3 - 4.0).abs() < 0.01,
            "GQA 8/32 heads → 4× smaller cache"
        );
    }

    #[test]
    fn prefill_flops_roughly_2_params_tokens() {
        let cfg = LlmConfig::llama2_7b();
        let prompt = 512;
        let g = cfg.prefill_graph(prompt);
        let flops = g.stats().flops.as_f64();
        let expected = 2.0 * cfg.params() as f64 * prompt as f64;
        let ratio = flops / expected;
        assert!(ratio > 0.8 && ratio < 1.3, "prefill flops ratio {ratio}");
    }

    #[test]
    fn decode_reads_all_weights() {
        let cfg = LlmConfig::llama2_7b();
        let g = cfg.decode_step_graph(1024);
        let s = g.stats();
        // The decode graph carries the full weight set.
        assert!((s.weight_bytes.as_f64() / cfg.weight_bytes().as_f64() - 1.0).abs() < 0.05);
        // ...but tiny compute: ~2 flops per weight.
        let intensity = s.flops.as_f64() / s.weight_bytes.as_f64();
        assert!(intensity < 3.0, "decode intensity {intensity} flops/byte");
    }

    #[test]
    fn graphs_validate() {
        let cfg = LlmConfig::llama3_8b();
        assert_eq!(cfg.prefill_graph(128).validate(), Ok(()));
        assert_eq!(cfg.decode_step_graph(128).validate(), Ok(()));
    }
}
