//! The case-study **merge network** in its raw, pre-optimization form
//! (§6): the dense network as the GPU-oriented model publisher emits it,
//! containing exactly the patterns the MTIA compiler passes were built to
//! rewrite —
//!
//! * an **early In-Batch Broadcast** of the user-side inputs,
//! * a **shared transposed input feeding parallel sibling FC layers**,
//! * **hundreds of independent LayerNorm layers** across ensemble branches,
//! * **Slice → Reshape → Concat** chains inside the MHA blocks.

use mtia_core::DType;

use crate::graph::{Graph, TensorId, TensorKind};
use crate::ops::{EwKind, OpKind};
use crate::tensor::Shape;

/// Configuration of the raw merge network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeNetworkConfig {
    /// Batch size (user–ad pairs).
    pub batch: u64,
    /// User rows before the in-batch broadcast (ads per user).
    pub ads_per_user: u64,
    /// Feature width of the user-side input.
    pub user_width: u64,
    /// Feature width of the shared (transposed) ensemble input.
    pub shared_width: u64,
    /// Sibling FC layers sharing the transposed input.
    pub sibling_fcs: u64,
    /// Output width of each sibling FC.
    pub sibling_out: u64,
    /// Independent ensemble branches, each ending in its own LayerNorm
    /// (the paper batched "hundreds" of these horizontally).
    pub ensemble_branches: u64,
    /// Width of each ensemble branch.
    pub branch_width: u64,
    /// MHA blocks emitting Slice→Reshape→Concat layout chains.
    pub mha_blocks: u64,
    /// Element type.
    pub dtype: DType,
}

impl MergeNetworkConfig {
    /// The §6 case-study shape: 512-pair batches, 32 ads per user, hundreds
    /// of LayerNorm branches.
    pub fn case_study() -> Self {
        MergeNetworkConfig {
            batch: 512,
            ads_per_user: 32,
            user_width: 512,
            shared_width: 512,
            sibling_fcs: 4,
            sibling_out: 256,
            ensemble_branches: 128,
            branch_width: 64,
            mha_blocks: 4,
            dtype: DType::Fp16,
        }
    }

    /// Builds the raw graph.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is not a multiple of `ads_per_user`.
    pub fn build(&self) -> Graph {
        assert!(
            self.batch.is_multiple_of(self.ads_per_user),
            "batch must be a multiple of ads_per_user"
        );
        let b = self.batch;
        let dt = self.dtype;
        let mut g = Graph::new("case-study-merge", b);

        // ---- Pattern 1: early in-batch broadcast of user-side features.
        let user_rows = b / self.ads_per_user;
        let user_in = g.add_tensor(
            "user_features",
            Shape::matrix(user_rows, self.user_width),
            dt,
            TensorKind::Input,
        );
        let user_wide = g.add_tensor(
            "user_broadcast",
            Shape::matrix(b, self.user_width),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "ibb",
            OpKind::Broadcast {
                rows_in: user_rows,
                rows_out: b,
                cols: self.user_width,
            },
            [user_in],
            [user_wide],
        );
        // Row-wise user tower the broadcast could be deferred past.
        let user_cast = g.add_tensor(
            "user_cast",
            Shape::matrix(b, self.user_width),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "user_cast",
            OpKind::Cast {
                elems: b * self.user_width,
            },
            [user_wide],
            [user_cast],
        );
        let user_tower = self.fc(
            &mut g,
            "user_tower",
            user_cast,
            b,
            self.user_width,
            self.shared_width,
        );

        // ---- Pattern 2: shared transposed input + sibling FCs.
        let shared_t = g.add_tensor(
            "shared_transposed",
            Shape::matrix(self.shared_width, b),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "shared_transpose",
            OpKind::Transpose {
                rows: b,
                cols: self.shared_width,
            },
            [user_tower],
            [shared_t],
        );
        let mut sibling_outs = Vec::new();
        for k in 0..self.sibling_fcs {
            let w = g.add_tensor(
                format!("sib{k}_w"),
                Shape::matrix(self.shared_width, self.sibling_out),
                dt,
                TensorKind::Weight,
            );
            let o = g.add_tensor(
                format!("sib{k}_out"),
                Shape::matrix(b, self.sibling_out),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("sib{k}_fc"),
                OpKind::Fc {
                    batch: b,
                    in_features: self.shared_width,
                    out_features: self.sibling_out,
                },
                [shared_t, w],
                [o],
            );
            sibling_outs.push(o);
        }
        let sib_cols = self.sibling_fcs * self.sibling_out;
        let sib_concat = g.add_tensor(
            "sibling_concat",
            Shape::matrix(b, sib_cols),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "sibling_concat",
            OpKind::Concat {
                rows: b,
                cols_total: sib_cols,
                num_inputs: self.sibling_fcs,
            },
            sibling_outs,
            [sib_concat],
        );

        // ---- Pattern 3: ensemble branches, each with its own LayerNorm.
        // All branch FCs first, then all LayerNorms (as the publisher emits
        // them layer-type by layer-type).
        let mut branch_fc_outs = Vec::new();
        for k in 0..self.ensemble_branches {
            branch_fc_outs.push(self.fc(
                &mut g,
                &format!("branch{k}"),
                sib_concat,
                b,
                sib_cols,
                self.branch_width,
            ));
        }
        let mut branch_ln_outs = Vec::new();
        for (k, &fc_out) in branch_fc_outs.iter().enumerate() {
            let o = g.add_tensor(
                format!("branch{k}_ln_out"),
                Shape::matrix(b, self.branch_width),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("branch{k}_ln"),
                OpKind::LayerNorm {
                    rows: b,
                    cols: self.branch_width,
                },
                [fc_out],
                [o],
            );
            branch_ln_outs.push(o);
        }
        let ens_cols = self.ensemble_branches * self.branch_width;
        let ensemble = g.add_tensor(
            "ensemble_concat",
            Shape::matrix(b, ens_cols),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            "ensemble_concat",
            OpKind::Concat {
                rows: b,
                cols_total: ens_cols,
                num_inputs: self.ensemble_branches,
            },
            branch_ln_outs,
            [ensemble],
        );

        // ---- Pattern 4: MHA blocks with Slice → Reshape → Concat chains.
        let mut current = ensemble;
        let cols = ens_cols;
        for k in 0..self.mha_blocks {
            let half = cols / 2;
            let sliced = g.add_tensor(
                format!("mha{k}_slice"),
                Shape::matrix(b, half),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("mha{k}_slice"),
                OpKind::Slice {
                    rows: b,
                    cols: half,
                },
                [current],
                [sliced],
            );
            let reshaped = g.add_tensor(
                format!("mha{k}_reshape"),
                Shape::matrix(b * 2, half / 2),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("mha{k}_reshape"),
                OpKind::Reshape { elems: b * half },
                [sliced],
                [reshaped],
            );
            let re_concat = g.add_tensor(
                format!("mha{k}_concat"),
                Shape::matrix(b, half),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("mha{k}_concat"),
                OpKind::Concat {
                    rows: b,
                    cols_total: half,
                    num_inputs: 1,
                },
                [reshaped],
                [re_concat],
            );
            current = self.fc(&mut g, &format!("mha{k}_proj"), re_concat, b, half, cols);
        }

        // ---- prediction head.
        super::append_sigmoid_head(&mut g, current, b, cols, dt);
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Adds one FC + nonlinearity pair (the vertical-fusion fodder).
    fn fc(
        &self,
        g: &mut Graph,
        name: &str,
        input: TensorId,
        batch: u64,
        in_features: u64,
        out_features: u64,
    ) -> TensorId {
        let dt = self.dtype;
        let w = g.add_tensor(
            format!("{name}_w"),
            Shape::matrix(in_features, out_features),
            dt,
            TensorKind::Weight,
        );
        let o = g.add_tensor(
            format!("{name}_fc_out"),
            Shape::matrix(batch, out_features),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            format!("{name}_fc"),
            OpKind::Fc {
                batch,
                in_features,
                out_features,
            },
            [input, w],
            [o],
        );
        let a = g.add_tensor(
            format!("{name}_act_out"),
            Shape::matrix(batch, out_features),
            dt,
            TensorKind::Activation,
        );
        g.add_node(
            format!("{name}_relu"),
            OpKind::Elementwise {
                elems: batch * out_features,
                kind: EwKind::Nonlinear,
                arity: 1,
            },
            [o],
            [a],
        );
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_graph_builds_and_validates() {
        let g = MergeNetworkConfig::case_study().build();
        assert_eq!(g.validate(), Ok(()));
        // Hundreds of LayerNorms (the §6 anchor).
        let lns = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::LayerNorm { .. }))
            .count();
        assert!(lns >= 100, "{lns} LayerNorms");
    }

    #[test]
    fn contains_every_target_pattern() {
        let g = MergeNetworkConfig::case_study().build();
        let count =
            |pred: &dyn Fn(&OpKind) -> bool| g.nodes().iter().filter(|n| pred(&n.op)).count();
        assert!(count(&|op| matches!(op, OpKind::Broadcast { .. })) >= 1);
        assert!(count(&|op| matches!(op, OpKind::Transpose { .. })) >= 1);
        assert!(count(&|op| matches!(op, OpKind::Slice { .. })) >= 4);
        assert!(count(&|op| matches!(op, OpKind::Reshape { .. })) >= 4);
        assert!(count(&|op| matches!(op, OpKind::Fc { .. })) > 130);
    }

    #[test]
    #[should_panic(expected = "multiple of ads_per_user")]
    fn bad_batch_panics() {
        let mut cfg = MergeNetworkConfig::case_study();
        cfg.batch = 100;
        let _ = cfg.build();
    }
}
