//! Generators for the model families the paper serves on MTIA 2i.
//!
//! Each generator builds a [`Graph`] whose operator mix, arithmetic
//! intensity, and parameter footprint match the corresponding production
//! family: classic [`dlrm`] ranking models, [`dhen`] stacked-ensemble
//! late-stage rankers (§2, §6), [`hstu`] generative sequence rankers (§2,
//! §4.3), and a Llama-style [`llm`] used only for the §3.6/§8 roofline
//! evaluation. [`zoo`] instantiates the named populations of Table 1 and
//! Fig. 6.

pub mod dhen;
pub mod dlrm;
pub mod hstu;
pub mod llm;
pub mod merge;
pub mod wukong;
pub mod zoo;

use mtia_core::DType;

use crate::graph::{Graph, TensorId, TensorKind};
use crate::ops::{EwKind, OpKind};
use crate::tensor::Shape;

/// Appends a chain of FC + nonlinearity layers to `graph`, returning the
/// final activation. `input` must be a `batch × dims_in` tensor; each entry
/// of `layer_dims` is the output width of one layer.
pub(crate) fn append_mlp(
    graph: &mut Graph,
    prefix: &str,
    input: TensorId,
    batch: u64,
    mut in_features: u64,
    layer_dims: &[u64],
    dtype: DType,
) -> TensorId {
    let mut current = input;
    for (i, &out_features) in layer_dims.iter().enumerate() {
        let w = graph.add_tensor(
            format!("{prefix}_w{i}"),
            Shape::matrix(in_features, out_features),
            dtype,
            TensorKind::Weight,
        );
        let fc_out = graph.add_tensor(
            format!("{prefix}_fc{i}_out"),
            Shape::matrix(batch, out_features),
            dtype,
            TensorKind::Activation,
        );
        graph.add_node(
            format!("{prefix}_fc{i}"),
            OpKind::Fc {
                batch,
                in_features,
                out_features,
            },
            [current, w],
            [fc_out],
        );
        let act_out = graph.add_tensor(
            format!("{prefix}_act{i}_out"),
            Shape::matrix(batch, out_features),
            dtype,
            TensorKind::Activation,
        );
        graph.add_node(
            format!("{prefix}_relu{i}"),
            OpKind::Elementwise {
                elems: batch * out_features,
                kind: EwKind::Nonlinear,
                arity: 1,
            },
            [fc_out],
            [act_out],
        );
        current = act_out;
        in_features = out_features;
    }
    current
}

/// Appends the prediction head: a width-1 FC followed by a sigmoid,
/// producing the model's output tensor.
pub(crate) fn append_sigmoid_head(
    graph: &mut Graph,
    input: TensorId,
    batch: u64,
    in_features: u64,
    dtype: DType,
) -> TensorId {
    let w = graph.add_tensor(
        "head_w",
        Shape::matrix(in_features, 1),
        dtype,
        TensorKind::Weight,
    );
    let logit = graph.add_tensor(
        "head_logit",
        Shape::matrix(batch, 1),
        dtype,
        TensorKind::Activation,
    );
    graph.add_node(
        "head_fc",
        OpKind::Fc {
            batch,
            in_features,
            out_features: 1,
        },
        [input, w],
        [logit],
    );
    let out = graph.add_tensor(
        "prediction",
        Shape::matrix(batch, 1),
        dtype,
        TensorKind::Output,
    );
    graph.add_node(
        "sigmoid",
        OpKind::Elementwise {
            elems: batch,
            kind: EwKind::Nonlinear,
            arity: 1,
        },
        [logit],
        [out],
    );
    out
}

/// Appends a LayerNorm over a `rows × cols` activation.
pub(crate) fn append_layernorm(
    graph: &mut Graph,
    name: &str,
    input: TensorId,
    rows: u64,
    cols: u64,
    dtype: DType,
) -> TensorId {
    let out = graph.add_tensor(
        format!("{name}_out"),
        Shape::matrix(rows, cols),
        dtype,
        TensorKind::Activation,
    );
    graph.add_node(name, OpKind::LayerNorm { rows, cols }, [input], [out]);
    out
}

/// Appends an elementwise binary add (skip connection).
pub(crate) fn append_add(
    graph: &mut Graph,
    name: &str,
    a: TensorId,
    b: TensorId,
    rows: u64,
    cols: u64,
    dtype: DType,
) -> TensorId {
    let out = graph.add_tensor(
        format!("{name}_out"),
        Shape::matrix(rows, cols),
        dtype,
        TensorKind::Activation,
    );
    graph.add_node(
        name,
        OpKind::Elementwise {
            elems: rows * cols,
            kind: EwKind::Arithmetic,
            arity: 2,
        },
        [a, b],
        [out],
    );
    out
}
