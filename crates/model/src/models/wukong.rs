//! Wukong: scaling-law late-stage ranking (§2).
//!
//! "Wukong extends DHEN by scaling models across two orders of magnitude.
//! With effective modeling of high-order interactions, more sparse features
//! enabled by larger embedding tables improve model quality." A Wukong
//! layer is an ensemble of a **Factorization Machine Block** (low-rank
//! pairwise interactions over embedding views) and a **Linear Compression
//! Block**, stacked with residual connections; quality scales with a single
//! *scale* knob that widens and deepens the stack together.

use mtia_core::DType;

use crate::graph::{Graph, TensorKind};
use crate::ops::{OpKind, TbeParams};
use crate::tensor::Shape;

use super::{append_add, append_layernorm, append_mlp, append_sigmoid_head};

/// Configuration of a Wukong instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WukongConfig {
    /// Model name.
    pub name: String,
    /// Batch size.
    pub batch: u64,
    /// The scaling knob: layers, widths, and FM ranks all grow with it.
    /// Scale 1 ≈ a small late-stage ranker (~2 MF/sample); scale 16 is a
    /// ~2 GF/sample giant, three orders of magnitude up.
    pub scale: u64,
    /// Number of embedding tables.
    pub num_tables: u64,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Embedding dimension.
    pub embedding_dim: u64,
    /// Lookups per sample per table.
    pub pooling_factor: u64,
    /// Element type.
    pub dtype: DType,
}

impl WukongConfig {
    /// A small reference configuration at the given scale.
    pub fn at_scale(scale: u64, batch: u64) -> Self {
        WukongConfig {
            name: format!("wukong-x{scale}"),
            batch,
            scale,
            num_tables: 32 + 16 * scale, // larger tables at larger scales
            rows_per_table: 2_000_000,
            embedding_dim: 96,
            pooling_factor: 20,
            dtype: DType::Fp16,
        }
    }

    /// Stacked layers at this scale.
    pub fn layers(&self) -> u64 {
        2 + self.scale
    }

    /// Hidden width at this scale.
    pub fn hidden(&self) -> u64 {
        256 * self.scale
    }

    /// FM low-rank projection width.
    pub fn fm_rank(&self) -> u64 {
        (8 * self.scale).max(8)
    }

    /// Builds the compute graph.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn build(&self) -> Graph {
        assert!(self.scale > 0, "scale must be positive");
        let b = self.batch;
        let dt = self.dtype;
        let h = self.hidden();
        let mut g = Graph::new(self.name.clone(), b);

        // Sparse front end.
        let tbe = TbeParams {
            num_tables: self.num_tables,
            rows_per_table: self.rows_per_table,
            embedding_dim: self.embedding_dim,
            pooling_factor: self.pooling_factor,
            batch: b,
            weighted: false,
            pooled: true,
        };
        let indices = g.add_tensor(
            "sparse_indices",
            Shape::matrix(b, self.num_tables * self.pooling_factor),
            DType::Fp32,
            TensorKind::Input,
        );
        let tables = g.add_tensor(
            "embedding_tables",
            Shape::matrix(self.num_tables * self.rows_per_table, self.embedding_dim),
            dt,
            TensorKind::EmbeddingTable,
        );
        let pooled_cols = self.num_tables * self.embedding_dim;
        let pooled = g.add_tensor(
            "pooled_embeddings",
            Shape::matrix(b, pooled_cols),
            dt,
            TensorKind::Activation,
        );
        g.add_node("tbe", OpKind::Tbe(tbe), [indices, tables], [pooled]);

        let mut current = append_mlp(&mut g, "proj", pooled, b, pooled_cols, &[h], dt);

        // Wukong layers: FMB (low-rank interactions) ⊕ LCB, residual, LN.
        let fm_features = self.fm_rank();
        let fm_dim = (h / fm_features).max(1);
        for layer in 0..self.layers() {
            let p = format!("wk{layer}");
            // FMB: project to rank views, interact, project back.
            let fm_proj = append_mlp(
                &mut g,
                &format!("{p}_fmb_proj"),
                current,
                b,
                h,
                &[fm_features * fm_dim],
                dt,
            );
            let pairs = fm_features * (fm_features - 1) / 2;
            let inter = g.add_tensor(
                format!("{p}_fmb_inter"),
                Shape::matrix(b, pairs),
                dt,
                TensorKind::Activation,
            );
            g.add_node(
                format!("{p}_fmb_interaction"),
                OpKind::Interaction {
                    batch: b,
                    features: fm_features,
                    dim: fm_dim,
                },
                [fm_proj],
                [inter],
            );
            let fmb = append_mlp(&mut g, &format!("{p}_fmb_out"), inter, b, pairs, &[h], dt);

            // LCB: a plain linear compression of the layer input.
            let lcb = append_mlp(&mut g, &format!("{p}_lcb"), current, b, h, &[h], dt);

            let ensemble = append_add(&mut g, &format!("{p}_ens"), fmb, lcb, b, h, dt);
            let residual = append_add(&mut g, &format!("{p}_res"), ensemble, current, b, h, dt);
            current = append_layernorm(&mut g, &format!("{p}_ln"), residual, b, h, dt);
        }

        append_sigmoid_head(&mut g, current, b, h, dt);
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// FLOPs per sample at this configuration.
    pub fn mflops_per_sample(&self) -> f64 {
        self.build().flops_per_sample().as_mflops()
    }
}

/// The §2 scaling sweep: Wukong instances across two orders of magnitude
/// of per-sample complexity.
pub fn scaling_sweep(batch: u64) -> Vec<WukongConfig> {
    [1u64, 2, 4, 8, 16]
        .into_iter()
        .map(|s| WukongConfig::at_scale(s, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates_across_scales() {
        for cfg in scaling_sweep(64) {
            let g = cfg.build();
            assert_eq!(g.validate(), Ok(()), "{}", cfg.name);
            assert_eq!(g.stats().sparse_nodes, 1);
        }
    }

    #[test]
    fn complexity_spans_two_orders_of_magnitude() {
        // §2: "Wukong extends DHEN by scaling models across two orders of
        // magnitude."
        let sweep = scaling_sweep(64);
        let lo = sweep.first().unwrap().mflops_per_sample();
        let hi = sweep.last().unwrap().mflops_per_sample();
        assert!(hi / lo >= 100.0, "scaling span {:.1}x", hi / lo);
    }

    #[test]
    fn scale_grows_depth_width_and_tables() {
        let small = WukongConfig::at_scale(1, 32);
        let large = WukongConfig::at_scale(8, 32);
        assert!(large.layers() > small.layers());
        assert!(large.hidden() > small.hidden());
        assert!(large.num_tables > small.num_tables);
    }

    #[test]
    fn flops_are_batch_invariant_per_sample() {
        let a = WukongConfig::at_scale(2, 64).mflops_per_sample();
        let b = WukongConfig::at_scale(2, 256).mflops_per_sample();
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = WukongConfig::at_scale(0, 8).build();
    }
}
