//! The named production-model populations of the paper.
//!
//! [`fig6_models`] reproduces the nine production models of Fig. 6: five
//! Low-Complexity models (LC1–LC5, 15–105 MFLOPS/sample) and four
//! High-Complexity models (HC1–HC4, 480–1000 MFLOPS/sample), each carrying
//! the batch size and serving characteristics §7 describes. [`table1_models`]
//! reproduces the funnel stages of Table 1.
//!
//! Targets are hit by construction: each generator's width parameter is
//! binary-searched until the built graph's FLOPS/sample matches the
//! published complexity to within 3 %.

use std::fmt;

use mtia_core::units::Bytes;
use mtia_core::DType;

use crate::graph::Graph;
use crate::models::dhen::{DhenConfig, MhaBlockConfig};
use crate::models::dlrm::DlrmConfig;
use crate::models::hstu::HstuConfig;

/// Complexity class per Fig. 6 / Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComplexityClass {
    /// 15–105 MFLOPS/sample.
    LowComplexity,
    /// 480–1000 MFLOPS/sample.
    HighComplexity,
    /// Funnel-front retrieval (Table 1).
    Retrieval,
    /// Early-stage ranking (Table 1).
    EarlyStage,
    /// Late-stage ranking (Table 1).
    LateStage,
    /// HSTU-based (Table 1).
    Hstu,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComplexityClass::LowComplexity => "LC",
            ComplexityClass::HighComplexity => "HC",
            ComplexityClass::Retrieval => "retrieval",
            ComplexityClass::EarlyStage => "early-stage",
            ComplexityClass::LateStage => "late-stage",
            ComplexityClass::Hstu => "HSTU",
        };
        f.write_str(s)
    }
}

/// The architecture family backing a zoo model.
#[derive(Debug, Clone, PartialEq)]
pub enum ZooArch {
    /// Classic DLRM.
    Dlrm(DlrmConfig),
    /// DHEN stacked ensemble.
    Dhen(DhenConfig),
    /// HSTU sequence model.
    Hstu(HstuConfig),
}

/// One named production-like model.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooModel {
    /// Model name as used in the paper's figures (e.g. `"LC1"`).
    pub name: String,
    /// Complexity class.
    pub class: ComplexityClass,
    /// Published complexity target in MFLOPS/sample.
    pub target_mflops_per_sample: f64,
    /// Serving batch size (§7 calls these out per model).
    pub batch: u64,
    /// Host-side overhead as a fraction of device time (feature
    /// preprocessing, batching, network).
    pub host_overhead: f64,
    /// Architecture and parameters.
    pub arch: ZooArch,
}

impl ZooModel {
    /// Builds the compute graph at the model's serving batch size.
    pub fn graph(&self) -> Graph {
        self.graph_at(self.batch)
    }

    /// Builds the compute graph at an explicit batch size (used by the
    /// batch-size autotuner).
    pub fn graph_at(&self, batch: u64) -> Graph {
        match &self.arch {
            ZooArch::Dlrm(c) => {
                let mut c = c.clone();
                c.batch = batch;
                c.build()
            }
            ZooArch::Dhen(c) => {
                let mut c = c.clone();
                c.batch = batch;
                c.build()
            }
            ZooArch::Hstu(c) => {
                let mut c = c.clone();
                c.batch = batch;
                c.build()
            }
        }
    }

    /// Measured complexity of the built graph in MFLOPS/sample.
    pub fn mflops_per_sample(&self) -> f64 {
        self.graph().flops_per_sample().as_mflops()
    }

    /// Total embedding-table bytes.
    pub fn table_bytes(&self) -> Bytes {
        match &self.arch {
            ZooArch::Dlrm(c) => c.table_bytes(),
            ZooArch::Dhen(c) => c
                .dtype
                .bytes_for(c.num_tables * c.rows_per_table * c.embedding_dim),
            ZooArch::Hstu(c) => c.table_bytes(),
        }
    }
}

/// Binary-searches an integer width so that `build(width)` yields a graph
/// whose FLOPS/sample is within 3 % of `target_mflops`.
///
/// # Panics
///
/// Panics if the target cannot be bracketed in `[lo, hi]`.
fn calibrate_width(lo: u64, hi: u64, target_mflops: f64, build: impl Fn(u64) -> Graph) -> u64 {
    let eval = |w: u64| build(w).flops_per_sample().as_mflops();
    assert!(
        eval(lo) <= target_mflops && eval(hi) >= target_mflops,
        "target {target_mflops} MFLOPS/sample not bracketed by widths {lo}..{hi} \
         ({} .. {})",
        eval(lo),
        eval(hi)
    );
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eval(mid) < target_mflops {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Pick the closer endpoint.
    if (eval(lo) - target_mflops).abs() <= (eval(hi) - target_mflops).abs() {
        lo
    } else {
        hi
    }
}

fn rows_for_table_bytes(total: Bytes, num_tables: u64, dim: u64, dtype: DType) -> u64 {
    total.as_u64() / (num_tables * dim * dtype.size_bytes())
}

/// Builds a Low-Complexity DLRM with the given complexity target.
fn lc_model(
    name: &str,
    target_mflops: f64,
    batch: u64,
    table_gib: u64,
    host_overhead: f64,
    pooling_factor: u64,
) -> ZooModel {
    let num_tables = 40;
    let dim = 64;
    let rows = rows_for_table_bytes(Bytes::from_gib(table_gib), num_tables, dim, DType::Fp16);
    let base = |w: u64| DlrmConfig {
        name: name.to_string(),
        batch,
        dense_features: 256,
        bottom_mlp: vec![256, 128, dim],
        num_tables,
        rows_per_table: rows,
        embedding_dim: dim,
        pooling_factor,
        top_mlp: vec![w, w / 2],
        dtype: DType::Fp16,
    };
    let w = calibrate_width(8, 32_768, target_mflops, |w| base(w).build());
    ZooModel {
        name: name.to_string(),
        class: ComplexityClass::LowComplexity,
        target_mflops_per_sample: target_mflops,
        batch,
        host_overhead,
        arch: ZooArch::Dlrm(base(w)),
    }
}

/// Builds a High-Complexity DHEN with the given complexity target.
fn hc_model(
    name: &str,
    target_mflops: f64,
    batch: u64,
    table_gib: u64,
    host_overhead: f64,
    mha: Option<MhaBlockConfig>,
) -> ZooModel {
    let num_tables = 64;
    let dim = 128;
    let rows = rows_for_table_bytes(Bytes::from_gib(table_gib), num_tables, dim, DType::Fp16);
    let base = |h: u64| DhenConfig {
        name: name.to_string(),
        batch,
        dense_features: 512,
        num_tables,
        rows_per_table: rows,
        embedding_dim: dim,
        pooling_factor: 24,
        hidden: h,
        layers: 8,
        fm_features: 16,
        lcb_width: (h / 2).max(1),
        mha,
        top_mlp: vec![h / 2, h / 4],
        dtype: DType::Fp16,
    };
    let h = calibrate_width(16, 16_384, target_mflops, |h| base(h).build());
    ZooModel {
        name: name.to_string(),
        class: ComplexityClass::HighComplexity,
        target_mflops_per_sample: target_mflops,
        batch,
        host_overhead,
        arch: ZooArch::Dhen(base(h)),
    }
}

/// The nine production models of Fig. 6.
///
/// §7 anchors: LC models span 15–105 MFLOPS/sample, HC models 480–1000;
/// LC1 runs at 4K batch while LC2 only reaches 512; HC1's small footprint
/// lets it run at 2K batch; HC2 has heavy host-side serving features; HC3
/// is the §6 case-study model (DHEN + MHA blocks, sharded over two
/// devices).
pub fn fig6_models() -> Vec<ZooModel> {
    vec![
        // LC1 runs at 4K batch with light pooling — the §7 efficiency
        // leader; deeper-funnel LC models carry heavier sparse traffic.
        lc_model("LC1", 15.0, 4096, 20, 0.08, 8),
        lc_model("LC2", 25.0, 512, 40, 0.12, 20),
        lc_model("LC3", 45.0, 1024, 60, 0.10, 20),
        lc_model("LC4", 75.0, 1024, 80, 0.10, 16),
        lc_model("LC5", 105.0, 2048, 100, 0.08, 12),
        hc_model("HC1", 480.0, 2048, 30, 0.08, None),
        hc_model("HC2", 600.0, 256, 150, 0.25, None),
        hc_model(
            "HC3",
            940.0,
            512,
            60,
            0.10,
            Some(MhaBlockConfig {
                blocks: 4,
                heads: 8,
                seq: 32,
                head_dim: 16,
            }),
        ),
        hc_model("HC4", 1000.0, 256, 200, 0.12, None),
    ]
}

/// The §6 case-study model in its *initial* form: 140 MFLOPS/sample before
/// eight months of co-evolution took it to 940 (HC3 above).
pub fn case_study_initial() -> ZooModel {
    hc_model("HC3-initial", 140.0, 512, 40, 0.10, None)
}

/// The funnel-stage examples of Table 1.
pub fn table1_models() -> Vec<ZooModel> {
    let retrieval = {
        let mut m = lc_model("retrieval", 5.0, 8192, 75, 0.35, 12);
        m.class = ComplexityClass::Retrieval;
        m
    };
    let early = {
        let mut m = lc_model("early-stage-ranking", 50.0, 2048, 200, 0.15, 20);
        m.class = ComplexityClass::EarlyStage;
        m
    };
    let late = {
        let mut m = hc_model("late-stage-ranking", 1000.0, 256, 200, 0.10, None);
        m.class = ComplexityClass::LateStage;
        m
    };
    let hstu_retrieval = hstu_model("hstu-retrieval", 10.0, Bytes::from_gib(1024), 512, 8);
    let hstu_ranking = hstu_model("hstu-ranking", 80.0, Bytes::from_gib(2048), 1024, 12);
    vec![retrieval, early, late, hstu_retrieval, hstu_ranking]
}

/// Builds an HSTU model targeting `target_gflops` **per request** with the
/// given total table size.
fn hstu_model(name: &str, target_gflops: f64, tables: Bytes, dim: u64, layers: u64) -> ZooModel {
    let num_tables = 8;
    let rows = rows_for_table_bytes(tables, num_tables, dim, DType::Fp16);
    let base = |seq: u64| HstuConfig {
        name: name.to_string(),
        batch: 1,
        num_tables,
        rows_per_table: rows,
        embedding_dim: dim,
        mean_seq: seq,
        max_seq: seq * 8,
        heads: 8,
        layers,
        dtype: DType::Fp16,
    };
    // Per request = per sample at batch 1; target in MFLOPS.
    let seq = calibrate_width(4, 8_192, target_gflops * 1000.0, |s| base(s).build());
    ZooModel {
        name: name.to_string(),
        class: ComplexityClass::Hstu,
        target_mflops_per_sample: target_gflops * 1000.0,
        batch: 1,
        host_overhead: 0.10,
        arch: ZooArch::Hstu(base(seq)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_complexities_match_targets() {
        for m in fig6_models() {
            let measured = m.mflops_per_sample();
            let err = (measured - m.target_mflops_per_sample).abs() / m.target_mflops_per_sample;
            assert!(
                err < 0.05,
                "{}: target {} measured {measured:.1} MFLOPS/sample",
                m.name,
                m.target_mflops_per_sample
            );
        }
    }

    #[test]
    fn fig6_population_shape() {
        let models = fig6_models();
        assert_eq!(models.len(), 9);
        let lc: Vec<_> = models
            .iter()
            .filter(|m| m.class == ComplexityClass::LowComplexity)
            .collect();
        let hc: Vec<_> = models
            .iter()
            .filter(|m| m.class == ComplexityClass::HighComplexity)
            .collect();
        assert_eq!(lc.len(), 5);
        assert_eq!(hc.len(), 4);
        // §7: LC 15–105, HC 480–1000 MFLOPS/sample.
        for m in &lc {
            assert!((15.0..=105.0).contains(&m.target_mflops_per_sample));
        }
        for m in &hc {
            assert!((480.0..=1000.0).contains(&m.target_mflops_per_sample));
        }
        // Batch-size anchors from §7.
        assert_eq!(models[0].batch, 4096); // LC1 at 4K
        assert_eq!(models[1].batch, 512); // LC2 at 512
        assert_eq!(models[5].batch, 2048); // HC1 at 2K
    }

    #[test]
    fn hc3_has_mha_blocks() {
        let models = fig6_models();
        let hc3 = models.iter().find(|m| m.name == "HC3").unwrap();
        match &hc3.arch {
            ZooArch::Dhen(c) => assert!(c.mha.is_some()),
            _ => panic!("HC3 should be DHEN-based"),
        }
    }

    #[test]
    fn case_study_trajectory_endpoints() {
        // §6: complexity grew from 140 to 940 MFLOPS/sample.
        let initial = case_study_initial();
        assert!((initial.mflops_per_sample() - 140.0).abs() / 140.0 < 0.05);
        let final_model = fig6_models().into_iter().find(|m| m.name == "HC3").unwrap();
        assert!((final_model.mflops_per_sample() - 940.0).abs() / 940.0 < 0.05);
    }

    #[test]
    fn table1_sizes_and_complexities() {
        let models = table1_models();
        assert_eq!(models.len(), 5);

        let retrieval = &models[0];
        assert!(retrieval.table_bytes().as_gib() >= 50.0);
        assert!(retrieval.mflops_per_sample() <= 10.0);

        let late = &models[2];
        assert!((late.mflops_per_sample() - 1000.0).abs() / 1000.0 < 0.05);
        let gib = late.table_bytes().as_gib();
        assert!(
            (100.0..=300.0).contains(&gib),
            "late-stage tables {gib} GiB"
        );

        // HSTU: 1 TB / 2 TB tables, 10 / 80 GFLOPS per request.
        let hr = &models[3];
        assert!((hr.table_bytes().as_gib() - 1024.0).abs() < 1.0);
        assert!((hr.mflops_per_sample() / 1000.0 - 10.0).abs() < 0.5);
        let hk = &models[4];
        assert!((hk.table_bytes().as_gib() - 2048.0).abs() < 1.0);
        assert!((hk.mflops_per_sample() / 1000.0 - 80.0).abs() < 4.0);
    }

    #[test]
    fn rebatching_preserves_per_sample_complexity() {
        let m = &fig6_models()[2]; // LC3
        let a = m.graph_at(256).flops_per_sample().as_mflops();
        let b = m.graph_at(1024).flops_per_sample().as_mflops();
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    fn graphs_all_validate() {
        for m in fig6_models().iter().chain(table1_models().iter()) {
            assert_eq!(m.graph().validate(), Ok(()), "{}", m.name);
        }
    }
}
