//! LayerNorm and SoftMax as the multi-step pipelines §4.3 describes.
//!
//! "LayerNorm requires three distinct steps to process the data: row-wise
//! mean, row-wise variance, and element-wise result. ... SoftMax was even
//! more challenging because it involves five distinct steps." The numeric
//! kernels here follow exactly those step decompositions (the same ones
//! the scalar/vector/SIMD pipeline executes), so the step structure the
//! cost models charge for is the real one.

use crate::tensor::DenseTensor;

/// Row-wise LayerNorm in the three §4.3 steps: mean, variance, normalize.
///
/// # Panics
///
/// Panics if `eps` is not positive.
pub fn layernorm(t: &DenseTensor, eps: f32) -> DenseTensor {
    assert!(eps > 0.0, "epsilon must be positive");
    let mut out = DenseTensor::zeros(t.rows(), t.cols());
    let n = t.cols() as f32;
    for r in 0..t.rows() {
        let row = t.row(r);
        // Step 1: row-wise mean.
        let mean: f32 = row.iter().sum::<f32>() / n;
        // Step 2: row-wise variance.
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        // Step 3: element-wise result.
        let inv = (var + eps).sqrt().recip();
        for (o, &v) in out.row_mut(r).iter_mut().zip(row) {
            *o = (v - mean) * inv;
        }
    }
    out
}

/// Row-wise SoftMax in the five §4.3 steps: row max, subtract, exp, row
/// sum, divide.
pub fn softmax(t: &DenseTensor) -> DenseTensor {
    let mut out = DenseTensor::zeros(t.rows(), t.cols());
    for r in 0..t.rows() {
        let row = t.row(r);
        // Step 1: row-wise max (numerical stability).
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let dst = out.row_mut(r);
        // Steps 2+3: subtract and exponentiate.
        for (o, &v) in dst.iter_mut().zip(row) {
            *o = (v - max).exp();
        }
        // Step 4: row-wise sum.
        let sum: f32 = dst.iter().sum();
        // Step 5: divide.
        for o in dst.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Number of pipeline steps each kernel takes — the constants the §4.3
/// cost model charges for.
pub mod steps {
    /// LayerNorm: mean, variance, normalize.
    pub const LAYERNORM: u64 = 3;
    /// SoftMax: max, subtract, exp, sum, divide.
    pub const SOFTMAX: u64 = 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layernorm_rows_have_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = DenseTensor::gaussian(16, 256, 3.0, &mut rng);
        let n = layernorm(&t, 1e-6);
        for r in 0..n.rows() {
            let row = n.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_is_shift_and_scale_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = DenseTensor::gaussian(4, 64, 1.0, &mut rng);
        let mut shifted = t.clone();
        for v in shifted.data_mut() {
            *v = *v * 5.0 + 3.0;
        }
        let a = layernorm(&t, 1e-6);
        let b = layernorm(&shifted, 1e-6);
        let snr = b.snr_db_vs(&a);
        assert!(snr > 55.0, "invariance snr {snr}");
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = DenseTensor::gaussian(8, 128, 2.0, &mut rng);
        let s = softmax(&t);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sum {sum}");
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = DenseTensor::from_data(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let mut shifted = t.clone();
        for v in shifted.data_mut() {
            *v += 1000.0;
        }
        let a = softmax(&t);
        let b = softmax(&shifted);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        // Without the row-max step this would overflow to NaN.
        let t = DenseTensor::from_data(1, 3, vec![500.0, 400.0, 300.0]);
        let s = softmax(&t);
        assert!(!s.has_non_finite());
        assert!(s.get(0, 0) > 0.999);
    }

    #[test]
    fn softmax_preserves_order() {
        let t = DenseTensor::from_data(1, 4, vec![0.1, 2.0, -1.0, 0.5]);
        let s = softmax(&t);
        assert!(s.get(0, 1) > s.get(0, 3));
        assert!(s.get(0, 3) > s.get(0, 0));
        assert!(s.get(0, 0) > s.get(0, 2));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn step_counts_match_kernel_model() {
        assert_eq!(steps::LAYERNORM, 3);
        assert_eq!(steps::SOFTMAX, 5);
    }
}
